"""Statement execution: SELECT pipeline and DML with constraint enforcement.

The executor operates on the engine's catalog (:mod:`repro.rdb.catalog`)
and storage (:mod:`repro.rdb.storage`).  It implements:

* the full SELECT pipeline — FROM + hash/nested-loop joins (INNER, LEFT,
  CROSS), WHERE, GROUP BY/aggregates, HAVING, projection, DISTINCT,
  ORDER BY, LIMIT/OFFSET;
* INSERT/UPDATE/DELETE with NOT NULL, PK/UNIQUE, and FK enforcement under
  immediate or deferred checking (see :mod:`repro.rdb.transactions`).

It never manages transactions itself; the engine passes in the active
:class:`~repro.rdb.transactions.Transaction` for undo logging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CatalogError, DatabaseError, IntegrityError
from ..sql import ast
from ..sql.render import render_expression
from .catalog import ForeignKey, Schema, Table
from .expressions import AGGREGATE_FUNCTIONS, RowScope, evaluate, evaluate_constant, is_true
from .storage import TableData
from .transactions import DEFERRED, Transaction

__all__ = ["Result", "Executor"]

Row = Dict[str, Any]
Scope = Dict[str, Row]


@dataclass
class Result:
    """Outcome of a statement: column names, rows, and affected-row count."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    rowcount: int = 0

    def first(self) -> Optional[Tuple[Any, ...]]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        first = self.first()
        return first[0] if first else None

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Executor:
    """Stateless statement interpreter over schema + storage."""

    def __init__(self, schema: Schema, data: Dict[str, TableData]) -> None:
        self.schema = schema
        self.data = data

    # ==================================================================
    # SELECT
    # ==================================================================

    def select(self, stmt: ast.Select, parameters: Sequence[Any] = ()) -> Result:
        scopes = self._from_clause(stmt, parameters)
        if stmt.where is not None:
            scopes = [
                s
                for s in scopes
                if is_true(evaluate(stmt.where, RowScope(s, parameters)))
            ]

        if stmt.group_by or self._has_aggregate(stmt):
            rows, columns = self._grouped_projection(stmt, scopes, parameters)
        else:
            rows, columns = self._plain_projection(stmt, scopes, parameters)
            if stmt.order_by:
                rows = self._order(stmt.order_by, scopes, rows, columns, parameters)

        if stmt.distinct:
            seen: Set[Tuple[Any, ...]] = set()
            unique_rows = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            rows = unique_rows

        if stmt.offset is not None:
            rows = rows[stmt.offset:]
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        return Result(columns=columns, rows=rows, rowcount=len(rows))

    # -- FROM / joins ---------------------------------------------------

    def _from_clause(self, stmt: ast.Select, parameters: Sequence[Any]) -> List[Scope]:
        if stmt.table is None:
            return [{}]  # SELECT without FROM: a single empty scope
        base = self._table_scopes(stmt.table)
        for join in stmt.joins:
            base = self._apply_join(base, join, parameters)
        return base

    def _table_scopes(self, ref: ast.TableRef) -> List[Scope]:
        table_data = self._table_data(ref.name)
        binding = ref.binding()
        return [{binding: dict(row)} for _, row in table_data.scan()]

    def _apply_join(
        self, scopes: List[Scope], join: ast.Join, parameters: Sequence[Any]
    ) -> List[Scope]:
        right_data = self._table_data(join.table.name)
        binding = join.table.binding()
        right_rows = [dict(row) for _, row in right_data.scan()]

        if join.kind == "CROSS":
            return [
                {**scope, binding: row} for scope in scopes for row in right_rows
            ]

        # Try a hash join when the condition is a conjunction of equalities
        # between the new table and prior bindings.
        equi = _extract_equi_keys(join.condition, binding) if join.condition else None
        result: List[Scope] = []
        if equi is not None:
            left_exprs, right_cols = equi
            table: Dict[Tuple[Any, ...], List[Row]] = {}
            for row in right_rows:
                key = tuple(row.get(c) for c in right_cols)
                if None not in key:
                    table.setdefault(key, []).append(row)
            for scope in scopes:
                scope_eval = RowScope(scope, parameters)
                key = tuple(evaluate(e, scope_eval) for e in left_exprs)
                matches = table.get(key, []) if None not in key else []
                if matches:
                    for row in matches:
                        result.append({**scope, binding: row})
                elif join.kind == "LEFT":
                    result.append({**scope, binding: _null_row(right_data.table)})
            return result

        # General nested-loop join.
        for scope in scopes:
            matched = False
            for row in right_rows:
                candidate = {**scope, binding: row}
                if is_true(
                    evaluate(join.condition, RowScope(candidate, parameters))
                ):
                    result.append(candidate)
                    matched = True
            if not matched and join.kind == "LEFT":
                result.append({**scope, binding: _null_row(right_data.table)})
        return result

    # -- projection -----------------------------------------------------

    def _expand_items(
        self, stmt: ast.Select, sample_scope: Optional[Scope]
    ) -> List[Tuple[ast.Expression, str]]:
        """Resolve SELECT items (including ``*``) to (expr, column-name)."""
        expanded: List[Tuple[ast.Expression, str]] = []
        for item in stmt.items:
            expr = item.expression
            if isinstance(expr, ast.Star):
                for binding, columns in self._star_bindings(stmt, expr.table):
                    for column in columns:
                        expanded.append(
                            (ast.ColumnRef(column, table=binding), column)
                        )
                continue
            name = item.alias or _default_column_name(expr)
            expanded.append((expr, name))
        return expanded

    def _star_bindings(
        self, stmt: ast.Select, only: Optional[str]
    ) -> List[Tuple[str, List[str]]]:
        bindings: List[Tuple[str, List[str]]] = []
        refs = []
        if stmt.table is not None:
            refs.append(stmt.table)
        refs.extend(j.table for j in stmt.joins)
        for ref in refs:
            binding = ref.binding()
            if only is not None and binding != only:
                continue
            bindings.append((binding, self.schema.table(ref.name).column_names()))
        if only is not None and not bindings:
            raise DatabaseError(f"unknown table binding {only!r} in select list")
        return bindings

    def _plain_projection(
        self,
        stmt: ast.Select,
        scopes: List[Scope],
        parameters: Sequence[Any],
    ) -> Tuple[List[Tuple[Any, ...]], List[str]]:
        items = self._expand_items(stmt, scopes[0] if scopes else None)
        columns = [name for _, name in items]
        rows = [
            tuple(
                evaluate(expr, RowScope(scope, parameters)) for expr, _ in items
            )
            for scope in scopes
        ]
        return rows, columns

    def _order(
        self,
        order_by: Tuple[ast.OrderItem, ...],
        scopes: List[Scope],
        rows: List[Tuple[Any, ...]],
        columns: List[str],
        parameters: Sequence[Any],
    ) -> List[Tuple[Any, ...]]:
        """Sort rows by ORDER BY expressions evaluated on the source scopes.

        Supports both scope columns and output aliases.
        """
        alias_positions = {name: i for i, name in enumerate(columns)}

        def sort_value(index: int, item: ast.OrderItem) -> Any:
            expr = item.expression
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name in alias_positions
            ):
                return rows[index][alias_positions[expr.name]]
            return evaluate(expr, RowScope(scopes[index], parameters))

        indexes = list(range(len(rows)))
        for item in reversed(order_by):  # stable multi-key sort
            indexes.sort(
                key=lambda i: _null_safe_key(sort_value(i, item)),
                reverse=item.descending,
            )
        return [rows[i] for i in indexes]

    # -- aggregation ------------------------------------------------------

    def _has_aggregate(self, stmt: ast.Select) -> bool:
        exprs: List[ast.Expression] = [i.expression for i in stmt.items]
        if stmt.having is not None:
            exprs.append(stmt.having)
        return any(_contains_aggregate(e) for e in exprs)

    def _grouped_projection(
        self,
        stmt: ast.Select,
        scopes: List[Scope],
        parameters: Sequence[Any],
    ) -> Tuple[List[Tuple[Any, ...]], List[str]]:
        groups: Dict[Tuple[Any, ...], List[Scope]] = {}
        if stmt.group_by:
            for scope in scopes:
                key = tuple(
                    _hashable(evaluate(e, RowScope(scope, parameters)))
                    for e in stmt.group_by
                )
                groups.setdefault(key, []).append(scope)
        else:
            groups[()] = scopes  # implicit single group (may be empty)

        items: List[Tuple[ast.Expression, str]] = []
        for item in stmt.items:
            if isinstance(item.expression, ast.Star):
                raise DatabaseError("'*' cannot be mixed with aggregation")
            items.append(
                (item.expression, item.alias or _default_column_name(item.expression))
            )
        columns = [name for _, name in items]

        rows: List[Tuple[Any, ...]] = []
        ordered_keys = list(groups)
        for key in ordered_keys:
            members = groups[key]
            if stmt.having is not None:
                value = self._eval_aggregate_expr(
                    stmt.having, members, parameters
                )
                if not is_true(value):
                    continue
            rows.append(
                tuple(
                    self._eval_aggregate_expr(expr, members, parameters)
                    for expr, _ in items
                )
            )
        if stmt.order_by:
            # For grouped queries, order by output columns only.
            positions = {name: i for i, name in enumerate(columns)}
            for item in reversed(stmt.order_by):
                expr = item.expression
                if isinstance(expr, ast.ColumnRef) and expr.name in positions:
                    pos = positions[expr.name]
                    rows.sort(
                        key=lambda r: _null_safe_key(r[pos]),
                        reverse=item.descending,
                    )
        return rows, columns

    def _eval_aggregate_expr(
        self,
        expr: ast.Expression,
        members: List[Scope],
        parameters: Sequence[Any],
    ) -> Any:
        """Evaluate an expression that may mix aggregates and group keys."""
        if isinstance(expr, ast.FunctionCall) and expr.name in AGGREGATE_FUNCTIONS:
            return self._aggregate(expr, members, parameters)
        if isinstance(expr, ast.BinaryOp):
            left = self._eval_aggregate_expr(expr.left, members, parameters)
            right = self._eval_aggregate_expr(expr.right, members, parameters)
            return evaluate(
                ast.BinaryOp(expr.op, _as_literal(left), _as_literal(right)),
                RowScope({}),
            )
        if isinstance(expr, ast.UnaryOp):
            inner = self._eval_aggregate_expr(expr.operand, members, parameters)
            return evaluate(
                ast.UnaryOp(expr.op, _as_literal(inner)), RowScope({})
            )
        # Non-aggregate expression: evaluate on the first member (must be a
        # group key for deterministic results, as in classic SQL).
        if not members:
            return None
        return evaluate(expr, RowScope(members[0], parameters))

    def _aggregate(
        self,
        call: ast.FunctionCall,
        members: List[Scope],
        parameters: Sequence[Any],
    ) -> Any:
        if call.name == "COUNT" and (
            not call.args or isinstance(call.args[0], ast.Star)
        ):
            return len(members)
        if len(call.args) != 1:
            raise DatabaseError(f"{call.name} takes exactly one argument")
        values = [
            evaluate(call.args[0], RowScope(scope, parameters))
            for scope in members
        ]
        values = [v for v in values if v is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if call.name == "COUNT":
            return len(values)
        if not values:
            return None
        if call.name == "SUM":
            return sum(values)
        if call.name == "AVG":
            return sum(values) / len(values)
        if call.name == "MIN":
            return min(values)
        return max(values)

    # ==================================================================
    # DML
    # ==================================================================

    def insert(
        self,
        stmt: ast.Insert,
        txn: Transaction,
        parameters: Sequence[Any] = (),
    ) -> Result:
        table = self.schema.table(stmt.table)
        table_data = self._table_data(stmt.table)
        columns = stmt.columns or tuple(table.column_names())
        count = 0
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(columns):
                raise DatabaseError(
                    f"INSERT into {stmt.table!r}: {len(columns)} columns but "
                    f"{len(row_exprs)} values"
                )
            scope = RowScope({}, parameters)
            values = {
                col: evaluate(expr, scope)
                for col, expr in zip(columns, row_exprs)
            }
            self.insert_row(table, table_data, values, txn)
            count += 1
        return Result(columns=[], rows=[], rowcount=count)

    def insert_row(
        self,
        table: Table,
        table_data: TableData,
        values: Row,
        txn: Transaction,
    ) -> int:
        """Insert one row dict (used by both SQL INSERT and the mediator)."""
        for col in values:
            if not table.has_column(col):
                raise CatalogError(
                    f"no column {col!r} in table {table.name!r}"
                )
        row: Row = {}
        for column in table.columns.values():
            if column.name in values:
                value = values[column.name]
                row[column.name] = (
                    None
                    if value is None
                    else column.sql_type.coerce(value, column.name)
                )
            elif column.autoincrement:
                row[column.name] = table_data.next_autoincrement(column.name)
            elif column.has_default:
                row[column.name] = column.sql_type.coerce(
                    column.default, column.name
                )
            else:
                row[column.name] = None
            if column.autoincrement and row[column.name] is not None:
                table_data.note_autoincrement_value(
                    column.name, row[column.name]
                )

        self._check_not_null(table, row)
        self._check_row_checks(table, row)
        self._check_fk_child(table, row, txn)
        rowid = table_data.insert(row)  # PK/UNIQUE enforced by indexes
        txn.record_undo(lambda: table_data.delete(rowid))
        return rowid

    def update(
        self,
        stmt: ast.Update,
        txn: Transaction,
        parameters: Sequence[Any] = (),
    ) -> Result:
        table = self.schema.table(stmt.table)
        table_data = self._table_data(stmt.table)
        targets = self._matching_rowids(stmt.table, stmt.where, parameters)
        count = 0
        for rowid in targets:
            current = table_data.rows[rowid]
            scope = RowScope({stmt.table: current}, parameters)
            changes: Row = {}
            for assignment in stmt.assignments:
                column = table.column(assignment.column)
                value = evaluate(assignment.value, scope)
                changes[column.name] = (
                    None if value is None else column.sql_type.coerce(value, column.name)
                )
            self.update_row(table, table_data, rowid, changes, txn)
            count += 1
        return Result(columns=[], rows=[], rowcount=count)

    def update_row(
        self,
        table: Table,
        table_data: TableData,
        rowid: int,
        changes: Row,
        txn: Transaction,
    ) -> None:
        current = table_data.rows[rowid]
        new_row = {**current, **changes}
        self._check_not_null(table, new_row)
        self._check_row_checks(table, new_row)
        self._check_fk_child(table, new_row, txn, changed=set(changes))
        # If a referenced (parent-side) column changes, ensure no child
        # still points at the old value (RESTRICT semantics).
        self._check_fk_parent_update(table, current, new_row, txn)
        old = table_data.update(rowid, changes)
        restore = {col: old[col] for col in changes}
        txn.record_undo(lambda: table_data.update(rowid, restore))

    def delete(
        self,
        stmt: ast.Delete,
        txn: Transaction,
        parameters: Sequence[Any] = (),
    ) -> Result:
        table = self.schema.table(stmt.table)
        table_data = self._table_data(stmt.table)
        targets = self._matching_rowids(stmt.table, stmt.where, parameters)
        count = 0
        for rowid in targets:
            row = table_data.rows[rowid]
            self._check_fk_parent_delete(table, row, txn)
            removed = table_data.delete(rowid)
            txn.record_undo(
                lambda rid=rowid, img=removed: table_data.restore(rid, img)
            )
            count += 1
        return Result(columns=[], rows=[], rowcount=count)

    def _matching_rowids(
        self,
        table_name: str,
        where: Optional[ast.Expression],
        parameters: Sequence[Any],
    ) -> List[int]:
        table_data = self._table_data(table_name)
        matches = []
        for rowid, row in table_data.scan():
            if where is None or is_true(
                evaluate(where, RowScope({table_name: row}, parameters))
            ):
                matches.append(rowid)
        return matches

    # ==================================================================
    # constraint checks
    # ==================================================================

    def _check_not_null(self, table: Table, row: Row) -> None:
        for column in table.columns.values():
            mandatory = column.not_null or column.name in table.primary_key
            if mandatory and row.get(column.name) is None:
                raise IntegrityError(
                    f"NOT NULL violation: {table.name}.{column.name}",
                    constraint="not null",
                    table=table.name,
                    column=column.name,
                )

    def _check_row_checks(self, table: Table, row: Row) -> None:
        """CHECK constraints: NULL results pass (SQL semantics), False
        fails."""
        for expression in table.checks:
            scope = RowScope({table.name: row})
            result = evaluate(expression, scope)
            if result is False:
                from ..sql.render import render_expression

                raise IntegrityError(
                    f"CHECK constraint violated on {table.name!r}: "
                    f"{render_expression(expression)}",
                    constraint="check",
                    table=table.name,
                )

    def _check_fk_child(
        self,
        table: Table,
        row: Row,
        txn: Transaction,
        changed: Optional[Set[str]] = None,
    ) -> None:
        """The row's FK values must exist in their parent tables."""
        for fk in table.foreign_keys:
            if changed is not None and not (set(fk.columns) & changed):
                continue
            check = self._fk_child_check(table, fk, dict(row))
            if txn.mode == DEFERRED:
                txn.defer_check(check)
            else:
                check()

    def _fk_child_check(
        self, table: Table, fk: ForeignKey, row: Row
    ) -> Callable[[], None]:
        def check() -> None:
            values = tuple(row.get(c) for c in fk.columns)
            if any(v is None for v in values):
                return  # NULL FK components never violate
            parent = self.schema.table(fk.ref_table)
            parent_data = self._table_data(fk.ref_table)
            ref_columns = tuple(fk.ref_columns or parent.primary_key)
            if ref_columns == parent.primary_key:
                found = parent_data.find_by_pk(values) is not None
            elif len(ref_columns) == 1:
                found = parent_data.has_value(ref_columns[0], values[0])
            else:
                found = any(
                    all(r.get(c) == v for c, v in zip(ref_columns, values))
                    for _, r in parent_data.scan()
                )
            if not found:
                raise IntegrityError(
                    f"foreign key violation: {table.name}."
                    f"{','.join(fk.columns)} = {values!r} has no match in "
                    f"{fk.ref_table}",
                    constraint="foreign key",
                    table=table.name,
                    column=fk.columns[0],
                )

        return check

    def _check_fk_parent_delete(
        self, table: Table, row: Row, txn: Transaction
    ) -> None:
        """RESTRICT: a row being deleted must not be referenced anymore."""
        for child, fk in self.schema.referencing_tables(table.name):
            ref_columns = tuple(fk.ref_columns or table.primary_key)
            values = tuple(row.get(c) for c in ref_columns)
            if any(v is None for v in values):
                continue
            check = self._fk_parent_check(child, fk, ref_columns, values)
            if txn.mode == DEFERRED:
                txn.defer_check(check)
            else:
                check()

    def _check_fk_parent_update(
        self, table: Table, old_row: Row, new_row: Row, txn: Transaction
    ) -> None:
        for child, fk in self.schema.referencing_tables(table.name):
            ref_columns = tuple(fk.ref_columns or table.primary_key)
            old_values = tuple(old_row.get(c) for c in ref_columns)
            new_values = tuple(new_row.get(c) for c in ref_columns)
            if old_values == new_values or any(v is None for v in old_values):
                continue
            check = self._fk_parent_check(child, fk, ref_columns, old_values)
            if txn.mode == DEFERRED:
                txn.defer_check(check)
            else:
                check()

    def _fk_parent_check(
        self,
        child: Table,
        fk: ForeignKey,
        ref_columns: Tuple[str, ...],
        values: Tuple[Any, ...],
    ) -> Callable[[], None]:
        def check() -> None:
            child_data = self._table_data(child.name)
            if len(fk.columns) == 1:
                referenced = child_data.has_value(fk.columns[0], values[0])
            else:
                referenced = any(
                    all(
                        r.get(c) == v
                        for c, v in zip(fk.columns, values)
                    )
                    for _, r in child_data.scan()
                )
            if referenced:
                raise IntegrityError(
                    f"foreign key violation: rows in {child.name!r} still "
                    f"reference {fk.ref_table}.{','.join(ref_columns)} = "
                    f"{values!r}",
                    constraint="foreign key",
                    table=child.name,
                    column=fk.columns[0],
                )

        return check

    # ==================================================================

    def _table_data(self, name: str) -> TableData:
        try:
            return self.data[name]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _contains_aggregate(expr: ast.Expression) -> bool:
    if isinstance(expr, ast.FunctionCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, (ast.IsNull, ast.Like, ast.Between, ast.InList)):
        return _contains_aggregate(expr.operand)
    return False


def _null_row(table: Table) -> Row:
    return {name: None for name in table.column_names()}


def _default_column_name(expr: ast.Expression) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    return render_expression(expr)


def _null_safe_key(value: Any) -> Tuple[int, Any]:
    """NULLs sort before everything; mixed types sort by type name."""
    if value is None:
        return (0, 0, "")
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 0, value)
    return (1, 1, str(value))


def _hashable(value: Any) -> Any:
    return value if not isinstance(value, dict) else tuple(sorted(value.items()))


def _as_literal(value: Any) -> ast.Expression:
    return ast.Null() if value is None else ast.Literal(value)


def _extract_equi_keys(
    condition: ast.Expression, new_binding: str
) -> Optional[Tuple[List[ast.Expression], List[str]]]:
    """Decompose an AND-of-equalities join condition into hash-join keys.

    Returns (expressions over prior bindings, column names on the new
    table), or None when the condition isn't a pure equi-join on the new
    table's qualified columns.
    """
    left_exprs: List[ast.Expression] = []
    right_cols: List[str] = []

    def walk(expr: ast.Expression) -> bool:
        if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
            return walk(expr.left) and walk(expr.right)
        if isinstance(expr, ast.BinaryOp) and expr.op == "=":
            sides = [expr.left, expr.right]
            for i, side in enumerate(sides):
                other = sides[1 - i]
                if (
                    isinstance(side, ast.ColumnRef)
                    and side.table == new_binding
                    and not _references_binding(other, new_binding)
                ):
                    right_cols.append(side.name)
                    left_exprs.append(other)
                    return True
            return False
        return False

    if walk(condition):
        return left_exprs, right_cols
    return None


def _references_binding(expr: ast.Expression, binding: str) -> bool:
    if isinstance(expr, ast.ColumnRef):
        return expr.table == binding or expr.table is None
    if isinstance(expr, ast.BinaryOp):
        return _references_binding(expr.left, binding) or _references_binding(
            expr.right, binding
        )
    if isinstance(expr, ast.UnaryOp):
        return _references_binding(expr.operand, binding)
    if isinstance(expr, (ast.IsNull, ast.Like, ast.Between, ast.InList)):
        return _references_binding(expr.operand, binding)
    if isinstance(expr, ast.FunctionCall):
        return any(_references_binding(a, binding) for a in expr.args)
    return False
