"""Statement execution: SELECT pipeline and DML with constraint enforcement.

The executor operates on the engine's catalog (:mod:`repro.rdb.catalog`)
and storage (:mod:`repro.rdb.storage`).  Query planning — access-path
selection, predicate pushdown, join strategy, and per-statement expression
compilation — lives in :mod:`repro.rdb.planner`; the executor drives the
compiled plans and implements everything stateful around them:

* SELECT: runs the planned pipeline and wraps rows in a :class:`Result`;
* INSERT/UPDATE/DELETE with NOT NULL, PK/UNIQUE, and FK enforcement under
  immediate or deferred checking (see :mod:`repro.rdb.transactions`).

It never manages transactions itself; the engine passes in the active
:class:`~repro.rdb.transactions.Transaction` for undo logging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..deadline import tick
from ..errors import CatalogError, DatabaseError, IntegrityError
from ..observability.metrics import EXECUTOR_ROWS
from ..sql import ast
from ..sql.render import render_expression
from .catalog import ForeignKey, Schema, Table
from .expressions import RowScope, evaluate
from .planner import Planner
from .storage import TableData
from .transactions import DEFERRED, Transaction

__all__ = ["Result", "Executor"]

Row = Dict[str, Any]

# Label children resolved once: per-statement cost is one sharded add.
_ROWS_SELECT = EXECUTOR_ROWS.labels("select")
_ROWS_INSERT = EXECUTOR_ROWS.labels("insert")
_ROWS_UPDATE = EXECUTOR_ROWS.labels("update")
_ROWS_DELETE = EXECUTOR_ROWS.labels("delete")


@dataclass
class Result:
    """Outcome of a statement: column names, rows, and affected-row count."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    rowcount: int = 0

    def first(self) -> Optional[Tuple[Any, ...]]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        first = self.first()
        return first[0] if first else None

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Executor:
    """Statement interpreter over schema + storage, driven by compiled plans."""

    def __init__(
        self,
        schema: Schema,
        data: Dict[str, TableData],
        planner: Optional[Planner] = None,
        for_write: Optional[Callable[[str], TableData]] = None,
    ) -> None:
        self.schema = schema
        self.data = data
        self.planner = planner if planner is not None else Planner(schema, data)
        #: How a statement acquires the table it will *mutate*.  The
        #: engine injects its copy-on-write gate here so a published
        #: snapshot is never mutated; standalone executors (tests) fall
        #: back to the working table directly.  Reads (FK checks, scans)
        #: keep using the working store.
        self._for_write = for_write if for_write is not None else self._table_data

    # ==================================================================
    # SELECT
    # ==================================================================

    def select(self, stmt: ast.Select, parameters: Sequence[Any] = ()) -> Result:
        plan = self.planner.plan_select(stmt)
        columns, rows = plan.execute(self.data, parameters)
        if rows:
            _ROWS_SELECT.inc(len(rows))
        return Result(columns=columns, rows=rows, rowcount=len(rows))

    # ==================================================================
    # DML
    # ==================================================================

    def insert(
        self,
        stmt: ast.Insert,
        txn: Transaction,
        parameters: Sequence[Any] = (),
    ) -> Result:
        table = self.schema.table(stmt.table)
        table_data = self._for_write(stmt.table)
        columns = stmt.columns or tuple(table.column_names())
        count = 0
        for row_exprs in stmt.rows:
            tick(count)
            if len(row_exprs) != len(columns):
                raise DatabaseError(
                    f"INSERT into {stmt.table!r}: {len(columns)} columns but "
                    f"{len(row_exprs)} values"
                )
            scope = RowScope({}, parameters)
            values = {
                col: evaluate(expr, scope)
                for col, expr in zip(columns, row_exprs)
            }
            self.insert_row(table, table_data, values, txn)
            count += 1
        if count:
            _ROWS_INSERT.inc(count)
        return Result(columns=[], rows=[], rowcount=count)

    def insert_row(
        self,
        table: Table,
        table_data: TableData,
        values: Row,
        txn: Transaction,
    ) -> int:
        """Insert one row dict (used by both SQL INSERT and the mediator)."""
        for col in values:
            if not table.has_column(col):
                raise CatalogError(
                    f"no column {col!r} in table {table.name!r}"
                )
        row: Row = {}
        for column in table.columns.values():
            if column.name in values:
                value = values[column.name]
                row[column.name] = (
                    None
                    if value is None
                    else column.sql_type.coerce(value, column.name)
                )
            elif column.autoincrement:
                row[column.name] = table_data.next_autoincrement(column.name)
            elif column.has_default:
                row[column.name] = column.sql_type.coerce(
                    column.default, column.name
                )
            else:
                row[column.name] = None
            if column.autoincrement and row[column.name] is not None:
                table_data.note_autoincrement_value(
                    column.name, row[column.name]
                )

        self._check_not_null(table, row)
        self._check_row_checks(table, row)
        self._check_fk_child(table, row, txn)
        rowid = table_data.insert(row)  # PK/UNIQUE enforced by indexes
        txn.record_undo(lambda: table_data.delete(rowid))
        txn.record_change(("i", table.name, rowid, row))
        return rowid

    def update(
        self,
        stmt: ast.Update,
        txn: Transaction,
        parameters: Sequence[Any] = (),
    ) -> Result:
        table = self.schema.table(stmt.table)
        table_data = self._for_write(stmt.table)
        plan = self.planner.plan_update(stmt)
        targets = plan.matching_rowids(self.data, parameters)
        count = 0
        for rowid in targets:
            tick(count)
            current = table_data.rows[rowid]
            scope = (current,)
            changes: Row = {}
            for name, value_fn in plan.assignment_fns:
                column = table.column(name)
                value = value_fn(scope, parameters)
                changes[column.name] = (
                    None if value is None else column.sql_type.coerce(value, column.name)
                )
            self.update_row(table, table_data, rowid, changes, txn)
            count += 1
        if count:
            _ROWS_UPDATE.inc(count)
        return Result(columns=[], rows=[], rowcount=count)

    def update_row(
        self,
        table: Table,
        table_data: TableData,
        rowid: int,
        changes: Row,
        txn: Transaction,
    ) -> None:
        current = table_data.rows[rowid]
        new_row = {**current, **changes}
        self._check_not_null(table, new_row)
        self._check_row_checks(table, new_row)
        self._check_fk_child(table, new_row, txn, changed=set(changes))
        # If a referenced (parent-side) column changes, ensure no child
        # still points at the old value (RESTRICT semantics).
        self._check_fk_parent_update(table, current, new_row, txn)
        old = table_data.update(rowid, changes)
        restore = {col: old[col] for col in changes}
        txn.record_undo(lambda: table_data.update(rowid, restore))
        txn.record_change(("u", table.name, rowid, dict(changes)))

    def delete(
        self,
        stmt: ast.Delete,
        txn: Transaction,
        parameters: Sequence[Any] = (),
    ) -> Result:
        table = self.schema.table(stmt.table)
        table_data = self._for_write(stmt.table)
        plan = self.planner.plan_delete(stmt)
        targets = plan.matching_rowids(self.data, parameters)
        count = 0
        for rowid in targets:
            tick(count)
            row = table_data.rows[rowid]
            self._check_fk_parent_delete(table, row, txn)
            removed = table_data.delete(rowid)
            txn.record_undo(
                lambda rid=rowid, img=removed: table_data.restore(rid, img)
            )
            txn.record_change(("d", table.name, rowid))
            count += 1
        if count:
            _ROWS_DELETE.inc(count)
        return Result(columns=[], rows=[], rowcount=count)

    # ==================================================================
    # constraint checks
    # ==================================================================

    def _check_not_null(self, table: Table, row: Row) -> None:
        for column in table.columns.values():
            mandatory = column.not_null or column.name in table.primary_key
            if mandatory and row.get(column.name) is None:
                raise IntegrityError(
                    f"NOT NULL violation: {table.name}.{column.name}",
                    constraint="not null",
                    table=table.name,
                    column=column.name,
                )

    def _check_row_checks(self, table: Table, row: Row) -> None:
        """CHECK constraints: NULL results pass (SQL semantics), False
        fails."""
        for expression in table.checks:
            scope = RowScope({table.name: row})
            result = evaluate(expression, scope)
            if result is False:
                raise IntegrityError(
                    f"CHECK constraint violated on {table.name!r}: "
                    f"{render_expression(expression)}",
                    constraint="check",
                    table=table.name,
                )

    def _check_fk_child(
        self,
        table: Table,
        row: Row,
        txn: Transaction,
        changed: Optional[Set[str]] = None,
    ) -> None:
        """The row's FK values must exist in their parent tables."""
        for fk in table.foreign_keys:
            if changed is not None and not (set(fk.columns) & changed):
                continue
            check = self._fk_child_check(table, fk, dict(row))
            if txn.mode == DEFERRED:
                txn.defer_check(check)
            else:
                check()

    def _fk_child_check(
        self, table: Table, fk: ForeignKey, row: Row
    ) -> Callable[[], None]:
        def check() -> None:
            values = tuple(row.get(c) for c in fk.columns)
            if any(v is None for v in values):
                return  # NULL FK components never violate
            parent = self.schema.table(fk.ref_table)
            parent_data = self._table_data(fk.ref_table)
            ref_columns = tuple(fk.ref_columns or parent.primary_key)
            if ref_columns == parent.primary_key:
                found = parent_data.find_by_pk(values) is not None
            elif len(ref_columns) == 1:
                found = parent_data.has_value(ref_columns[0], values[0])
            else:
                found = parent_data.has_key(ref_columns, values)
            if not found:
                raise IntegrityError(
                    f"foreign key violation: {table.name}."
                    f"{','.join(fk.columns)} = {values!r} has no match in "
                    f"{fk.ref_table}",
                    constraint="foreign key",
                    table=table.name,
                    column=fk.columns[0],
                )

        return check

    def _check_fk_parent_delete(
        self, table: Table, row: Row, txn: Transaction
    ) -> None:
        """RESTRICT: a row being deleted must not be referenced anymore."""
        for child, fk in self.schema.referencing_tables(table.name):
            ref_columns = tuple(fk.ref_columns or table.primary_key)
            values = tuple(row.get(c) for c in ref_columns)
            if any(v is None for v in values):
                continue
            check = self._fk_parent_check(child, fk, ref_columns, values)
            if txn.mode == DEFERRED:
                txn.defer_check(check)
            else:
                check()

    def _check_fk_parent_update(
        self, table: Table, old_row: Row, new_row: Row, txn: Transaction
    ) -> None:
        for child, fk in self.schema.referencing_tables(table.name):
            ref_columns = tuple(fk.ref_columns or table.primary_key)
            old_values = tuple(old_row.get(c) for c in ref_columns)
            new_values = tuple(new_row.get(c) for c in ref_columns)
            if old_values == new_values or any(v is None for v in old_values):
                continue
            check = self._fk_parent_check(child, fk, ref_columns, old_values)
            if txn.mode == DEFERRED:
                txn.defer_check(check)
            else:
                check()

    def _fk_parent_check(
        self,
        child: Table,
        fk: ForeignKey,
        ref_columns: Tuple[str, ...],
        values: Tuple[Any, ...],
    ) -> Callable[[], None]:
        def check() -> None:
            child_data = self._table_data(child.name)
            if len(fk.columns) == 1:
                referenced = child_data.has_value(fk.columns[0], values[0])
            else:
                referenced = child_data.has_key(tuple(fk.columns), values)
            if referenced:
                raise IntegrityError(
                    f"foreign key violation: rows in {child.name!r} still "
                    f"reference {fk.ref_table}.{','.join(ref_columns)} = "
                    f"{values!r}",
                    constraint="foreign key",
                    table=child.name,
                    column=fk.columns[0],
                )

        return check

    # ==================================================================

    def _table_data(self, name: str) -> TableData:
        try:
            return self.data[name]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None
