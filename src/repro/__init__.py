"""OntoAccess reproduction: updating relational data via SPARQL/Update.

Reproduces Hert, Reif, Gall — "Updating Relational Data via SPARQL/Update"
(EDBT 2010) as a pure-Python library, including every substrate: an RDF
stack, a SPARQL query/update engine, a relational database engine, the R3M
mapping language, and the OntoAccess mediator.

Quickstart::

    from repro import OntoAccess
    from repro.workloads.publication import build_database, build_mapping

    db = build_database()
    oa = OntoAccess(db, build_mapping(db))
    oa.update('''
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX ont:  <http://example.org/ontology#>
        PREFIX ex:   <http://example.org/db/>
        INSERT DATA { ex:team4 foaf:name "Database Technology" ;
                               ont:teamCode "DBTG" . }
    ''')
"""

from .core.backend import Backend, RelationalBackend, TripleStoreBackend
from .core.mediator import OntoAccess, OperationResult, UpdateResult
from .core.session import PreparedQuery, PreparedUpdate, Session
from .errors import (
    MappingError,
    ReproError,
    TranslationError,
    UnsupportedPatternError,
)
from .rdb.engine import Database
from .rdf.graph import Graph
from .r3m.model import DatabaseMapping
from .r3m.generator import generate_mapping
from .r3m.parser import parse_mapping

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "Database",
    "DatabaseMapping",
    "Graph",
    "MappingError",
    "OntoAccess",
    "OperationResult",
    "PreparedQuery",
    "PreparedUpdate",
    "RelationalBackend",
    "ReproError",
    "Session",
    "TranslationError",
    "TripleStoreBackend",
    "UnsupportedPatternError",
    "UpdateResult",
    "generate_mapping",
    "parse_mapping",
    "__version__",
]
