"""Shared exception hierarchy for the OntoAccess reproduction.

Every layer of the system raises exceptions derived from :class:`ReproError`
so applications can catch a single base class.  The mediation layer
(`repro.core`) additionally attaches machine-readable detail used by the RDF
feedback protocol (paper Section 6/8): each :class:`TranslationError` carries
a ``code`` identifying the failure class and a ``details`` mapping with the
offending subject/property/table so the error can be serialized to RDF.
"""

from __future__ import annotations

from typing import Any, Mapping


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# RDF layer
# ---------------------------------------------------------------------------

class RDFError(ReproError):
    """Base class for RDF term/graph errors."""


class TurtleParseError(RDFError):
    """Raised when a Turtle/N-Triples document cannot be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending input character.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# SQL / relational layer
# ---------------------------------------------------------------------------

class SQLError(ReproError):
    """Base class for SQL front-end and relational engine errors."""


class SQLParseError(SQLError):
    """Raised when a SQL statement cannot be parsed."""

    def __init__(self, message: str, position: int = 0) -> None:
        self.position = position
        super().__init__(message)


class DatabaseError(SQLError):
    """Base class for execution-time database errors."""


class CatalogError(DatabaseError):
    """Unknown table/column, duplicate definition, or invalid DDL."""


class TypeMismatchError(DatabaseError):
    """A value cannot be coerced to the declared column type."""


class IntegrityError(DatabaseError):
    """A constraint (PK, FK, NOT NULL, UNIQUE) was violated.

    ``constraint`` names the violated constraint kind (``"primary key"``,
    ``"foreign key"``, ``"not null"``, ``"unique"``) and ``table`` /
    ``column`` locate it, enabling rich feedback at the mediation layer.
    """

    def __init__(
        self,
        message: str,
        constraint: str = "",
        table: str = "",
        column: str = "",
    ) -> None:
        self.constraint = constraint
        self.table = table
        self.column = column
        super().__init__(message)


class TransactionError(DatabaseError):
    """Invalid transaction state (e.g. commit without begin)."""


class DurabilityError(DatabaseError):
    """Write-ahead log / checkpoint failure: unknown sync mode, a value
    the WAL cannot serialize, or corruption that recovery must not paper
    over (a torn record anywhere but the final segment's tail)."""


class ReadOnlyDatabaseError(DatabaseError):
    """A write was attempted against a database that is not the primary:
    either a replica still in ``apply_replicated`` mode, or a deposed
    primary that was fenced by a higher replication epoch.  The endpoint
    maps it to HTTP 403 with error code ``"read-only"`` — the write
    provably did not execute, so clients may safely re-route it."""


# ---------------------------------------------------------------------------
# Serving / resilience layer (ISSUE 6)
# ---------------------------------------------------------------------------

class QueryTimeout(ReproError):
    """Cooperative cancellation: an operation exceeded its deadline.

    Raised from the cheap cancellation checks in executor scan/join/
    aggregate loops (see :mod:`repro.deadline`), so a runaway query
    returns a typed error instead of burning a thread forever.  The
    endpoint maps it to HTTP 408 with a ``Retry-After`` header.
    """

    def __init__(self, message: str, timeout_seconds: float | None = None) -> None:
        self.timeout_seconds = timeout_seconds
        super().__init__(message)


class EndpointTransportError(ReproError):
    """A client-side transport failure (connection refused/reset, DNS,
    socket timeout) wrapped with the request context so callers never see
    raw ``socket.timeout`` / ``URLError`` leaking out of the client.

    ``attempts`` counts how many tries were made before giving up (>1
    when the retry policy re-sent an idempotent request).  ``request_id``
    is the ``X-Request-Id`` the client sent (constant across retries of
    one logical request), so a client-side failure is joinable against
    the server's access-log and slow-query entries.
    """

    def __init__(
        self,
        message: str,
        method: str = "",
        url: str = "",
        attempts: int = 1,
        cause: BaseException | None = None,
        request_id: str | None = None,
    ) -> None:
        self.method = method
        self.url = url
        self.attempts = attempts
        self.cause = cause
        self.request_id = request_id
        super().__init__(message)


class FaultError(ReproError):
    """Default error raised by an armed :class:`repro.faults.FaultInjector`
    rule that does not specify its own exception instance."""


class ReplicationError(ReproError):
    """WAL-shipping replication failure: a torn or CRC-failing frame on
    the wire, an unknown message kind, an unsatisfiable handshake, or a
    semi-sync commit that no replica acknowledged in time.

    Usually connection-scoped: the replica supervisor treats it like a
    dropped connection — disconnect, back off, reconnect, and resume
    from its applied position (or re-bootstrap from a checkpoint when
    the primary can no longer serve that position).  The exception is
    fencing (:class:`StaleEpochError`): a shipper deposed by a higher
    epoch stays fenced until its node rejoins as a replica."""


class StaleEpochError(ReplicationError):
    """An epoch-fencing violation: a message arrived stamped with an
    epoch below the receiver's, or a shipper discovered a replica living
    in a later epoch than its own.  The stale side must stop writing and
    rejoin the new primary as a replica; its frames are never applied."""


# ---------------------------------------------------------------------------
# SPARQL layer
# ---------------------------------------------------------------------------

class SPARQLError(ReproError):
    """Base class for SPARQL parsing and evaluation errors."""


class SPARQLParseError(SPARQLError):
    """Raised when a SPARQL query or update request cannot be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class SPARQLEvalError(SPARQLError):
    """Raised when a parsed query cannot be evaluated."""


# ---------------------------------------------------------------------------
# R3M mapping layer
# ---------------------------------------------------------------------------

class MappingError(ReproError):
    """Base class for R3M mapping definition errors."""


class MappingParseError(MappingError):
    """The RDF document does not encode a well-formed R3M mapping."""


class MappingValidationError(MappingError):
    """The mapping is inconsistent with the database schema."""


# ---------------------------------------------------------------------------
# OntoAccess mediation layer
# ---------------------------------------------------------------------------

class TranslationError(ReproError):
    """A SPARQL/Update request could not be translated to SQL DML.

    This is the error surfaced to clients by the feedback protocol.  The
    ``code`` is a stable, machine-readable identifier (for example
    ``"unknown-subject"`` or ``"missing-required-property"``) and ``details``
    carries contextual values (subject URI, property URI, table, attribute)
    that :mod:`repro.core.feedback` turns into RDF.
    """

    #: Stable identifiers for the failure classes the checker can detect.
    UNKNOWN_SUBJECT = "unknown-subject"
    UNKNOWN_PROPERTY = "unknown-property"
    UNKNOWN_CLASS = "unknown-class"
    MISSING_REQUIRED = "missing-required-property"
    NOT_NULL_DELETE = "delete-violates-not-null"
    TYPE_MISMATCH = "literal-type-mismatch"
    MULTI_VALUE = "multiple-values-for-attribute"
    ENTITY_EXISTS = "entity-already-complete"
    ENTITY_MISSING = "entity-not-found"
    TRIPLE_MISSING = "triple-not-found"
    FK_TARGET_MISSING = "foreign-key-target-missing"
    CLASS_MISMATCH = "class-does-not-match-table"
    UNSUPPORTED = "unsupported-request"
    CONSTRAINT_VIOLATION = "constraint-violation"

    def __init__(
        self,
        message: str,
        code: str = "unsupported-request",
        details: Mapping[str, Any] | None = None,
    ) -> None:
        self.code = code
        self.details = dict(details or {})
        super().__init__(message)


class UnsupportedPatternError(TranslationError):
    """A SPARQL WHERE pattern falls outside the translatable fragment."""

    def __init__(self, message: str, details: Mapping[str, Any] | None = None) -> None:
        super().__init__(message, code=TranslationError.UNSUPPORTED, details=details)
