"""SQL abstract syntax tree.

Shared by three consumers:

* the SQL parser (:mod:`repro.sql.parser`) builds these nodes from text;
* the relational engine (:mod:`repro.rdb`) executes them;
* the OntoAccess translator (:mod:`repro.core`) *constructs* them directly
  and renders them to the SQL text shown in the paper's listings via
  :mod:`repro.sql.render`.

All nodes are frozen dataclasses: statements are values that can be hashed,
compared in tests, and safely shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

__all__ = [
    # expressions
    "Expression",
    "Literal",
    "Null",
    "ColumnRef",
    "Parameter",
    "BinaryOp",
    "UnaryOp",
    "IsNull",
    "InList",
    "Between",
    "Like",
    "FunctionCall",
    "Star",
    # select
    "SelectItem",
    "TableRef",
    "Join",
    "OrderItem",
    "Select",
    # DML
    "Insert",
    "Update",
    "Delete",
    "Assignment",
    # DDL
    "ColumnDef",
    "PrimaryKeyDef",
    "ForeignKeyDef",
    "UniqueDef",
    "CheckDef",
    "CreateTable",
    "DropTable",
    "CreateIndex",
    "DropIndex",
    # transactions
    "Begin",
    "Commit",
    "Rollback",
    "Statement",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: int, float, str, or bool."""

    value: Union[int, float, str, bool]


@dataclass(frozen=True)
class Null(Expression):
    """The SQL NULL literal."""


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A column reference, optionally qualified: ``author.id``."""

    name: str
    table: Optional[str] = None

    def key(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Parameter(Expression):
    """A positional placeholder (``?``) bound at execution time."""

    index: int


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator: comparison, logic, arithmetic, or ``||`` concat."""

    op: str  # '=', '<>', '<', '<=', '>', '>=', 'AND', 'OR', '+', '-', '*', '/', '%', '||'
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operator: ``NOT expr`` or ``-expr``."""

    op: str  # 'NOT' | '-'
    operand: Expression


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (item, ...)``."""

    operand: Expression
    items: Tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Aggregate or scalar function call."""

    name: str  # normalized upper case
    args: Tuple[Expression, ...]
    distinct: bool = False


@dataclass(frozen=True)
class Star(Expression):
    """``*`` (as in ``SELECT *`` or ``COUNT(*)``), optionally qualified."""

    table: Optional[str] = None


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    """One projection: expression with an optional ``AS`` alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A table in FROM, with an optional alias."""

    name: str
    alias: Optional[str] = None

    def binding(self) -> str:
        """The name this table is referred to by in the query scope."""
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    """A join clause appended to the FROM item list."""

    table: TableRef
    condition: Optional[Expression]  # None only for CROSS JOIN
    kind: str = "INNER"  # 'INNER' | 'LEFT' | 'CROSS'


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A SELECT statement (single FROM table plus explicit joins)."""

    items: Tuple[SelectItem, ...]
    table: Optional[TableRef] = None
    joins: Tuple[Join, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Insert:
    """``INSERT INTO table (columns) VALUES (row), ...``."""

    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expression, ...], ...]


@dataclass(frozen=True)
class Assignment:
    """One ``SET column = expr`` item."""

    column: str
    value: Expression


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Assignment, ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expression] = None


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnDef:
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str  # normalized upper case, e.g. 'INTEGER', 'VARCHAR'
    type_length: Optional[int] = None  # VARCHAR(n)
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    autoincrement: bool = False
    default: Optional[Expression] = None
    references: Optional[Tuple[str, Optional[str]]] = None  # (table, column|None)
    checks: Tuple[Expression, ...] = ()


@dataclass(frozen=True)
class PrimaryKeyDef:
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class ForeignKeyDef:
    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...] = ()


@dataclass(frozen=True)
class UniqueDef:
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class CheckDef:
    """A table-level CHECK constraint (the paper's Section 8 mentions
    assertions as future work; CHECK is the per-row variant)."""

    expression: Expression


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: Tuple[ColumnDef, ...]
    constraints: Tuple[
        Union[PrimaryKeyDef, ForeignKeyDef, UniqueDef, CheckDef], ...
    ] = ()
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateIndex:
    """``CREATE [UNIQUE] INDEX [IF NOT EXISTS] name ON table (columns)``.

    Single-column non-unique indexes are ordered (range/prefix/ORDER BY
    capable); multi-column non-unique indexes back equality probes only.
    """

    name: str
    table: str
    columns: Tuple[str, ...]
    unique: bool = False
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropIndex:
    name: str
    if_exists: bool = False


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Begin:
    pass


@dataclass(frozen=True)
class Commit:
    pass


@dataclass(frozen=True)
class Rollback:
    pass


Statement = Union[
    Select,
    Insert,
    Update,
    Delete,
    CreateTable,
    DropTable,
    CreateIndex,
    DropIndex,
    Begin,
    Commit,
    Rollback,
]
