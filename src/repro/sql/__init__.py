"""SQL front-end: lexer, AST, parser, and renderer.

Public API::

    from repro.sql import parse_sql, parse_statements, render
    from repro.sql import ast
"""

from . import ast
from .parser import SQLParser, parse_expression, parse_sql, parse_statements
from .render import render, render_expression
from .tokens import Token, TokenType, tokenize

__all__ = [
    "SQLParser",
    "Token",
    "TokenType",
    "ast",
    "parse_expression",
    "parse_sql",
    "parse_statements",
    "render",
    "render_expression",
    "tokenize",
]
