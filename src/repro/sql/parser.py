"""Recursive-descent SQL parser.

Parses the dialect used throughout the reproduction: DDL (CREATE/DROP
TABLE with column and table constraints), DML (INSERT/UPDATE/DELETE),
SELECT with joins, grouping, ordering and limits, and transaction control
statements.  Expression precedence follows standard SQL:

    OR < AND < NOT < comparison/IS/IN/LIKE/BETWEEN < additive < multiplicative < unary
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..errors import SQLParseError
from . import ast
from .tokens import Token, TokenType, tokenize

__all__ = ["parse_sql", "parse_statements", "parse_expression", "SQLParser"]


def parse_sql(sql: str) -> ast.Statement:
    """Parse exactly one SQL statement (a trailing ``;`` is allowed)."""
    statements = parse_statements(sql)
    if len(statements) != 1:
        raise SQLParseError(
            f"expected exactly one statement, found {len(statements)}"
        )
    return statements[0]


def parse_statements(sql: str) -> List[ast.Statement]:
    """Parse a ``;``-separated script into a list of statements."""
    parser = SQLParser(sql)
    return parser.script()


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone expression (useful in tests)."""
    parser = SQLParser(sql)
    expr = parser.expression()
    parser.expect_eof()
    return expr


class SQLParser:
    """Single-use parser over a token list."""

    def __init__(self, sql: str) -> None:
        self.tokens = tokenize(sql)
        self.index = 0
        self._param_count = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type != TokenType.EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> SQLParseError:
        token = self._peek()
        found = token.value or "<end of input>"
        return SQLParseError(f"{message} (found {found!r})", position=token.position)

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().is_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, *words: str) -> Token:
        token = self._accept_keyword(*words)
        if token is None:
            raise self._error(f"expected {'/'.join(words)}")
        return token

    def _accept_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type == TokenType.PUNCT and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise self._error(f"expected {value!r}")

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type == TokenType.IDENT:
            self._advance()
            return token.value
        # Allow non-reserved-ish keywords as identifiers where unambiguous
        # (e.g. a column named "year" lexes as IDENT since YEAR isn't a
        # keyword, but "type" etc. could collide in other dialects).
        raise self._error("expected identifier")

    def expect_eof(self) -> None:
        if self._peek().type != TokenType.EOF:
            raise self._error("unexpected trailing input")

    # -- entry points --------------------------------------------------------

    def script(self) -> List[ast.Statement]:
        statements: List[ast.Statement] = []
        while True:
            while self._accept_punct(";"):
                pass
            if self._peek().type == TokenType.EOF:
                return statements
            statements.append(self.statement())
            if self._peek().type != TokenType.EOF and not self._peek().is_keyword() \
                    and self._peek().value != ";":
                pass
            if not self._accept_punct(";") and self._peek().type != TokenType.EOF:
                raise self._error("expected ';' between statements")

    def statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("SELECT"):
            return self.select()
        if token.is_keyword("INSERT"):
            return self.insert()
        if token.is_keyword("UPDATE"):
            return self.update()
        if token.is_keyword("DELETE"):
            return self.delete()
        if token.is_keyword("CREATE"):
            nxt = self.tokens[self.index + 1]
            if nxt.is_keyword("INDEX", "UNIQUE"):
                return self.create_index()
            return self.create_table()
        if token.is_keyword("DROP"):
            if self.tokens[self.index + 1].is_keyword("INDEX"):
                return self.drop_index()
            return self.drop_table()
        if token.is_keyword("BEGIN"):
            self._advance()
            self._accept_keyword("TRANSACTION")
            return ast.Begin()
        if token.is_keyword("COMMIT"):
            self._advance()
            self._accept_keyword("TRANSACTION")
            return ast.Commit()
        if token.is_keyword("ROLLBACK"):
            self._advance()
            self._accept_keyword("TRANSACTION")
            return ast.Rollback()
        raise self._error("expected a SQL statement")

    # -- SELECT ---------------------------------------------------------------

    def select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT") is not None
        items = self._select_items()
        table: Optional[ast.TableRef] = None
        joins: List[ast.Join] = []
        where = group_by = having = None
        order_by: List[ast.OrderItem] = []
        limit = offset = None
        group_exprs: Tuple[ast.Expression, ...] = ()

        if self._accept_keyword("FROM"):
            table = self._table_ref()
            joins = self._joins()
        if self._accept_keyword("WHERE"):
            where = self.expression()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            exprs = [self.expression()]
            while self._accept_punct(","):
                exprs.append(self.expression())
            group_exprs = tuple(exprs)
        if self._accept_keyword("HAVING"):
            having = self.expression()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        if self._accept_keyword("LIMIT"):
            limit = self._int_literal()
            if self._accept_keyword("OFFSET"):
                offset = self._int_literal()
        return ast.Select(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_exprs,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _select_items(self) -> List[ast.SelectItem]:
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.type == TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.SelectItem(ast.Star())
        # qualified star: ident '.' '*'
        if token.type == TokenType.IDENT:
            nxt = self.tokens[self.index + 1: self.index + 3]
            if (
                len(nxt) == 2
                and nxt[0].type == TokenType.PUNCT
                and nxt[0].value == "."
                and nxt[1].type == TokenType.OPERATOR
                and nxt[1].value == "*"
            ):
                self._advance()
                self._advance()
                self._advance()
                return ast.SelectItem(ast.Star(table=token.value))
        expr = self.expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().type == TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _table_ref(self) -> ast.TableRef:
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().type == TokenType.IDENT:
            alias = self._advance().value
        return ast.TableRef(name, alias)

    def _joins(self) -> List[ast.Join]:
        joins: List[ast.Join] = []
        while True:
            kind = None
            if self._accept_keyword("JOIN"):
                kind = "INNER"
            elif self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
                kind = "INNER"
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "LEFT"
            elif self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                kind = "CROSS"
            elif self._accept_punct(","):
                kind = "CROSS"
            else:
                return joins
            table = self._table_ref()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self.expression()
            joins.append(ast.Join(table=table, condition=condition, kind=kind))

    def _order_item(self) -> ast.OrderItem:
        expr = self.expression()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    def _int_literal(self) -> int:
        token = self._peek()
        if token.type != TokenType.NUMBER or "." in token.value:
            raise self._error("expected integer literal")
        self._advance()
        return int(token.value)

    # -- INSERT / UPDATE / DELETE ----------------------------------------------

    def insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: List[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_ident())
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows: List[Tuple[ast.Expression, ...]] = []
        while True:
            self._expect_punct("(")
            row = [self.expression()]
            while self._accept_punct(","):
                row.append(self.expression())
            self._expect_punct(")")
            rows.append(tuple(row))
            if not self._accept_punct(","):
                break
        return ast.Insert(table=table, columns=tuple(columns), rows=tuple(rows))

    def update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self.expression()
        return ast.Update(table=table, assignments=tuple(assignments), where=where)

    def _assignment(self) -> ast.Assignment:
        column = self._expect_ident()
        token = self._peek()
        if token.type != TokenType.OPERATOR or token.value != "=":
            raise self._error("expected '=' in SET clause")
        self._advance()
        return ast.Assignment(column=column, value=self.expression())

    def delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.expression()
        return ast.Delete(table=table, where=where)

    # -- CREATE / DROP TABLE ------------------------------------------------------

    _TYPE_KEYWORDS = (
        "INTEGER",
        "INT",
        "BIGINT",
        "SMALLINT",
        "VARCHAR",
        "CHAR",
        "TEXT",
        "FLOAT",
        "REAL",
        "DOUBLE",
        "BOOLEAN",
        "DATE",
        "DATETIME",
        "TIMESTAMP",
        "DECIMAL",
        "NUMERIC",
    )

    def create_table(self) -> ast.CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            # NOT parses as keyword NOT; EXISTS likewise
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_ident()
        self._expect_punct("(")
        columns: List[ast.ColumnDef] = []
        constraints: List[
            Union[ast.PrimaryKeyDef, ast.ForeignKeyDef, ast.UniqueDef]
        ] = []
        while True:
            if self._peek().is_keyword(
                "PRIMARY", "FOREIGN", "UNIQUE", "CONSTRAINT", "CHECK"
            ):
                constraints.append(self._table_constraint())
            else:
                columns.append(self._column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateTable(
            name=name,
            columns=tuple(columns),
            constraints=tuple(constraints),
            if_not_exists=if_not_exists,
        )

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_ident()
        type_token = self._peek()
        if not type_token.is_keyword(*self._TYPE_KEYWORDS):
            raise self._error("expected column type")
        self._advance()
        type_name = type_token.value
        type_length = None
        if self._accept_punct("("):
            type_length = self._int_literal()
            # DECIMAL(p, s): ignore the scale, we store floats
            if self._accept_punct(","):
                self._int_literal()
            self._expect_punct(")")

        not_null = primary_key = unique = autoincrement = False
        default: Optional[ast.Expression] = None
        references: Optional[Tuple[str, Optional[str]]] = None
        checks: List[ast.Expression] = []
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
            elif self._accept_keyword("UNIQUE"):
                unique = True
            elif self._accept_keyword("AUTOINCREMENT"):
                autoincrement = True
            elif self._accept_keyword("DEFAULT"):
                default = self._primary()
            elif self._accept_keyword("REFERENCES"):
                ref_table = self._expect_ident()
                ref_column = None
                if self._accept_punct("("):
                    ref_column = self._expect_ident()
                    self._expect_punct(")")
                references = (ref_table, ref_column)
            elif self._accept_keyword("CHECK"):
                self._expect_punct("(")
                checks.append(self.expression())
                self._expect_punct(")")
            else:
                break
        return ast.ColumnDef(
            name=name,
            type_name=type_name,
            type_length=type_length,
            not_null=not_null,
            primary_key=primary_key,
            unique=unique,
            autoincrement=autoincrement,
            default=default,
            references=references,
            checks=tuple(checks),
        )

    def _table_constraint(
        self,
    ) -> Union[ast.PrimaryKeyDef, ast.ForeignKeyDef, ast.UniqueDef]:
        if self._accept_keyword("CONSTRAINT"):
            self._expect_ident()  # constraint names are accepted and ignored
        if self._accept_keyword("PRIMARY"):
            self._expect_keyword("KEY")
            return ast.PrimaryKeyDef(tuple(self._paren_ident_list()))
        if self._accept_keyword("UNIQUE"):
            return ast.UniqueDef(tuple(self._paren_ident_list()))
        if self._accept_keyword("FOREIGN"):
            self._expect_keyword("KEY")
            columns = tuple(self._paren_ident_list())
            self._expect_keyword("REFERENCES")
            ref_table = self._expect_ident()
            ref_columns: Tuple[str, ...] = ()
            if self._peek().type == TokenType.PUNCT and self._peek().value == "(":
                ref_columns = tuple(self._paren_ident_list())
            return ast.ForeignKeyDef(
                columns=columns, ref_table=ref_table, ref_columns=ref_columns
            )
        if self._accept_keyword("CHECK"):
            self._expect_punct("(")
            expr = self.expression()
            self._expect_punct(")")
            return ast.CheckDef(expression=expr)
        raise self._error("expected table constraint")

    def _paren_ident_list(self) -> List[str]:
        self._expect_punct("(")
        names = [self._expect_ident()]
        while self._accept_punct(","):
            names.append(self._expect_ident())
        self._expect_punct(")")
        return names

    def drop_table(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(name=self._expect_ident(), if_exists=if_exists)

    # -- CREATE / DROP INDEX -----------------------------------------------------

    def create_index(self) -> ast.CreateIndex:
        self._expect_keyword("CREATE")
        unique = self._accept_keyword("UNIQUE") is not None
        self._expect_keyword("INDEX")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_ident()
        self._expect_keyword("ON")
        table = self._expect_ident()
        columns = tuple(self._paren_ident_list())
        return ast.CreateIndex(
            name=name,
            table=table,
            columns=columns,
            unique=unique,
            if_not_exists=if_not_exists,
        )

    def drop_index(self) -> ast.DropIndex:
        self._expect_keyword("DROP")
        self._expect_keyword("INDEX")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        return ast.DropIndex(name=self._expect_ident(), if_exists=if_exists)

    # -- expressions -----------------------------------------------------------

    def expression(self) -> ast.Expression:
        return self._or_expr()

    def _or_expr(self) -> ast.Expression:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expression:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expression:
        left = self._additive()
        token = self._peek()
        if token.type == TokenType.OPERATOR and token.value in (
            "=",
            "<>",
            "<",
            "<=",
            ">",
            ">=",
        ):
            self._advance()
            return ast.BinaryOp(token.value, left, self._additive())
        if token.is_keyword("IS"):
            self._advance()
            negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated=negated)
        negated = False
        if token.is_keyword("NOT"):
            nxt = self.tokens[self.index + 1]
            if nxt.is_keyword("IN", "LIKE", "BETWEEN"):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            items = [self.expression()]
            while self._accept_punct(","):
                items.append(self.expression())
            self._expect_punct(")")
            return ast.InList(left, tuple(items), negated=negated)
        if token.is_keyword("LIKE"):
            self._advance()
            return ast.Like(left, self._additive(), negated=negated)
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return ast.Between(left, low, high, negated=negated)
        return left

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.type == TokenType.OPERATOR and token.value in ("+", "-", "||"):
                self._advance()
                left = ast.BinaryOp(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.type == TokenType.OPERATOR and token.value in ("*", "/", "%"):
                self._advance()
                left = ast.BinaryOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expression:
        token = self._peek()
        if token.type == TokenType.OPERATOR and token.value == "-":
            self._advance()
            operand = self._unary()
            # Fold negative numeric constants so '-1' round-trips as a Literal.
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if token.type == TokenType.OPERATOR and token.value == "+":
            self._advance()
            return self._unary()
        return self._primary()

    _FUNCTION_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def _primary(self) -> ast.Expression:
        token = self._peek()
        if token.type == TokenType.NUMBER:
            self._advance()
            if "." in token.value or "e" in token.value.lower():
                return ast.Literal(float(token.value))
            return ast.Literal(int(token.value))
        if token.type == TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Null()
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.type == TokenType.PUNCT and token.value == "?":
            self._advance()
            self._param_count += 1
            return ast.Parameter(self._param_count - 1)
        if token.type == TokenType.PUNCT and token.value == "(":
            self._advance()
            expr = self.expression()
            self._expect_punct(")")
            return expr
        if token.is_keyword(*self._FUNCTION_KEYWORDS):
            return self._function_call(token.value)
        if token.type == TokenType.IDENT:
            # function call on a non-keyword name (UPPER, LOWER, LENGTH, ...)
            nxt = self.tokens[self.index + 1]
            if nxt.type == TokenType.PUNCT and nxt.value == "(":
                return self._function_call(token.value.upper())
            return self._column_ref()
        raise self._error("expected expression")

    def _function_call(self, name: str) -> ast.FunctionCall:
        self._advance()  # function name
        self._expect_punct("(")
        distinct = self._accept_keyword("DISTINCT") is not None
        args: List[ast.Expression] = []
        token = self._peek()
        if token.type == TokenType.OPERATOR and token.value == "*":
            self._advance()
            args.append(ast.Star())
        elif not (token.type == TokenType.PUNCT and token.value == ")"):
            args.append(self.expression())
            while self._accept_punct(","):
                args.append(self.expression())
        self._expect_punct(")")
        return ast.FunctionCall(name=name.upper(), args=tuple(args), distinct=distinct)

    def _column_ref(self) -> ast.ColumnRef:
        first = self._expect_ident()
        if self._peek().type == TokenType.PUNCT and self._peek().value == ".":
            self._advance()
            second = self._expect_ident()
            return ast.ColumnRef(name=second, table=first)
        return ast.ColumnRef(name=first)
