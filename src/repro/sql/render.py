"""Render SQL AST nodes back to SQL text.

The OntoAccess translator produces :mod:`repro.sql.ast` statements; this
module turns them into the textual SQL the paper's listings display (e.g.
Listings 10, 14, 16, 18).  Rendering is deterministic so translated output
can be compared verbatim against the paper in tests and benchmarks.
"""

from __future__ import annotations

from typing import Union

from . import ast

__all__ = ["render", "render_expression"]


def render(statement: ast.Statement) -> str:
    """Render a statement to a single-line SQL string with trailing ``;``."""
    if isinstance(statement, ast.Select):
        return _render_select(statement) + ";"
    if isinstance(statement, ast.Insert):
        return _render_insert(statement) + ";"
    if isinstance(statement, ast.Update):
        return _render_update(statement) + ";"
    if isinstance(statement, ast.Delete):
        return _render_delete(statement) + ";"
    if isinstance(statement, ast.CreateTable):
        return _render_create(statement) + ";"
    if isinstance(statement, ast.DropTable):
        exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {exists}{statement.name};"
    if isinstance(statement, ast.CreateIndex):
        unique = "UNIQUE " if statement.unique else ""
        exists = "IF NOT EXISTS " if statement.if_not_exists else ""
        columns = ", ".join(statement.columns)
        return (
            f"CREATE {unique}INDEX {exists}{statement.name} "
            f"ON {statement.table} ({columns});"
        )
    if isinstance(statement, ast.DropIndex):
        exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP INDEX {exists}{statement.name};"
    if isinstance(statement, ast.Begin):
        return "BEGIN;"
    if isinstance(statement, ast.Commit):
        return "COMMIT;"
    if isinstance(statement, ast.Rollback):
        return "ROLLBACK;"
    raise TypeError(f"cannot render {type(statement).__name__}")


def render_expression(expr: ast.Expression) -> str:
    return _expr(expr)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

def _render_select(stmt: ast.Select) -> str:
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(i) for i in stmt.items))
    if stmt.table is not None:
        parts.append("FROM")
        parts.append(_table_ref(stmt.table))
        for join in stmt.joins:
            if join.kind == "CROSS":
                parts.append(f"CROSS JOIN {_table_ref(join.table)}")
            else:
                keyword = "JOIN" if join.kind == "INNER" else f"{join.kind} JOIN"
                parts.append(
                    f"{keyword} {_table_ref(join.table)} ON {_expr(join.condition)}"
                )
    if stmt.where is not None:
        parts.append(f"WHERE {_expr(stmt.where)}")
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(_expr(e) for e in stmt.group_by))
    if stmt.having is not None:
        parts.append(f"HAVING {_expr(stmt.having)}")
    if stmt.order_by:
        rendered = ", ".join(
            _expr(o.expression) + (" DESC" if o.descending else "")
            for o in stmt.order_by
        )
        parts.append(f"ORDER BY {rendered}")
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    if stmt.offset is not None:
        parts.append(f"OFFSET {stmt.offset}")
    return " ".join(parts)


def _select_item(item: ast.SelectItem) -> str:
    text = _expr(item.expression)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _table_ref(ref: ast.TableRef) -> str:
    return f"{ref.name} {ref.alias}" if ref.alias else ref.name


def _render_insert(stmt: ast.Insert) -> str:
    columns = f" ({', '.join(stmt.columns)})" if stmt.columns else ""
    rows = ", ".join(
        "(" + ", ".join(_expr(v) for v in row) + ")" for row in stmt.rows
    )
    return f"INSERT INTO {stmt.table}{columns} VALUES {rows}"


def _render_update(stmt: ast.Update) -> str:
    sets = ", ".join(f"{a.column} = {_expr(a.value)}" for a in stmt.assignments)
    text = f"UPDATE {stmt.table} SET {sets}"
    if stmt.where is not None:
        text += f" WHERE {_expr(stmt.where)}"
    return text


def _render_delete(stmt: ast.Delete) -> str:
    text = f"DELETE FROM {stmt.table}"
    if stmt.where is not None:
        text += f" WHERE {_expr(stmt.where)}"
    return text


def _render_create(stmt: ast.CreateTable) -> str:
    defs = [_column_def(c) for c in stmt.columns]
    for constraint in stmt.constraints:
        defs.append(_table_constraint(constraint))
    exists = "IF NOT EXISTS " if stmt.if_not_exists else ""
    return f"CREATE TABLE {exists}{stmt.name} ({', '.join(defs)})"


def _column_def(col: ast.ColumnDef) -> str:
    parts = [col.name]
    type_text = col.type_name
    if col.type_length is not None:
        type_text += f"({col.type_length})"
    parts.append(type_text)
    if col.primary_key:
        parts.append("PRIMARY KEY")
    if col.autoincrement:
        parts.append("AUTOINCREMENT")
    if col.not_null:
        parts.append("NOT NULL")
    if col.unique:
        parts.append("UNIQUE")
    if col.default is not None:
        parts.append(f"DEFAULT {_expr(col.default)}")
    if col.references is not None:
        table, column = col.references
        suffix = f"({column})" if column else ""
        parts.append(f"REFERENCES {table}{suffix}")
    for check in col.checks:
        parts.append(f"CHECK ({_expr(check)})")
    return " ".join(parts)


def _table_constraint(
    constraint: Union[ast.PrimaryKeyDef, ast.ForeignKeyDef, ast.UniqueDef],
) -> str:
    if isinstance(constraint, ast.PrimaryKeyDef):
        return f"PRIMARY KEY ({', '.join(constraint.columns)})"
    if isinstance(constraint, ast.UniqueDef):
        return f"UNIQUE ({', '.join(constraint.columns)})"
    if isinstance(constraint, ast.CheckDef):
        return f"CHECK ({_expr(constraint.expression)})"
    ref_cols = (
        f" ({', '.join(constraint.ref_columns)})" if constraint.ref_columns else ""
    )
    return (
        f"FOREIGN KEY ({', '.join(constraint.columns)}) "
        f"REFERENCES {constraint.ref_table}{ref_cols}"
    )


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4,
    "<>": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "||": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def _expr(expr: ast.Expression, parent_precedence: int = 0) -> str:
    if isinstance(expr, ast.Literal):
        return _literal(expr.value)
    if isinstance(expr, ast.Null):
        return "NULL"
    if isinstance(expr, ast.ColumnRef):
        return expr.key()
    if isinstance(expr, ast.Parameter):
        return "?"
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.BinaryOp):
        precedence = _PRECEDENCE.get(expr.op, 4)
        left = _expr(expr.left, precedence)
        right = _expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return f"NOT {_expr(expr.operand, 3)}"
        return f"-{_expr(expr.operand, 7)}"
    if isinstance(expr, ast.IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_expr(expr.operand, 4)} {keyword}"
    if isinstance(expr, ast.InList):
        keyword = "NOT IN" if expr.negated else "IN"
        items = ", ".join(_expr(i) for i in expr.items)
        return f"{_expr(expr.operand, 4)} {keyword} ({items})"
    if isinstance(expr, ast.Between):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{_expr(expr.operand, 4)} {keyword} "
            f"{_expr(expr.low, 5)} AND {_expr(expr.high, 5)}"
        )
    if isinstance(expr, ast.Like):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return f"{_expr(expr.operand, 4)} {keyword} {_expr(expr.pattern, 5)}"
    if isinstance(expr, ast.FunctionCall):
        distinct = "DISTINCT " if expr.distinct else ""
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.name}({distinct}{args})"
    raise TypeError(f"cannot render expression {type(expr).__name__}")


def _literal(value: Union[int, float, str, bool]) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = value.replace("'", "''")
    return f"'{escaped}'"
