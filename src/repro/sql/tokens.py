"""SQL lexer.

Tokenizes the SQL dialect understood by the relational engine substrate:
keywords, identifiers (optionally ``"quoted"``), string literals
(``'...'`` with ``''`` escaping), numbers, operators and punctuation.
Keywords are recognized case-insensitively and normalized to upper case.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import SQLParseError

__all__ = ["Token", "TokenType", "tokenize", "KEYWORDS"]


class TokenType:
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    STRING = "STRING"
    NUMBER = "NUMBER"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = frozenset(
    """
    SELECT DISTINCT FROM WHERE GROUP BY HAVING ORDER ASC DESC LIMIT OFFSET
    JOIN INNER LEFT RIGHT OUTER CROSS ON AS AND OR NOT IN IS NULL LIKE
    BETWEEN EXISTS CASE WHEN THEN ELSE END
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE DROP IF ALTER ADD INDEX
    PRIMARY KEY FOREIGN REFERENCES UNIQUE DEFAULT CHECK AUTOINCREMENT
    CONSTRAINT CASCADE RESTRICT
    BEGIN COMMIT ROLLBACK TRANSACTION
    INTEGER INT BIGINT SMALLINT VARCHAR CHAR TEXT FLOAT REAL DOUBLE
    BOOLEAN DATE DATETIME TIMESTAMP DECIMAL NUMERIC
    TRUE FALSE
    COUNT SUM AVG MIN MAX
    """.split()
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*|/\*.*?\*/)
  | (?P<number>\d+\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?|\.\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<qident>"(?:[^"]|"")*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<op><>|<=|>=|!=|\|\||[=<>+\-*/%])
  | (?P<punct>[(),.;?])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: str
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value in words


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; the result always ends with an EOF token."""
    return list(_tokenize_iter(sql))


def _tokenize_iter(sql: str) -> Iterator[Token]:
    pos = 0
    length = len(sql)
    while pos < length:
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise SQLParseError(
                f"unexpected character {sql[pos]!r} at position {pos}", position=pos
            )
        kind = m.lastgroup
        text = m.group(0)
        if kind in ("ws", "comment"):
            pos = m.end()
            continue
        if kind == "number":
            yield Token(TokenType.NUMBER, text, pos)
        elif kind == "string":
            # strip the quotes, un-double the '' escape
            yield Token(TokenType.STRING, text[1:-1].replace("''", "'"), pos)
        elif kind == "qident":
            yield Token(TokenType.IDENT, text[1:-1].replace('""', '"'), pos)
        elif kind == "ident":
            upper = text.upper()
            if upper in KEYWORDS:
                yield Token(TokenType.KEYWORD, upper, pos)
            else:
                yield Token(TokenType.IDENT, text, pos)
        elif kind == "op":
            yield Token(TokenType.OPERATOR, "<>" if text == "!=" else text, pos)
        elif kind == "punct":
            yield Token(TokenType.PUNCT, text, pos)
        pos = m.end()
    yield Token(TokenType.EOF, "", length)
