"""The OntoAccess HTTP endpoint prototype (paper Section 6)."""

from .client import Feedback, OntoAccessClient, ReplicatedClient, RetryPolicy
from .endpoint import OntoAccessEndpoint
from .protocol import Response

__all__ = [
    "Feedback",
    "OntoAccessClient",
    "OntoAccessEndpoint",
    "ReplicatedClient",
    "Response",
    "RetryPolicy",
]
