"""The OntoAccess HTTP endpoint prototype (paper Section 6)."""

from .client import Feedback, OntoAccessClient, RetryPolicy
from .endpoint import OntoAccessEndpoint
from .protocol import Response

__all__ = [
    "Feedback",
    "OntoAccessClient",
    "OntoAccessEndpoint",
    "Response",
    "RetryPolicy",
]
