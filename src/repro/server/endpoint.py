"""The OntoAccess HTTP endpoint (paper Section 6) on stdlib http.server.

Usage::

    from repro.server import OntoAccessEndpoint
    endpoint = OntoAccessEndpoint(mediator, port=0)   # 0 = ephemeral port
    endpoint.start()
    ...  # clients POST SPARQL to http://localhost:{endpoint.port}/update
    endpoint.stop()

The endpoint is intentionally small: request routing, content negotiation
and HTTP concerns live here, all semantics live in the mediator's
:class:`~repro.core.session.Session`.  The endpoint drives one shared
session: update requests serialize on the backend's write-tier lock,
while query requests run lock-free against the engine's committed MVCC
snapshot — so the ``ThreadingHTTPServer``'s handler threads genuinely
answer reads concurrently with each other and with at most one writer.
Request counters are kept per handler thread (no shared lock on the hot
path) and aggregated on read.  ``handle_update`` / ``handle_query`` /
``handle_batch`` are also callable directly (no network) so tests can
exercise the protocol logic in isolation.

Resilience (ISSUE 6) — the endpoint degrades gracefully instead of
falling over:

* **Deadlines** — every work request gets a budget: the tighter of the
  server-wide ``default_timeout`` and what the client asked for via
  ``?timeout=`` / ``X-Request-Deadline``.  The budget is installed as a
  thread-local :func:`~repro.deadline.deadline_scope`; the executor's
  cooperative cancellation checks turn a runaway query into a typed
  :class:`~repro.errors.QueryTimeout` → HTTP 408 with ``Retry-After``.
* **Admission control** — a bounded in-flight gate with a short bounded
  wait queue.  When full, requests are shed *fast* with 503 +
  ``Retry-After`` + a JSON error body, keeping p99 bounded for the
  requests that are admitted.  A connection-level cap on the threading
  server bounds total live threads even under keep-alive.
* **Health** — ``GET /health`` (always 200, ``status: ok|degraded``)
  and ``GET /ready`` (503 while degraded) surface durability state:
  WAL refusing mode, last checkpoint age.  Both bypass admission so a
  probe can never be starved by load.

Replica mode (ISSUE 8) — constructed with ``replica=`` (a
:class:`~repro.replication.replica.Replica`), the endpoint serves the
read side of WAL-shipping replication:

* writes (``/update``, ``/batch``, ``/admin/checkpoint``) answer 403 —
  they belong on the primary;
* reads carry an ``X-Replica-Lag`` header (seconds of staleness) and are
  refused with 503 while the replica is bootstrapping or once its lag
  exceeds ``max_replica_lag`` — the client's cue to fall back to the
  primary;
* ``/ready`` is 503 until bootstrap replay has caught up to the
  primary's watermark, so load balancers only route to synced replicas.

Observability (ISSUE 10) — the serving tier is inspectable end to end:

* ``GET /metrics`` renders the process-wide metric registry plus a
  scrape-time snapshot of the endpoint's own state (gate, planner
  cache, WAL/checkpoint, replication) in the Prometheus text format.
  Like the probes it bypasses admission, and a failing exposition
  (chaos site ``obs:export``) maps to a 503 without touching serving.
* Every request carries an ``X-Request-Id`` (caller-supplied or
  generated) that is installed thread-local for the whole dispatch, so
  it appears in the access-log line, the slow-query entry, and the
  response header — including error responses.
* Work requests emit one structured JSON access-log line (op, status,
  queue wait, execute, serialize, rows, shed/timeout cause) and are
  teed into a ring-buffered slow-query log served at
  ``GET /admin/slow-queries``.
* ``GET /query?…&explain=analyze`` (and POST with the same parameter)
  answers the EXPLAIN tree with per-operator elapsed/rows/loops
  instead of the result rows.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional

from ..deadline import Deadline, deadline_scope
from ..errors import (
    DurabilityError,
    FaultError,
    QueryTimeout,
    ReadOnlyDatabaseError,
    ReplicationError,
    ReproError,
    SPARQLParseError,
    TranslationError,
)
from ..faults import INJECTOR
from ..core.feedback import error_graph
from ..core.mediator import OntoAccess
from ..observability.metrics import (
    QUEUE_WAIT_SECONDS,
    REGISTRY,
    REQUEST_SECONDS,
    REQUESTS,
    MetricsRegistry,
    render_exposition,
)
from ..observability.querylog import QueryLog
from ..observability.tracing import (
    analyze_scope,
    annotate,
    current_request_id,
    new_request_id,
    request_scope,
    sanitize_request_id,
    trace_scope,
)
from ..rdf.graph import Graph
from ..r3m.serialize import mapping_to_turtle
from . import protocol
from .protocol import Response

__all__ = ["OntoAccessEndpoint"]


class _ThreadCounters:
    """Contention-free request counters.

    Each handler thread owns a private ``[served, errors]`` cell
    (registered once per thread under a lock); the hot path is two plain
    list increments with no shared lock, so concurrent readers are never
    reserialized just to be counted.  Aggregation sums the cells on read
    — increments are GIL-atomic, and a torn read can at worst miss an
    in-flight request, which the old locked counter could too (the read
    could land just before its increment).
    """

    def __init__(self) -> None:
        self._local = threading.local()
        #: (owning thread, cell) pairs for live threads; dead threads'
        #: counts are folded into _base at the next registration so the
        #: list stays bounded by the number of *concurrent* threads, not
        #: connections ever served.
        self._cells: List[tuple] = []
        self._base = [0, 0]
        self._register = threading.Lock()

    def count(self, error: bool = False) -> None:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = [0, 0]
            with self._register:
                live = []
                for thread, other in self._cells:
                    if thread.is_alive():
                        live.append((thread, other))
                    else:  # its increments are done: fold and forget
                        self._base[0] += other[0]
                        self._base[1] += other[1]
                live.append((threading.current_thread(), cell))
                self._cells = live
            self._local.cell = cell
        cell[0] += 1
        if error:
            cell[1] += 1

    def _total(self, index: int) -> int:
        with self._register:
            return self._base[index] + sum(
                cell[index] for _, cell in self._cells
            )

    @property
    def served(self) -> int:
        return self._total(0)

    @property
    def errors(self) -> int:
        return self._total(1)


class _AdmissionGate:
    """Bounded in-flight counter plus a short bounded wait queue.

    ``admit`` returns True when a slot was claimed (release it!), False
    when the request must be shed.  A waiter gives up after
    ``queue_timeout`` seconds (or the request deadline, whichever is
    sooner) or immediately when the queue itself is full — shedding must
    be *fast*, the whole point is never to accumulate unbounded work.
    """

    def __init__(
        self, max_in_flight: int, max_queue: int, queue_timeout: float
    ) -> None:
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition(threading.Lock())
        self.in_flight = 0
        self.waiting = 0
        self.admitted_total = 0
        self.shed_total = 0

    def admit(self, deadline: Optional[Deadline] = None) -> bool:
        budget = self.queue_timeout
        if deadline is not None:
            budget = min(budget, max(0.0, deadline.remaining()))
        give_up = time.monotonic() + budget
        with self._cond:
            while self.in_flight >= self.max_in_flight:
                remaining = give_up - time.monotonic()
                if remaining <= 0.0 or self.waiting >= self.max_queue:
                    self.shed_total += 1
                    return False
                self.waiting += 1
                try:
                    self._cond.wait(remaining)
                finally:
                    self.waiting -= 1
            self.in_flight += 1
            self.admitted_total += 1
            return True

    def release(self) -> None:
        with self._cond:
            self.in_flight -= 1
            self._cond.notify()

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "in_flight": self.in_flight,
                "waiting": self.waiting,
                "max_in_flight": self.max_in_flight,
                "max_queue": self.max_queue,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
            }


class _BoundedThreadingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a hard cap on live connections.

    Under HTTP/1.1 keep-alive every open connection owns a handler
    thread, so the connection cap is the thread cap.  Over the cap a new
    connection is answered with a minimal 503 + ``Retry-After`` and
    closed *before* a handler thread is spawned — overload can slow the
    accept loop, never grow threads without bound.
    """

    #: listen(2) backlog: an overload burst parks in the kernel's accept
    #: queue (cheap) instead of being RST at the default backlog of 5 —
    #: shedding must reach the client as a readable 503, not a reset.
    request_queue_size = 128

    def __init__(self, addr, handler, max_connections: int, retry_after: float):
        self._max_connections = max_connections
        self._retry_after = max(1, int(retry_after))
        self._conn_lock = threading.Lock()
        self.live_connections = 0
        self.rejected_connections = 0
        super().__init__(addr, handler)

    def process_request(self, request, client_address) -> None:
        with self._conn_lock:
            if self.live_connections >= self._max_connections:
                self.rejected_connections += 1
                reject = True
            else:
                self.live_connections += 1
                reject = False
        if reject:
            self._reject(request)
            return
        super().process_request(request, client_address)

    def process_request_thread(self, request, client_address) -> None:
        try:
            super().process_request_thread(request, client_address)
        finally:
            with self._conn_lock:
                self.live_connections -= 1

    def _reject(self, request) -> None:
        body = (
            b'{"error": "overloaded", '
            b'"message": "connection limit reached; retry after backoff"}\n'
        )
        try:
            request.sendall(
                b"HTTP/1.1 503 Service Unavailable\r\n"
                b"Content-Type: application/json\r\n"
                b"Retry-After: " + str(self._retry_after).encode("ascii") + b"\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n"
                b"\r\n" + body
            )
            # Drain the unread request before closing: closing a socket
            # with received-but-unread bytes sends RST, which would
            # destroy the 503 sitting in the peer's receive buffer.
            request.settimeout(0.2)
            while request.recv(65536):
                pass
        except OSError:
            pass  # the peer is already gone; nothing to tell it
        finally:
            self.shutdown_request(request)


class OntoAccessEndpoint:
    """Serves a mediator over HTTP (SPARQL-Protocol-shaped)."""

    def __init__(
        self,
        mediator: OntoAccess,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_in_flight: int = 32,
        max_queue: int = 64,
        queue_timeout: float = 0.25,
        default_timeout: Optional[float] = 30.0,
        max_body_bytes: int = 8 * 1024 * 1024,
        max_connections: int = 128,
        retry_after: float = 1.0,
        replica: Optional[Any] = None,
        max_replica_lag: Optional[float] = None,
        promoter: Optional[Callable[[], Dict[str, Any]]] = None,
        shipper: Optional[Any] = None,
        slow_query_threshold: Optional[float] = 1.0,
        slow_query_capacity: int = 128,
        access_log: Optional[Any] = None,
    ) -> None:
        self.mediator = mediator
        #: replication (ISSUE 8): serving the read side of a replica
        self.replica = replica
        self.max_replica_lag = max_replica_lag
        #: failover (ISSUE 9): callable that promotes this replica to
        #: primary (``POST /admin/promote``); None on endpoints that
        #: cannot be promoted (true primaries, or replicas launched
        #: without a promotion path).
        self.promoter = promoter
        self._promote_lock = threading.Lock()
        #: One session shared by all handler threads: writes serialize on
        #: its write-tier lock, reads run against committed snapshots, and
        #: its prepared cache amortizes repeated texts across threads.
        self.session = mediator.session()
        self.host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        #: per-thread request counters for monitoring/benchmarks
        self._stats = _ThreadCounters()
        # -- resilience knobs (ISSUE 6) --------------------------------
        self._gate = _AdmissionGate(max_in_flight, max_queue, queue_timeout)
        #: server-wide request budget; a client may only tighten it
        self.default_timeout = default_timeout
        self.max_body_bytes = max_body_bytes
        self.max_connections = max_connections
        #: seconds advertised in Retry-After on 503/408
        self.retry_after = retry_after
        self._abort_lock = threading.Lock()
        #: responses whose streaming was cut short (client disconnect or
        #: deadline expiry mid-stream)
        self.stream_aborts = 0
        # -- observability (ISSUE 10) ----------------------------------
        #: the primary's log shipper, when this endpoint fronts one; a
        #: promoted replica's runner assigns the new shipper here so the
        #: /metrics replication families follow the role change.
        self.shipper = shipper
        #: ring-buffered log of requests over the slow threshold
        self.query_log = QueryLog(
            capacity=slow_query_capacity, threshold=slow_query_threshold
        )
        #: writable text stream for JSON access-log lines (None = off)
        self.access_log = access_log
        self._access_log_lock = threading.Lock()

    @property
    def requests_served(self) -> int:
        return self._stats.served

    @property
    def errors_returned(self) -> int:
        return self._stats.errors

    def _count(self, error: bool = False) -> None:
        self._stats.count(error=error)

    def _note_stream_abort(self) -> None:
        with self._abort_lock:
            self.stream_aborts += 1

    def serving_stats(self) -> Dict[str, Any]:
        """Admission/connection statistics for /health and the serving
        benchmark: in-flight, queue depth, shed and reject totals."""
        stats = self._gate.stats()
        stats["stream_aborts"] = self.stream_aborts
        server = self._server
        if isinstance(server, _BoundedThreadingHTTPServer):
            stats["live_connections"] = server.live_connections
            stats["rejected_connections"] = server.rejected_connections
            stats["max_connections"] = server._max_connections
        return stats

    # ------------------------------------------------------------------
    # observability (ISSUE 10)
    # ------------------------------------------------------------------

    def _scrape_registry(self) -> MetricsRegistry:
        """A scrape-time snapshot of instance state as gauge samples.

        The hot paths only ever touch the process-wide counters in
        :data:`~repro.observability.metrics.REGISTRY`; everything that
        lives on *this* endpoint (gate depths, planner cache, WAL and
        checkpoint state, replication counters) is read here, once per
        scrape, so serving pays nothing for it between scrapes.
        """
        reg = MetricsRegistry()

        def gauge(name: str, help_text: str, value: Any) -> None:
            try:
                number = float(value)
            except (TypeError, ValueError):
                return  # non-numeric status field: not a sample
            reg.gauge(f"repro_{name}", help_text).set(number)

        serving = self.serving_stats()
        for key in (
            "in_flight", "waiting", "max_in_flight", "max_queue",
            "admitted_total", "shed_total", "stream_aborts",
            "live_connections", "rejected_connections", "max_connections",
        ):
            if key in serving:
                gauge(
                    f"serving_{key}",
                    f"Serving-gate statistic {key!r} (see /admin/stats).",
                    serving[key],
                )
        gauge(
            "endpoint_requests_served",
            "Requests answered by this endpoint since start.",
            self.requests_served,
        )
        gauge(
            "endpoint_request_errors",
            "Error responses returned by this endpoint since start.",
            self.errors_returned,
        )
        db = getattr(self.mediator, "db", None)
        planner = getattr(db, "planner", None)
        if planner is not None:
            for key, value in planner.stats.items():
                gauge(
                    f"plan_cache_{key}",
                    f"Plan-cache {key} since process start.",
                    value,
                )
        backend = self.session.health()
        gauge(
            "storage_durable",
            "1 when the store runs with a write-ahead log attached.",
            1.0 if backend.get("durable") else 0.0,
        )
        for key, help_text in (
            ("wal_refusing", "1 while the WAL refuses commits (degraded)."),
            ("wal_bytes", "Bytes in the live write-ahead log segment."),
            ("generation", "Checkpoint generation of the store."),
            ("last_checkpoint_age_s", "Seconds since the last checkpoint."),
            ("wal_appends", "WAL records appended (across rotations)."),
            ("wal_commits", "Commit barriers reaching the WAL."),
            ("wal_syncs", "Physical WAL flushes (group commit folds "
                          "several commits into one)."),
        ):
            if backend.get(key) is not None:
                name = key[:-2] + "_seconds" if key.endswith("_s") else key
                gauge(name, help_text, backend[key])
        if (
            backend.get("wal_commits") is not None
            and backend.get("wal_syncs") is not None
        ):
            gauge(
                "wal_group_commit_riders",
                "Commits that rode another commit's flush.",
                backend["wal_commits"] - backend["wal_syncs"],
            )
        replica = self.replica
        if replica is not None and hasattr(replica, "metrics"):
            for key, value in replica.metrics().items():
                gauge(
                    f"replica_{key}",
                    f"Replica statistic {key!r} (see /health).",
                    value,
                )
        else:
            # A primary advertises role/epoch too, so dashboards track
            # failover from either side of the pair.
            fenced = bool(getattr(db, "read_only", False))
            gauge(
                "replica_role_primary",
                "1 when this endpoint serves the primary.",
                0.0 if fenced else 1.0,
            )
            gauge(
                "replica_epoch",
                "Failover epoch of the served store.",
                getattr(db, "epoch", 0),
            )
        shipper = self.shipper
        if shipper is not None and hasattr(shipper, "metrics"):
            for key, value in shipper.metrics().items():
                gauge(
                    f"shipper_{key}",
                    f"Log-shipper statistic {key!r}.",
                    value,
                )
        log = self.query_log.status()
        gauge(
            "slow_query_log_entries",
            "Entries currently held in the slow-query ring buffer.",
            log["count"],
        )
        if log["threshold_s"] is not None:
            gauge(
                "slow_query_threshold_seconds",
                "Threshold above which a request is logged as slow.",
                log["threshold_s"],
            )
        return reg

    def handle_metrics(self) -> Response:
        """GET /metrics: Prometheus text exposition, admission-exempt.

        The chaos site ``obs:export`` fires inside the renderer; an
        injected failure maps to a 503 here — a broken or slow scrape
        can degrade monitoring, never serving.
        """
        try:
            text = render_exposition([REGISTRY, self._scrape_registry()])
        except FaultError as exc:
            self._count(error=True)
            return protocol.error_json("metrics-unavailable", str(exc), 503)
        except ReproError as exc:
            self._count(error=True)
            return protocol.error_json("metrics-unavailable", str(exc), 503)
        self._count()
        return Response(
            status=200, body=text, content_type=protocol.CONTENT_PROMETHEUS
        )

    def handle_stats(self) -> Response:
        """GET /admin/stats: serving statistics as JSON (admission-exempt,
        like /health — saturation is exactly when you need it)."""
        self._count()
        return Response.json(
            {
                "serving": self.serving_stats(),
                "requests": {
                    "served": self.requests_served,
                    "errors": self.errors_returned,
                },
                "slow_queries": self.query_log.status(),
            }
        )

    def handle_slow_queries(self) -> Response:
        """GET /admin/slow-queries: the slow-query ring, newest first."""
        self._count()
        return Response.json(
            {**self.query_log.status(), "entries": self.query_log.snapshot()}
        )

    def handle_query_analyze(self, body: str) -> Response:
        """``/query`` with ``explain=analyze``: execute the query with the
        operator probe armed and answer the instrumented plan instead of
        the result rows."""
        blocked = self._replica_gate()
        if blocked is not None:
            return blocked
        try:
            with analyze_scope() as probe:
                result = self.session.query(body)
        except QueryTimeout as exc:
            self._count(error=True)
            return protocol.error_json(
                "timeout", str(exc), 408, retry_after=self.retry_after
            )
        except ReproError as exc:
            self._count(error=True)
            return Response.text(f"error: {exc}", status=400)
        self._count()
        report = probe.report()
        if isinstance(result, bool):
            report["result"] = result
        elif not isinstance(result, Graph):
            report["result_rows"] = len(result.solutions)
            annotate(rows=len(result.solutions))
        return self._tag_replica(Response.json(report))

    def _finish_request(
        self, op: str, status: int, trace: Dict[str, Any], total_s: float
    ) -> None:
        """Metrics + access log + slow-query tee for one work request."""
        REQUESTS.labels(op, str(status)).inc()
        REQUEST_SECONDS.labels(op).observe(total_s)
        queue_wait = trace.get("queue_wait_s")
        if queue_wait is not None:
            QUEUE_WAIT_SECONDS.observe(queue_wait)
        entry: Dict[str, Any] = {
            "request_id": trace.get("request_id"),
            "op": op,
            "status": status,
            "total_s": round(total_s, 6),
        }
        for key in ("queue_wait_s", "execute_s", "serialize_s"):
            if trace.get(key) is not None:
                entry[key] = round(trace[key], 6)
        for key, value in trace.items():
            if key not in entry and not key.endswith("_s"):
                entry[key] = value
        self._log_access(entry)
        self.query_log.record(entry)

    def _log_access(self, entry: Dict[str, Any]) -> None:
        stream = self.access_log
        if stream is None:
            return
        line = json.dumps(entry, default=str, sort_keys=False)
        try:
            with self._access_log_lock:
                stream.write(line + "\n")
                stream.flush()
        except (OSError, ValueError):
            pass  # a broken log sink must never fail the request

    # ------------------------------------------------------------------
    # deadlines
    # ------------------------------------------------------------------

    def _request_deadline(
        self, query_string: Optional[str], headers
    ) -> Optional[Deadline]:
        """The budget for one request: the tighter of the server default
        and any client-requested ``timeout=`` param / ``X-Request-
        Deadline`` header.  Raises ValueError on a malformed value (the
        HTTP layer answers 400)."""
        requested: List[float] = []
        if query_string:
            params = urllib.parse.parse_qs(query_string)
            if "timeout" in params:
                requested.append(
                    _positive_seconds(params["timeout"][0], "timeout parameter")
                )
        header = headers.get("X-Request-Deadline") if headers is not None else None
        if header is not None:
            requested.append(
                _positive_seconds(header, "X-Request-Deadline header")
            )
        budget = self.default_timeout
        if requested:
            tightest = min(requested)
            budget = tightest if budget is None else min(tightest, budget)
        return None if budget is None else Deadline(budget)

    # ------------------------------------------------------------------
    # replica staleness gate (ISSUE 8)
    # ------------------------------------------------------------------

    def _serving_replica(self) -> Optional[Any]:
        """The replica this endpoint is serving reads for, or None when
        the endpoint serves a primary.  A promoted replica (its ``role``
        flipped to ``"primary"``) stops counting: write refusals and
        staleness gates lift the moment :meth:`handle_promote` returns,
        with no endpoint reconfiguration."""
        replica = self.replica
        if replica is None:
            return None
        if getattr(replica, "role", "replica") == "primary":
            return None
        return replica

    def _replica_gate(self) -> Optional[Response]:
        """None when a read may be served here; a 503 when this endpoint
        is a replica that is still syncing or too stale (``max_replica_
        lag`` exceeded) — the client retries against the primary."""
        replica = self._serving_replica()
        if replica is None:
            return None
        if not replica.ready:
            self._count(error=True)
            return protocol.error_json(
                "replica-syncing",
                "replica has not finished bootstrap replay; retry on "
                "the primary",
                503,
                retry_after=self.retry_after,
            )
        lag = replica.lag()
        if self.max_replica_lag is not None and lag > self.max_replica_lag:
            self._count(error=True)
            response = protocol.error_json(
                "replica-lagging",
                f"replica lag {lag:.3f}s exceeds the bound of "
                f"{self.max_replica_lag:g}s; retry on the primary",
                503,
                retry_after=self.retry_after,
                lag_s=round(lag, 3),
            )
            response.headers["X-Replica-Lag"] = f"{lag:.3f}"
            return response
        return None

    def _tag_replica(self, response: Response) -> Response:
        """Attach the staleness measurement to a replica-served read."""
        replica = self._serving_replica()
        if replica is not None:
            lag = replica.lag()
            if math.isfinite(lag):
                response.headers["X-Replica-Lag"] = f"{lag:.3f}"
        return response

    def _refuse_write(self, what: str) -> Response:
        self._count(error=True)
        return protocol.error_json(
            "read-only-replica",
            f"{what} must go to the primary; this endpoint serves a "
            "read replica",
            403,
        )

    # ------------------------------------------------------------------
    # protocol handlers (network-independent)
    # ------------------------------------------------------------------

    def handle_update(self, body: str) -> Response:
        """POST /update: translate + execute, answer with RDF feedback.

        Placeholders are rejected at parse time (the wire protocol has no
        bindings), preserving the submission's concreteness rule.
        """
        if self._serving_replica() is not None:
            return self._refuse_write("updates")
        try:
            result = self.session.prepare_update(
                body, allow_placeholders=False
            ).execute()
        except TranslationError as exc:
            self._count(error=True)
            return Response.turtle(error_graph(exc), status=400)
        except SPARQLParseError as exc:
            self._count(error=True)
            return Response.turtle(error_graph(_parse_error(exc)), status=400)
        except QueryTimeout as exc:
            self._count(error=True)
            return protocol.error_json(
                "timeout", str(exc), 408, retry_after=self.retry_after
            )
        except ReadOnlyDatabaseError as exc:
            # Fenced/deposed primary: the write provably did not execute,
            # so the client may safely re-route it (ISSUE 9).
            self._count(error=True)
            return protocol.error_json("read-only", str(exc), 403)
        except ReplicationError as exc:
            # Semi-sync barrier timed out: durable here, unacknowledged
            # by the replica quorum.  NOT safe to blindly retry.
            self._count(error=True)
            return protocol.error_json(
                "replication-degraded", str(exc), 503,
                retry_after=self.retry_after,
            )
        except DurabilityError as exc:
            self._count(error=True)
            return protocol.error_json("storage-degraded", str(exc), 503)
        self._count()
        return Response.turtle(result.feedback(), status=200)

    def handle_batch(self, body: str, content_type: Optional[str] = None) -> Response:
        """POST /batch: all operations inside one database transaction.

        ``application/json`` bodies carry an array of SPARQL/Update
        request strings; anything else is one (possibly multi-operation)
        SPARQL/Update request.  On error nothing is persisted.
        """
        if self._serving_replica() is not None:
            return self._refuse_write("batches")
        try:
            if (
                content_type
                and content_type.split(";")[0].strip().lower()
                == protocol.CONTENT_JSON
            ):
                requests = json.loads(body)
                if not isinstance(requests, list) or not all(
                    isinstance(r, str) for r in requests
                ):
                    self._count(error=True)
                    return Response.text(
                        "batch body must be a JSON array of SPARQL/Update "
                        "strings",
                        status=400,
                    )
            else:
                requests = [body]
            result = self.session.execute_all(requests)
        except json.JSONDecodeError as exc:
            self._count(error=True)
            return Response.text(f"invalid JSON body: {exc}", status=400)
        except TranslationError as exc:
            self._count(error=True)
            return Response.turtle(error_graph(exc), status=400)
        except SPARQLParseError as exc:
            self._count(error=True)
            return Response.turtle(error_graph(_parse_error(exc)), status=400)
        except QueryTimeout as exc:
            self._count(error=True)
            return protocol.error_json(
                "timeout", str(exc), 408, retry_after=self.retry_after
            )
        except ReadOnlyDatabaseError as exc:
            self._count(error=True)
            return protocol.error_json("read-only", str(exc), 403)
        except ReplicationError as exc:
            self._count(error=True)
            return protocol.error_json(
                "replication-degraded", str(exc), 503,
                retry_after=self.retry_after,
            )
        except DurabilityError as exc:
            self._count(error=True)
            return protocol.error_json("storage-degraded", str(exc), 503)
        self._count()
        return Response.turtle(result.feedback(), status=200)

    def handle_query(self, body: str, accept: Optional[str] = None) -> Response:
        """POST /query (or GET): SELECT/ASK/CONSTRUCT over the mediated
        database, content-negotiated via ``accept``.

        SELECT results are serialized incrementally (JSON / CSV / TSV /
        text table) and streamed with chunked transfer encoding, so a
        large result never needs to exist as one response string.

        On a replica the query is refused with 503 while syncing or past
        the lag bound, and a served result carries ``X-Replica-Lag``.
        """
        blocked = self._replica_gate()
        if blocked is not None:
            return blocked
        return self._tag_replica(self._handle_query(body, accept))

    def _handle_query(self, body: str, accept: Optional[str] = None) -> Response:
        if not protocol.acceptable(accept):
            self._count(error=True)
            return protocol.error_json(
                "not-acceptable",
                f"cannot satisfy Accept: {accept!r}; supported result "
                "formats are listed under 'supported'",
                406,
                supported=list(protocol.QUERY_RESULT_TYPES),
            )
        try:
            result = self.session.query(body)
        except QueryTimeout as exc:
            self._count(error=True)
            return protocol.error_json(
                "timeout", str(exc), 408, retry_after=self.retry_after
            )
        except (ReproError,) as exc:
            self._count(error=True)
            return Response.text(f"error: {exc}", status=400)
        self._count()
        if not isinstance(result, (bool, Graph)):
            annotate(rows=len(result.solutions))
        wants_json = protocol.accepts(accept, protocol.CONTENT_SPARQL_JSON)
        wants_xml = protocol.accepts(accept, protocol.CONTENT_SPARQL_XML)
        if isinstance(result, bool):
            if wants_json:
                return Response.json(
                    protocol.render_ask_json(result),
                    content_type=protocol.CONTENT_SPARQL_JSON,
                )
            if wants_xml:
                return Response(
                    status=200,
                    body=protocol.render_ask_xml(result),
                    content_type=protocol.CONTENT_SPARQL_XML,
                )
            return Response.text("true" if result else "false")
        if isinstance(result, Graph):
            return Response.turtle(result)
        if wants_json:
            # JSON first: a client listing both sparql-results+json and
            # another format keeps getting the richer format it always
            # got; XML outranks CSV/TSV for the same reason.
            return Response.stream(
                protocol.iter_select_json(result),
                protocol.CONTENT_SPARQL_JSON,
            )
        if wants_xml:
            return Response.stream(
                protocol.iter_select_xml(result),
                protocol.CONTENT_SPARQL_XML,
            )
        if protocol.accepts(accept, protocol.CONTENT_CSV):
            return Response.stream(
                protocol.iter_select_csv(result), protocol.CONTENT_CSV
            )
        if protocol.accepts(accept, protocol.CONTENT_TSV):
            return Response.stream(
                protocol.iter_select_tsv(result), protocol.CONTENT_TSV
            )
        return Response.stream(
            protocol.iter_select_result(result), protocol.CONTENT_TEXT
        )

    def handle_dump(self) -> Response:
        blocked = self._replica_gate()
        if blocked is not None:
            return blocked
        self._count()
        return self._tag_replica(Response.turtle(self.session.dump()))

    def handle_checkpoint(self) -> Response:
        """POST /admin/checkpoint: serialize the committed state and
        truncate the write-ahead log (no-op answer when the endpoint
        serves an in-memory database)."""
        if self._serving_replica() is not None:
            return self._refuse_write("checkpoints")
        try:
            path = self.session.checkpoint()
        except ReproError as exc:
            self._count(error=True)
            return Response.text(f"error: {exc}", status=409)
        if path is None:
            self._count(error=True)
            return Response.json(
                {"checkpoint": None, "error": "database has no data_dir"},
                status=409,
            )
        self._count()
        return Response.json({"checkpoint": path})

    def handle_promote(self) -> Response:
        """POST /admin/promote: promote this replica to primary (ISSUE 9).

        Answers 200 with the promotion record (new epoch, drained flag,
        applied position) — idempotently on repeat calls, since
        :meth:`Replica.promote` is.  409 ``not-promotable`` when the
        endpoint has no promotion path (it already serves a primary, or
        was launched without one); 500 ``promotion-failed`` when the
        promotion itself errored (the replica is stopped but writable
        state was not reached — operator attention required)."""
        promoter = self.promoter
        if promoter is None:
            self._count(error=True)
            return protocol.error_json(
                "not-promotable",
                "this endpoint has no promotion path; it either already "
                "serves a primary or was started without one",
                409,
            )
        with self._promote_lock:
            try:
                record = promoter()
            except ReproError as exc:
                self._count(error=True)
                return protocol.error_json("promotion-failed", str(exc), 500)
        self._count()
        return Response.json({"promoted": True, **record})

    def handle_mapping(self) -> Response:
        self._count()
        return Response(
            status=200,
            body=mapping_to_turtle(self.mediator.mapping),
            content_type=protocol.CONTENT_TURTLE,
        )

    def handle_health(self) -> Response:
        """GET /health: always 200; ``status`` is ``"degraded"`` when the
        WAL is refusing commits.  Includes durability detail (sync mode,
        WAL bytes, last checkpoint age) and serving statistics."""
        backend = self.session.health()
        degraded = bool(backend.get("wal_refusing"))
        self._count()
        doc = {
            "status": "degraded" if degraded else "ok",
            "backend": backend,
            "serving": self.serving_stats(),
            "requests": {
                "served": self.requests_served,
                "errors": self.errors_returned,
            },
        }
        # Failover discovery (ISSUE 9): clients pick a new primary by
        # probing /health for role == "primary" with the highest epoch.
        replica = self.replica
        if replica is not None:
            doc["role"] = replica.role
            doc["epoch"] = replica.epoch
            doc["replication"] = replica.status()
        else:
            db = self.mediator.db
            # A deposed primary (fenced by a higher epoch, flipped
            # read-only) must not advertise itself as primary, or
            # clients would keep routing writes into 403s.
            fenced = bool(getattr(db, "read_only", False))
            doc["role"] = "fenced" if fenced else "primary"
            doc["epoch"] = getattr(db, "epoch", 0)
        return Response.json(doc)

    def handle_ready(self) -> Response:
        """GET /ready: 200 while the endpoint can accept writes (or, on a
        replica, serve synced reads), 503 while degraded — durable store
        refusing commits, or replica bootstrap replay still running
        (load balancers drain on this)."""
        if self._serving_replica() is not None and not self.replica.ready:
            self._count(error=True)
            return protocol.error_json(
                "replica-syncing",
                "replica has not finished bootstrap replay",
                503,
                retry_after=self.retry_after,
                replica=self.replica.status(),
            )
        backend = self.session.health()
        if backend.get("wal_refusing"):
            self._count(error=True)
            return protocol.error_json(
                "degraded",
                "write-ahead log is refusing commits; restart the process "
                "to recover the durable prefix",
                503,
            )
        self._count()
        doc: Dict[str, Any] = {"ready": True}
        if self.replica is not None:
            doc["replica"] = self.replica.status()
        return Response.json(doc)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        if self._server is not None:
            return
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            # HTTP/1.1 so streamed responses can use chunked transfer
            # encoding (fixed-length responses still send Content-Length).
            protocol_version = "HTTP/1.1"

            def log_message(self, *args) -> None:  # keep tests quiet
                pass

            def _request_headers(self, response: Response) -> None:
                for name, value in response.headers.items():
                    self.send_header(name, value)
                # Echo the request id on every response — errors too —
                # so one id joins client retries, server logs, and the
                # slow-query entry.
                if "X-Request-Id" not in response.headers:
                    rid = current_request_id()
                    if rid:
                        self.send_header("X-Request-Id", rid)

            def _send(
                self, response: Response, deadline: Optional[Deadline] = None
            ) -> None:
                if response.body_iter is not None:
                    if self.request_version == "HTTP/1.0":
                        # RFC 7230: no chunked framing toward a 1.0 peer;
                        # reading .body drains the iterator into one
                        # buffered payload sent with Content-Length.
                        pass
                    else:
                        self._send_chunked(response, deadline)
                        return
                payload = response.body.encode("utf-8")
                self.send_response(response.status)
                self.send_header("Content-Type", response.content_type)
                self._request_headers(response)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                try:
                    self.wfile.write(payload)
                except OSError:
                    # Client went away mid-response: close our side; the
                    # shared session is untouched (it already returned).
                    endpoint._note_stream_abort()
                    self.close_connection = True

            def _send_chunked(
                self, response: Response, deadline: Optional[Deadline] = None
            ) -> None:
                self.send_response(response.status)
                self.send_header("Content-Type", response.content_type)
                self._request_headers(response)
                self.send_header("Transfer-Encoding", "chunked")
                self.end_headers()
                write = self.wfile.write
                try:
                    for chunk in response.body_iter:
                        if INJECTOR.armed:
                            INJECTOR.fire("endpoint:stream")
                        if deadline is not None:
                            deadline.check()
                        data = chunk.encode("utf-8")
                        if not data:
                            continue  # an empty chunk would end the body
                        write(f"{len(data):X}\r\n".encode("ascii"))
                        write(data)
                        write(b"\r\n")
                    write(b"0\r\n\r\n")
                except (QueryTimeout, FaultError, OSError):
                    # Truncate without the terminating 0-chunk so the
                    # client sees an aborted body, and close the
                    # connection — never leave a desynced keep-alive.
                    endpoint._note_stream_abort()
                    self.close_connection = True

            def _admitted(
                self,
                split,
                work: Callable[[], Response],
                op: str = "request",
            ) -> None:
                """Run one work request under admission control and its
                deadline; sends the response (or the 400/503 shed).

                The whole dispatch runs inside a trace scope: the phase
                timings (queue wait, execute, serialize) and any
                annotations from deeper layers feed one access-log line,
                the request counters, and the slow-query tee."""
                started = time.perf_counter()
                with trace_scope(
                    request_id=current_request_id(), op=op
                ) as trace:
                    self._admitted_traced(split, work, op, trace, started)

            def _admitted_traced(
                self, split, work, op, trace, started
            ) -> None:
                try:
                    deadline = endpoint._request_deadline(
                        split.query, self.headers
                    )
                except ValueError as exc:
                    endpoint._count(error=True)
                    trace["cause"] = "bad-timeout"
                    self._send_traced(
                        protocol.error_json("bad-timeout", str(exc), 400),
                        None, op, trace, started,
                    )
                    return
                admit_start = time.perf_counter()
                admitted = endpoint._gate.admit(deadline)
                trace["queue_wait_s"] = time.perf_counter() - admit_start
                if not admitted:
                    endpoint._count(error=True)
                    trace["cause"] = "shed"
                    self._send_traced(
                        protocol.error_json(
                            "overloaded",
                            "server is at capacity; retry after backoff",
                            503,
                            retry_after=endpoint.retry_after,
                        ),
                        None, op, trace, started,
                    )
                    return
                try:
                    with deadline_scope(deadline):
                        # Streaming happens inside both the scope and the
                        # admission slot: serialization is request work.
                        exec_start = time.perf_counter()
                        response = work()
                        trace["execute_s"] = (
                            time.perf_counter() - exec_start
                        )
                        if response.status == 408:
                            trace["cause"] = "timeout"
                        self._send_traced(
                            response, deadline, op, trace, started
                        )
                finally:
                    endpoint._gate.release()

            def _send_traced(
                self, response, deadline, op, trace, started
            ) -> None:
                serialize_start = time.perf_counter()
                self._send(response, deadline)
                trace["serialize_s"] = time.perf_counter() - serialize_start
                endpoint._finish_request(
                    op, response.status, trace,
                    time.perf_counter() - started,
                )

            def do_POST(self) -> None:
                with request_scope(
                    sanitize_request_id(self.headers.get("X-Request-Id"))
                ):
                    self._route_post()

            def do_GET(self) -> None:
                with request_scope(
                    sanitize_request_id(self.headers.get("X-Request-Id"))
                ):
                    self._route_get()

            def _route_post(self) -> None:
                if "chunked" in (
                    self.headers.get("Transfer-Encoding") or ""
                ).lower():
                    # Bodies are read via Content-Length only; under
                    # HTTP/1.1 keep-alive an unread chunked payload would
                    # desync the connection, so refuse and close instead.
                    self.close_connection = True
                    self._send(
                        Response.text(
                            "chunked request bodies are not supported; "
                            "send Content-Length",
                            status=411,
                        )
                    )
                    return
                length_header = self.headers.get("Content-Length", "0")
                try:
                    length = int(length_header)
                except ValueError:
                    self.close_connection = True
                    self._send(
                        protocol.error_json(
                            "bad-request",
                            f"invalid Content-Length: {length_header!r}",
                            400,
                        )
                    )
                    return
                if length > endpoint.max_body_bytes:
                    # The body is never read: close the connection rather
                    # than resynchronize by swallowing it.
                    endpoint._count(error=True)
                    self.close_connection = True
                    self._send(
                        protocol.error_json(
                            "body-too-large",
                            f"request body of {length} bytes exceeds the "
                            f"limit of {endpoint.max_body_bytes} bytes",
                            413,
                        )
                    )
                    return
                body = self.rfile.read(length).decode("utf-8")
                split = urllib.parse.urlsplit(self.path)
                accept = self.headers.get("Accept")
                content_type = self.headers.get("Content-Type")
                if split.path == protocol.UPDATE_PATH:
                    self._admitted(
                        split,
                        lambda: endpoint.handle_update(body),
                        op="update",
                    )
                elif split.path == protocol.QUERY_PATH:
                    params = urllib.parse.parse_qs(split.query)
                    if params.get("explain") == ["analyze"]:
                        self._admitted(
                            split,
                            lambda: endpoint.handle_query_analyze(body),
                            op="query",
                        )
                        return
                    self._admitted(
                        split,
                        lambda: endpoint.handle_query(body, accept=accept),
                        op="query",
                    )
                elif split.path == protocol.BATCH_PATH:
                    self._admitted(
                        split,
                        lambda: endpoint.handle_batch(
                            body, content_type=content_type
                        ),
                        op="batch",
                    )
                elif split.path == protocol.CHECKPOINT_PATH:
                    self._send(endpoint.handle_checkpoint())
                elif split.path == protocol.PROMOTE_PATH:
                    # Promotion bypasses admission: it must run exactly
                    # when the cluster is degraded and load is shedding.
                    self._send(endpoint.handle_promote())
                else:
                    self._send(Response.text("not found", status=404))

            def _route_get(self) -> None:
                split = urllib.parse.urlsplit(self.path)
                if split.path == protocol.HEALTH_PATH:
                    # Health/readiness bypass admission: a probe must
                    # answer precisely when the server is saturated.
                    self._send(endpoint.handle_health())
                elif split.path == protocol.READY_PATH:
                    self._send(endpoint.handle_ready())
                elif split.path == protocol.METRICS_PATH:
                    # /metrics bypasses admission like the probes — a
                    # saturated (or degraded) server must still scrape.
                    self._send(endpoint.handle_metrics())
                elif split.path == protocol.STATS_PATH:
                    self._send(endpoint.handle_stats())
                elif split.path == protocol.SLOW_QUERIES_PATH:
                    self._send(endpoint.handle_slow_queries())
                elif split.path == protocol.DUMP_PATH:
                    self._admitted(split, endpoint.handle_dump, op="dump")
                elif split.path == protocol.MAPPING_PATH:
                    self._send(endpoint.handle_mapping())
                elif split.path == protocol.QUERY_PATH:
                    # SPARQL Protocol: GET /query?query=<urlencoded>
                    params = urllib.parse.parse_qs(split.query)
                    queries = params.get("query")
                    if not queries:
                        endpoint._count(error=True)
                        self._send(
                            Response.text("missing query parameter", status=400)
                        )
                        return
                    if params.get("explain") == ["analyze"]:
                        self._admitted(
                            split,
                            lambda: endpoint.handle_query_analyze(queries[0]),
                            op="query",
                        )
                        return
                    accept = self.headers.get("Accept")
                    self._admitted(
                        split,
                        lambda: endpoint.handle_query(
                            queries[0], accept=accept
                        ),
                        op="query",
                    )
                else:
                    self._send(Response.text("not found", status=404))

        self._server = _BoundedThreadingHTTPServer(
            (self.host, self._requested_port),
            Handler,
            max_connections=self.max_connections,
            retry_after=self.retry_after,
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._thread = None

    def __enter__(self) -> "OntoAccessEndpoint":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _positive_seconds(text: str, what: str) -> float:
    try:
        value = float(text)
    except (TypeError, ValueError):
        raise ValueError(f"invalid {what}: {text!r} is not a number") from None
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(
            f"invalid {what}: {text!r} must be a positive finite number "
            "of seconds"
        )
    return value


def _parse_error(exc: SPARQLParseError) -> TranslationError:
    return TranslationError(
        f"cannot parse request: {exc}",
        code=TranslationError.UNSUPPORTED,
    )
