"""The OntoAccess HTTP endpoint (paper Section 6) on stdlib http.server.

Usage::

    from repro.server import OntoAccessEndpoint
    endpoint = OntoAccessEndpoint(mediator, port=0)   # 0 = ephemeral port
    endpoint.start()
    ...  # clients POST SPARQL/Update to http://localhost:{endpoint.port}/update
    endpoint.stop()

The endpoint is intentionally small: request routing and HTTP concerns
live here, all semantics live in the mediator.  ``handle_update`` /
``handle_query`` are also callable directly (no network) so tests can
exercise the protocol logic in isolation.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..errors import ReproError, SPARQLParseError, TranslationError
from ..core.feedback import error_graph
from ..core.mediator import OntoAccess
from ..rdf.graph import Graph
from ..r3m.serialize import mapping_to_turtle
from . import protocol
from .protocol import Response

__all__ = ["OntoAccessEndpoint"]


class OntoAccessEndpoint:
    """Serves a mediator over HTTP."""

    def __init__(self, mediator: OntoAccess, host: str = "127.0.0.1", port: int = 0) -> None:
        self.mediator = mediator
        self.host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        #: simple request counters for monitoring/benchmarks
        self.requests_served = 0
        self.errors_returned = 0

    # ------------------------------------------------------------------
    # protocol handlers (network-independent)
    # ------------------------------------------------------------------

    def handle_update(self, body: str) -> Response:
        """POST /update: translate + execute, answer with RDF feedback."""
        self.requests_served += 1
        try:
            result = self.mediator.update(body)
        except (TranslationError,) as exc:
            self.errors_returned += 1
            return Response.turtle(error_graph(exc), status=400)
        except SPARQLParseError as exc:
            self.errors_returned += 1
            parse_error = TranslationError(
                f"cannot parse request: {exc}",
                code=TranslationError.UNSUPPORTED,
            )
            return Response.turtle(error_graph(parse_error), status=400)
        return Response.turtle(result.feedback(), status=200)

    def handle_query(self, body: str) -> Response:
        """POST /query: SELECT/ASK/CONSTRUCT over the mediated database."""
        self.requests_served += 1
        try:
            result = self.mediator.query(body)
        except (ReproError,) as exc:
            self.errors_returned += 1
            return Response.text(f"error: {exc}", status=400)
        if isinstance(result, bool):
            return Response.text("true" if result else "false")
        if isinstance(result, Graph):
            return Response.turtle(result)
        return Response(
            status=200,
            body=protocol.render_select_result(result),
            content_type=protocol.CONTENT_TEXT,
        )

    def handle_dump(self) -> Response:
        self.requests_served += 1
        return Response.turtle(self.mediator.dump())

    def handle_mapping(self) -> Response:
        self.requests_served += 1
        return Response(
            status=200,
            body=mapping_to_turtle(self.mediator.mapping),
            content_type=protocol.CONTENT_TURTLE,
        )

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        if self._server is not None:
            return
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # keep tests quiet
                pass

            def _send(self, response: Response) -> None:
                payload = response.body.encode("utf-8")
                self.send_response(response.status)
                self.send_header("Content-Type", response.content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_POST(self) -> None:
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length).decode("utf-8")
                if self.path == protocol.UPDATE_PATH:
                    self._send(endpoint.handle_update(body))
                elif self.path == protocol.QUERY_PATH:
                    self._send(endpoint.handle_query(body))
                else:
                    self._send(Response.text("not found", status=404))

            def do_GET(self) -> None:
                if self.path == protocol.DUMP_PATH:
                    self._send(endpoint.handle_dump())
                elif self.path == protocol.MAPPING_PATH:
                    self._send(endpoint.handle_mapping())
                else:
                    self._send(Response.text("not found", status=404))

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._thread = None

    def __enter__(self) -> "OntoAccessEndpoint":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
