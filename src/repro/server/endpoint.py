"""The OntoAccess HTTP endpoint (paper Section 6) on stdlib http.server.

Usage::

    from repro.server import OntoAccessEndpoint
    endpoint = OntoAccessEndpoint(mediator, port=0)   # 0 = ephemeral port
    endpoint.start()
    ...  # clients POST SPARQL to http://localhost:{endpoint.port}/update
    endpoint.stop()

The endpoint is intentionally small: request routing, content negotiation
and HTTP concerns live here, all semantics live in the mediator's
:class:`~repro.core.session.Session`.  The endpoint drives one shared
session: update requests serialize on the backend's write-tier lock,
while query requests run lock-free against the engine's committed MVCC
snapshot — so the ``ThreadingHTTPServer``'s handler threads genuinely
answer reads concurrently with each other and with at most one writer.
Request counters are kept per handler thread (no shared lock on the hot
path) and aggregated on read.  ``handle_update`` / ``handle_query`` /
``handle_batch`` are also callable directly (no network) so tests can
exercise the protocol logic in isolation.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional

from ..errors import ReproError, SPARQLParseError, TranslationError
from ..core.feedback import error_graph
from ..core.mediator import OntoAccess
from ..rdf.graph import Graph
from ..r3m.serialize import mapping_to_turtle
from . import protocol
from .protocol import Response

__all__ = ["OntoAccessEndpoint"]


class _ThreadCounters:
    """Contention-free request counters.

    Each handler thread owns a private ``[served, errors]`` cell
    (registered once per thread under a lock); the hot path is two plain
    list increments with no shared lock, so concurrent readers are never
    reserialized just to be counted.  Aggregation sums the cells on read
    — increments are GIL-atomic, and a torn read can at worst miss an
    in-flight request, which the old locked counter could too (the read
    could land just before its increment).
    """

    def __init__(self) -> None:
        self._local = threading.local()
        #: (owning thread, cell) pairs for live threads; dead threads'
        #: counts are folded into _base at the next registration so the
        #: list stays bounded by the number of *concurrent* threads, not
        #: connections ever served.
        self._cells: List[tuple] = []
        self._base = [0, 0]
        self._register = threading.Lock()

    def count(self, error: bool = False) -> None:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = [0, 0]
            with self._register:
                live = []
                for thread, other in self._cells:
                    if thread.is_alive():
                        live.append((thread, other))
                    else:  # its increments are done: fold and forget
                        self._base[0] += other[0]
                        self._base[1] += other[1]
                live.append((threading.current_thread(), cell))
                self._cells = live
            self._local.cell = cell
        cell[0] += 1
        if error:
            cell[1] += 1

    def _total(self, index: int) -> int:
        with self._register:
            return self._base[index] + sum(
                cell[index] for _, cell in self._cells
            )

    @property
    def served(self) -> int:
        return self._total(0)

    @property
    def errors(self) -> int:
        return self._total(1)


class OntoAccessEndpoint:
    """Serves a mediator over HTTP (SPARQL-Protocol-shaped)."""

    def __init__(self, mediator: OntoAccess, host: str = "127.0.0.1", port: int = 0) -> None:
        self.mediator = mediator
        #: One session shared by all handler threads: writes serialize on
        #: its write-tier lock, reads run against committed snapshots, and
        #: its prepared cache amortizes repeated texts across threads.
        self.session = mediator.session()
        self.host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        #: per-thread request counters for monitoring/benchmarks
        self._stats = _ThreadCounters()

    @property
    def requests_served(self) -> int:
        return self._stats.served

    @property
    def errors_returned(self) -> int:
        return self._stats.errors

    def _count(self, error: bool = False) -> None:
        self._stats.count(error=error)

    # ------------------------------------------------------------------
    # protocol handlers (network-independent)
    # ------------------------------------------------------------------

    def handle_update(self, body: str) -> Response:
        """POST /update: translate + execute, answer with RDF feedback.

        Placeholders are rejected at parse time (the wire protocol has no
        bindings), preserving the submission's concreteness rule.
        """
        try:
            result = self.session.prepare_update(
                body, allow_placeholders=False
            ).execute()
        except TranslationError as exc:
            self._count(error=True)
            return Response.turtle(error_graph(exc), status=400)
        except SPARQLParseError as exc:
            self._count(error=True)
            return Response.turtle(error_graph(_parse_error(exc)), status=400)
        self._count()
        return Response.turtle(result.feedback(), status=200)

    def handle_batch(self, body: str, content_type: Optional[str] = None) -> Response:
        """POST /batch: all operations inside one database transaction.

        ``application/json`` bodies carry an array of SPARQL/Update
        request strings; anything else is one (possibly multi-operation)
        SPARQL/Update request.  On error nothing is persisted.
        """
        try:
            if (
                content_type
                and content_type.split(";")[0].strip().lower()
                == protocol.CONTENT_JSON
            ):
                requests = json.loads(body)
                if not isinstance(requests, list) or not all(
                    isinstance(r, str) for r in requests
                ):
                    self._count(error=True)
                    return Response.text(
                        "batch body must be a JSON array of SPARQL/Update "
                        "strings",
                        status=400,
                    )
            else:
                requests = [body]
            result = self.session.execute_all(requests)
        except json.JSONDecodeError as exc:
            self._count(error=True)
            return Response.text(f"invalid JSON body: {exc}", status=400)
        except TranslationError as exc:
            self._count(error=True)
            return Response.turtle(error_graph(exc), status=400)
        except SPARQLParseError as exc:
            self._count(error=True)
            return Response.turtle(error_graph(_parse_error(exc)), status=400)
        self._count()
        return Response.turtle(result.feedback(), status=200)

    def handle_query(self, body: str, accept: Optional[str] = None) -> Response:
        """POST /query (or GET): SELECT/ASK/CONSTRUCT over the mediated
        database, content-negotiated via ``accept``.

        SELECT results are serialized incrementally (JSON / CSV / TSV /
        text table) and streamed with chunked transfer encoding, so a
        large result never needs to exist as one response string.
        """
        try:
            result = self.session.query(body)
        except (ReproError,) as exc:
            self._count(error=True)
            return Response.text(f"error: {exc}", status=400)
        self._count()
        wants_json = protocol.accepts(accept, protocol.CONTENT_SPARQL_JSON)
        wants_xml = protocol.accepts(accept, protocol.CONTENT_SPARQL_XML)
        if isinstance(result, bool):
            if wants_json:
                return Response.json(
                    protocol.render_ask_json(result),
                    content_type=protocol.CONTENT_SPARQL_JSON,
                )
            if wants_xml:
                return Response(
                    status=200,
                    body=protocol.render_ask_xml(result),
                    content_type=protocol.CONTENT_SPARQL_XML,
                )
            return Response.text("true" if result else "false")
        if isinstance(result, Graph):
            return Response.turtle(result)
        if wants_json:
            # JSON first: a client listing both sparql-results+json and
            # another format keeps getting the richer format it always
            # got; XML outranks CSV/TSV for the same reason.
            return Response.stream(
                protocol.iter_select_json(result),
                protocol.CONTENT_SPARQL_JSON,
            )
        if wants_xml:
            return Response.stream(
                protocol.iter_select_xml(result),
                protocol.CONTENT_SPARQL_XML,
            )
        if protocol.accepts(accept, protocol.CONTENT_CSV):
            return Response.stream(
                protocol.iter_select_csv(result), protocol.CONTENT_CSV
            )
        if protocol.accepts(accept, protocol.CONTENT_TSV):
            return Response.stream(
                protocol.iter_select_tsv(result), protocol.CONTENT_TSV
            )
        return Response.stream(
            protocol.iter_select_result(result), protocol.CONTENT_TEXT
        )

    def handle_dump(self) -> Response:
        self._count()
        return Response.turtle(self.session.dump())

    def handle_checkpoint(self) -> Response:
        """POST /admin/checkpoint: serialize the committed state and
        truncate the write-ahead log (no-op answer when the endpoint
        serves an in-memory database)."""
        try:
            path = self.session.checkpoint()
        except ReproError as exc:
            self._count(error=True)
            return Response.text(f"error: {exc}", status=409)
        if path is None:
            self._count(error=True)
            return Response.json(
                {"checkpoint": None, "error": "database has no data_dir"},
                status=409,
            )
        self._count()
        return Response.json({"checkpoint": path})

    def handle_mapping(self) -> Response:
        self._count()
        return Response(
            status=200,
            body=mapping_to_turtle(self.mediator.mapping),
            content_type=protocol.CONTENT_TURTLE,
        )

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        if self._server is not None:
            return
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            # HTTP/1.1 so streamed responses can use chunked transfer
            # encoding (fixed-length responses still send Content-Length).
            protocol_version = "HTTP/1.1"

            def log_message(self, *args) -> None:  # keep tests quiet
                pass

            def _send(self, response: Response) -> None:
                if response.body_iter is not None:
                    if self.request_version == "HTTP/1.0":
                        # RFC 7230: no chunked framing toward a 1.0 peer;
                        # reading .body drains the iterator into one
                        # buffered payload sent with Content-Length.
                        pass
                    else:
                        self._send_chunked(response)
                        return
                payload = response.body.encode("utf-8")
                self.send_response(response.status)
                self.send_header("Content-Type", response.content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def _send_chunked(self, response: Response) -> None:
                self.send_response(response.status)
                self.send_header("Content-Type", response.content_type)
                self.send_header("Transfer-Encoding", "chunked")
                self.end_headers()
                write = self.wfile.write
                for chunk in response.body_iter:
                    data = chunk.encode("utf-8")
                    if not data:
                        continue  # an empty chunk would terminate the body
                    write(f"{len(data):X}\r\n".encode("ascii"))
                    write(data)
                    write(b"\r\n")
                write(b"0\r\n\r\n")

            def do_POST(self) -> None:
                if "chunked" in (
                    self.headers.get("Transfer-Encoding") or ""
                ).lower():
                    # Bodies are read via Content-Length only; under
                    # HTTP/1.1 keep-alive an unread chunked payload would
                    # desync the connection, so refuse and close instead.
                    self.close_connection = True
                    self._send(
                        Response.text(
                            "chunked request bodies are not supported; "
                            "send Content-Length",
                            status=411,
                        )
                    )
                    return
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length).decode("utf-8")
                path = urllib.parse.urlsplit(self.path).path
                accept = self.headers.get("Accept")
                content_type = self.headers.get("Content-Type")
                if path == protocol.UPDATE_PATH:
                    self._send(endpoint.handle_update(body))
                elif path == protocol.QUERY_PATH:
                    self._send(endpoint.handle_query(body, accept=accept))
                elif path == protocol.BATCH_PATH:
                    self._send(
                        endpoint.handle_batch(body, content_type=content_type)
                    )
                elif path == protocol.CHECKPOINT_PATH:
                    self._send(endpoint.handle_checkpoint())
                else:
                    self._send(Response.text("not found", status=404))

            def do_GET(self) -> None:
                split = urllib.parse.urlsplit(self.path)
                if split.path == protocol.DUMP_PATH:
                    self._send(endpoint.handle_dump())
                elif split.path == protocol.MAPPING_PATH:
                    self._send(endpoint.handle_mapping())
                elif split.path == protocol.QUERY_PATH:
                    # SPARQL Protocol: GET /query?query=<urlencoded>
                    params = urllib.parse.parse_qs(split.query)
                    queries = params.get("query")
                    if not queries:
                        endpoint._count(error=True)
                        self._send(
                            Response.text("missing query parameter", status=400)
                        )
                        return
                    self._send(
                        endpoint.handle_query(
                            queries[0], accept=self.headers.get("Accept")
                        )
                    )
                else:
                    self._send(Response.text("not found", status=404))

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._thread = None

    def __enter__(self) -> "OntoAccessEndpoint":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _parse_error(exc: SPARQLParseError) -> TranslationError:
    return TranslationError(
        f"cannot parse request: {exc}",
        code=TranslationError.UNSUPPORTED,
    )
