"""HTTP client for the OntoAccess endpoint (stdlib urllib).

Gives applications the remote-manipulation interface the paper describes:
send SPARQL/Update, receive the parsed RDF feedback graph.  Mirrors the
SPARQL-Protocol shape of the endpoint: ``application/sparql-update`` /
``application/sparql-query`` request bodies, JSON query results via
content negotiation, and atomic batches via ``POST /batch``.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..rdf.graph import Graph
from ..rdf.namespace import OA, RDF
from ..rdf.terms import Literal
from ..rdf.turtle import parse_turtle
from . import protocol

__all__ = ["OntoAccessClient", "Feedback"]


@dataclass
class Feedback:
    """Parsed feedback: status plus the raw RDF graph."""

    ok: bool
    graph: Graph
    code: Optional[str] = None
    message: Optional[str] = None
    hint: Optional[str] = None

    @classmethod
    def from_graph(cls, graph: Graph, http_ok: bool) -> "Feedback":
        error_nodes = list(graph.subjects(RDF.type, OA.Error))
        if not error_nodes:
            return cls(ok=http_ok, graph=graph)
        node = error_nodes[0]

        def text(predicate) -> Optional[str]:
            value = graph.value(node, predicate, None)
            return value.lexical if isinstance(value, Literal) else None

        return cls(
            ok=False,
            graph=graph,
            code=text(OA.code),
            message=text(OA.message),
            hint=text(OA.hint),
        )


class OntoAccessClient:
    """Talks to a running :class:`~repro.server.OntoAccessEndpoint`."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def update(self, sparql_update: str) -> Feedback:
        """POST a SPARQL/Update request; returns parsed feedback."""
        status, body = self._post(
            protocol.UPDATE_PATH, sparql_update, protocol.CONTENT_SPARQL_UPDATE
        )
        return Feedback.from_graph(parse_turtle(body), http_ok=status == 200)

    def batch(self, updates: Union[str, Sequence[str]]) -> Feedback:
        """POST a batch executed inside one database transaction.

        Pass several SPARQL/Update request strings (sent as a JSON array)
        or a single multi-operation request.  All-or-nothing: on error the
        endpoint persists nothing and the feedback carries the cause.
        """
        if isinstance(updates, str):
            status, body = self._post(
                protocol.BATCH_PATH, updates, protocol.CONTENT_SPARQL_UPDATE
            )
        else:
            status, body = self._post(
                protocol.BATCH_PATH,
                json.dumps(list(updates)),
                protocol.CONTENT_JSON,
            )
        return _feedback_from_body(status, body)

    def query_text(self, sparql_query: str) -> str:
        """POST a SPARQL query; returns the raw textual response."""
        _, body = self._post(
            protocol.QUERY_PATH, sparql_query, protocol.CONTENT_SPARQL_QUERY
        )
        return body

    def query_json(self, sparql_query: str) -> dict:
        """POST a SPARQL query asking for SPARQL 1.1 JSON results.

        Returns the parsed document: ``{"head": {"vars": [...]},
        "results": {"bindings": [...]}}`` for SELECT, ``{"head": {},
        "boolean": ...}`` for ASK.  Raises :class:`~repro.errors.
        ReproError` with the server's message on a non-200 response.
        """
        status, body = self._post(
            protocol.QUERY_PATH,
            sparql_query,
            protocol.CONTENT_SPARQL_QUERY,
            accept=protocol.CONTENT_SPARQL_JSON,
        )
        if status != 200:
            from ..errors import ReproError

            raise ReproError(f"query failed (HTTP {status}): {body.strip()}")
        return json.loads(body)

    def dump(self) -> Graph:
        """GET the full RDF dump of the mediated database."""
        return parse_turtle(self._get(protocol.DUMP_PATH))

    def mapping_turtle(self) -> str:
        """GET the R3M mapping document."""
        return self._get(protocol.MAPPING_PATH)

    # ------------------------------------------------------------------

    def _post(
        self,
        path: str,
        body: str,
        content_type: str,
        accept: Optional[str] = None,
    ):
        headers = {"Content-Type": content_type}
        if accept is not None:
            headers["Accept"] = accept
        request = urllib.request.Request(
            self.base_url + path,
            data=body.encode("utf-8"),
            headers=headers,
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8")

    def _get(self, path: str) -> str:
        with urllib.request.urlopen(
            self.base_url + path, timeout=self.timeout
        ) as response:
            return response.read().decode("utf-8")


def _feedback_from_body(status: int, body: str) -> Feedback:
    """Feedback from a response that is usually Turtle but may be a
    plain-text error (e.g. /batch body-validation failures)."""
    try:
        graph = parse_turtle(body)
    except Exception:
        return Feedback(
            ok=status == 200, graph=Graph(), message=body.strip() or None
        )
    return Feedback.from_graph(graph, http_ok=status == 200)
