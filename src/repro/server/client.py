"""HTTP client for the OntoAccess endpoint (stdlib http.client).

Gives applications the remote-manipulation interface the paper describes:
send SPARQL/Update, receive the parsed RDF feedback graph.  Mirrors the
SPARQL-Protocol shape of the endpoint: ``application/sparql-update`` /
``application/sparql-query`` request bodies, JSON query results via
content negotiation, and atomic batches via ``POST /batch``.

Resilience (ISSUE 6):

* **Typed transport errors** — every connection/socket failure is
  wrapped in :class:`~repro.errors.EndpointTransportError` with the
  request context (method, URL, attempt count, cause) attached; raw
  ``socket.timeout`` / ``URLError`` never leak to callers.
* **Keep-alive** — one persistent ``http.client.HTTPConnection`` is
  reused across requests (the endpoint speaks HTTP/1.1); a dropped
  connection is re-established transparently.
* **Retry with backoff** — *idempotent* operations (query, dump,
  mapping, health, ready) are retried on transport errors and on
  503/408 responses, with exponential backoff and full jitter, honoring
  the server's ``Retry-After``.  Non-idempotent ``/update`` / ``/batch``
  / ``/admin/checkpoint`` are **never** auto-retried: the first attempt
  may have committed before the connection died.

Request ids (ISSUE 10) — every request carries an ``X-Request-Id``,
taken from the caller's :func:`~repro.observability.tracing.
request_scope` when one is open, else generated per logical request.
The id is constant across retries and failover re-routing, is echoed by
the server, and rides on :class:`~repro.errors.EndpointTransportError`
as ``request_id`` — one handle joins the client's error, the server's
access-log line, and its slow-query entry.

Write failover (ISSUE 9) — :class:`ReplicatedClient` re-routes writes
when the primary dies and a replica is promoted.  The rules are strict
about what may be retried:

* a **403 read-only refusal** provably executed nothing, so *any* write
  (idempotent or not) is re-routed to the freshly discovered primary;
* a **transport failure** is re-routed only when the request provably
  never reached a server (connection refused / host unreachable / DNS
  failure) **and** the caller declared the write ``idempotent=True`` —
  a write that may have committed before the connection died is never
  blindly resent.

The current primary is discovered by probing every known endpoint's
``/health`` for ``role == "primary"``, preferring the highest ``epoch``
(the fencing token: a deposed primary advertises a lower epoch, or
``role: fenced``).

A client instance is not thread-safe (it owns one connection); create
one per thread.
"""

from __future__ import annotations

import errno
import http.client
import json
import random
import socket
import time
import urllib.parse
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..errors import EndpointTransportError, ReproError
from ..observability.tracing import request_scope
from ..rdf.graph import Graph
from ..rdf.namespace import OA, RDF
from ..rdf.terms import Literal
from ..rdf.turtle import parse_turtle
from . import protocol

__all__ = ["OntoAccessClient", "Feedback", "ReplicatedClient", "RetryPolicy"]


@dataclass
class Feedback:
    """Parsed feedback: status plus the raw RDF graph."""

    ok: bool
    graph: Graph
    code: Optional[str] = None
    message: Optional[str] = None
    hint: Optional[str] = None

    @classmethod
    def from_graph(cls, graph: Graph, http_ok: bool) -> "Feedback":
        error_nodes = list(graph.subjects(RDF.type, OA.Error))
        if not error_nodes:
            return cls(ok=http_ok, graph=graph)
        node = error_nodes[0]

        def text(predicate) -> Optional[str]:
            value = graph.value(node, predicate, None)
            return value.lexical if isinstance(value, Literal) else None

        return cls(
            ok=False,
            graph=graph,
            code=text(OA.code),
            message=text(OA.message),
            hint=text(OA.hint),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter for idempotent requests.

    The delay before attempt ``n`` (0-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * 2**n)]`` — full jitter, so a
    thundering herd of clients decorrelates instead of re-colliding.
    A server-provided ``Retry-After`` raises the floor of that draw:
    the client never comes back earlier than the server asked.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    #: response statuses worth retrying (transient by construction)
    statuses: Tuple[int, ...] = (503, 408)

    def delay(self, attempt: int, retry_after: Optional[float] = None) -> float:
        cap = min(self.max_delay, self.base_delay * (2 ** attempt))
        delay = random.uniform(0.0, cap)
        if retry_after is not None:
            delay = max(delay, min(retry_after, self.max_delay))
        return delay


class OntoAccessClient:
    """Talks to a running :class:`~repro.server.OntoAccessEndpoint`."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme != "http":
            raise ValueError(
                f"unsupported URL scheme {parsed.scheme!r} (only http)"
            )
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._base_path = parsed.path.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self._conn: Optional[http.client.HTTPConnection] = None
        #: headers of the last response received (e.g. ``X-Replica-Lag``
        #: from a replica endpoint); None before the first response
        self.last_response_headers: Optional[dict] = None

    # -- write path (never auto-retried) --------------------------------

    def update(self, sparql_update: str) -> Feedback:
        """POST a SPARQL/Update request; returns parsed feedback."""
        status, body = self._post(
            protocol.UPDATE_PATH, sparql_update, protocol.CONTENT_SPARQL_UPDATE
        )
        return _feedback_from_body(status, body)

    def batch(self, updates: Union[str, Sequence[str]]) -> Feedback:
        """POST a batch executed inside one database transaction.

        Pass several SPARQL/Update request strings (sent as a JSON array)
        or a single multi-operation request.  All-or-nothing: on error the
        endpoint persists nothing and the feedback carries the cause.
        """
        if isinstance(updates, str):
            status, body = self._post(
                protocol.BATCH_PATH, updates, protocol.CONTENT_SPARQL_UPDATE
            )
        else:
            status, body = self._post(
                protocol.BATCH_PATH,
                json.dumps(list(updates)),
                protocol.CONTENT_JSON,
            )
        return _feedback_from_body(status, body)

    def checkpoint(self) -> dict:
        """POST /admin/checkpoint; returns the parsed JSON answer."""
        status, body = self._post(protocol.CHECKPOINT_PATH, "", protocol.CONTENT_JSON)
        if status != 200:
            raise ReproError(f"checkpoint failed (HTTP {status}): {body.strip()}")
        return json.loads(body)

    def promote(self) -> dict:
        """POST /admin/promote: promote the endpoint's replica to
        primary (ISSUE 9).  Returns the promotion record (``epoch``,
        ``drained``, ``applied``); raises on a non-200 answer."""
        status, body = self._post(protocol.PROMOTE_PATH, "", protocol.CONTENT_JSON)
        if status != 200:
            raise ReproError(f"promote failed (HTTP {status}): {body.strip()}")
        return json.loads(body)

    # -- read path (idempotent: retried with backoff) -------------------

    def query_text(
        self, sparql_query: str, request_timeout: Optional[float] = None
    ) -> str:
        """POST a SPARQL query; returns the raw textual response."""
        _, body = self._post(
            protocol.QUERY_PATH,
            sparql_query,
            protocol.CONTENT_SPARQL_QUERY,
            idempotent=True,
            request_timeout=request_timeout,
        )
        return body

    def query_json(
        self, sparql_query: str, request_timeout: Optional[float] = None
    ) -> dict:
        """POST a SPARQL query asking for SPARQL 1.1 JSON results.

        Returns the parsed document: ``{"head": {"vars": [...]},
        "results": {"bindings": [...]}}`` for SELECT, ``{"head": {},
        "boolean": ...}`` for ASK.  Raises :class:`~repro.errors.
        ReproError` with the server's message on a non-200 response.
        ``request_timeout`` is forwarded as ``X-Request-Deadline`` so the
        server cancels the query when the budget passes.
        """
        status, body = self._post(
            protocol.QUERY_PATH,
            sparql_query,
            protocol.CONTENT_SPARQL_QUERY,
            accept=protocol.CONTENT_SPARQL_JSON,
            idempotent=True,
            request_timeout=request_timeout,
        )
        if status != 200:
            raise ReproError(f"query failed (HTTP {status}): {body.strip()}")
        return json.loads(body)

    def dump(self) -> Graph:
        """GET the full RDF dump of the mediated database."""
        return parse_turtle(self._get(protocol.DUMP_PATH))

    def mapping_turtle(self) -> str:
        """GET the R3M mapping document."""
        return self._get(protocol.MAPPING_PATH)

    def health(self) -> dict:
        """GET /health: the endpoint's health document (always HTTP 200;
        check ``doc["status"]`` for ``"ok"`` vs ``"degraded"``)."""
        status, body = self._request("GET", protocol.HEALTH_PATH, idempotent=True)
        if status != 200:
            raise ReproError(f"health probe failed (HTTP {status}): {body.strip()}")
        return json.loads(body)

    def ready(self) -> Tuple[bool, dict]:
        """GET /ready: ``(True, doc)`` when the endpoint accepts writes,
        ``(False, doc)`` while degraded (HTTP 503)."""
        status, body = self._request("GET", protocol.READY_PATH, idempotent=True)
        try:
            doc = json.loads(body)
        except json.JSONDecodeError:
            doc = {"raw": body}
        return status == 200, doc

    def close(self) -> None:
        """Drop the persistent connection (reopened on the next call)."""
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "OntoAccessClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _post(
        self,
        path: str,
        body: str,
        content_type: str,
        accept: Optional[str] = None,
        idempotent: bool = False,
        request_timeout: Optional[float] = None,
    ) -> Tuple[int, str]:
        headers = {"Content-Type": content_type}
        if accept is not None:
            headers["Accept"] = accept
        if request_timeout is not None:
            headers["X-Request-Deadline"] = f"{request_timeout:g}"
        return self._request(
            "POST", path, body=body, headers=headers, idempotent=idempotent
        )

    def _get(self, path: str) -> str:
        status, body = self._request("GET", path, idempotent=True)
        if status != 200:
            raise ReproError(f"GET {path} failed (HTTP {status}): {body.strip()}")
        return body

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
        return self._conn

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[str] = None,
        headers: Optional[dict] = None,
        idempotent: bool = False,
    ) -> Tuple[int, str]:
        """One request over the persistent connection, with retry for
        idempotent operations (transport errors and 503/408 responses).
        Returns ``(status, decoded body)``.

        Every request carries an ``X-Request-Id`` (ISSUE 10): the id of
        the enclosing :func:`~repro.observability.tracing.request_scope`
        when the caller opened one, else one generated here.  The scope
        spans the retry loop, so every retry of one logical request —
        and a transport error it ends in — shares one id, joinable with
        the server's access log.
        """
        url = self.base_url + path
        with request_scope() as request_id:
            send_headers = dict(headers or {})
            send_headers.setdefault("X-Request-Id", request_id)
            attempt = 0
            while True:
                try:
                    conn = self._connection()
                    conn.request(
                        method,
                        self._base_path + path,
                        body=body.encode("utf-8") if body is not None else None,
                        headers=send_headers,
                    )
                    response = conn.getresponse()
                    payload = response.read().decode("utf-8")
                    status = response.status
                    self.last_response_headers = dict(response.getheaders())
                    retry_after = _parse_retry_after(
                        response.getheader("Retry-After")
                    )
                    if response.will_close:
                        self.close()
                except (http.client.HTTPException, OSError) as exc:
                    # The connection is in an unknown state: drop it so the
                    # next attempt starts clean.
                    self.close()
                    if idempotent and attempt + 1 < self.retry.max_attempts:
                        self._sleep(self.retry.delay(attempt))
                        attempt += 1
                        continue
                    raise EndpointTransportError(
                        f"{method} {url} failed after {attempt + 1} "
                        f"attempt(s): {type(exc).__name__}: {exc} "
                        f"[request {request_id}]",
                        method=method,
                        url=url,
                        attempts=attempt + 1,
                        cause=exc,
                        request_id=request_id,
                    ) from exc
                if (
                    idempotent
                    and status in self.retry.statuses
                    and attempt + 1 < self.retry.max_attempts
                ):
                    self._sleep(self.retry.delay(attempt, retry_after))
                    attempt += 1
                    continue
                return status, payload


class ReplicatedClient:
    """Routes over a replicated deployment (ISSUE 8): writes to the
    primary, snapshot reads round-robin across read replicas, with
    automatic fallback to the primary when a replica is unreachable,
    still syncing, or past its staleness bound (its endpoint answers
    503 ``replica-lagging``).

    Replica sub-clients get a single-attempt retry policy: a failing
    replica should cost one round-trip before the primary answers, not a
    backoff loop.  ``last_replica_lag`` records the ``X-Replica-Lag``
    header of the most recent replica-served read.  Like
    :class:`OntoAccessClient`, not thread-safe — one per thread.

    Write failover (ISSUE 9): when a write is refused with 403
    ``read-only`` (it provably did not execute) the client probes every
    known endpoint for the current primary — ``role == "primary"`` with
    the highest fencing ``epoch`` — re-points, and resends.  A transport
    failure is only re-routed when it provably never reached a server
    *and* the caller passed ``idempotent=True``; otherwise it is raised,
    because the write may already be durable on the dead primary.
    """

    def __init__(
        self,
        primary_url: str,
        replica_urls: Sequence[str] = (),
        timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        failover_retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._timeout = timeout
        self._retry = retry
        self._sleep = sleep
        self.primary = OntoAccessClient(
            primary_url, timeout=timeout, retry=retry, sleep=sleep
        )
        self.replicas = [
            OntoAccessClient(
                url,
                timeout=timeout,
                retry=RetryPolicy(max_attempts=1),
                sleep=sleep,
            )
            for url in replica_urls
        ]
        #: every endpoint this client knows about — the candidate set for
        #: primary discovery after a failover
        self.endpoint_urls: List[str] = [self.primary.base_url] + [
            r.base_url for r in self.replicas
        ]
        #: backoff between write-failover rounds (full jitter, like the
        #: read retry policy — a herd of failed-over writers decorrelates)
        self.failover_retry = failover_retry or RetryPolicy(
            max_attempts=4, base_delay=0.1, max_delay=2.0
        )
        self._next_replica = 0
        #: seconds of staleness reported by the last replica-served read
        self.last_replica_lag: Optional[float] = None
        #: routing diagnostics
        self.replica_reads = 0
        self.primary_reads = 0
        self.primary_fallbacks = 0
        #: failover diagnostics (ISSUE 9)
        self.write_failovers = 0
        self.primary_rediscoveries = 0

    # -- write path: the primary, re-routed on failover ------------------

    def update(self, sparql_update: str, idempotent: bool = False) -> Feedback:
        """POST a SPARQL/Update request, re-routing to a newly promoted
        primary when safe (see class docstring for what "safe" means).
        Pass ``idempotent=True`` to allow re-sending after transport
        failures where the request provably never reached a server."""
        status, body = self._write(
            protocol.UPDATE_PATH,
            sparql_update,
            protocol.CONTENT_SPARQL_UPDATE,
            idempotent,
        )
        return _feedback_from_body(status, body)

    def batch(
        self, updates: Union[str, Sequence[str]], idempotent: bool = False
    ) -> Feedback:
        if isinstance(updates, str):
            payload, content_type = updates, protocol.CONTENT_SPARQL_UPDATE
        else:
            payload, content_type = (
                json.dumps(list(updates)),
                protocol.CONTENT_JSON,
            )
        status, body = self._write(
            protocol.BATCH_PATH, payload, content_type, idempotent
        )
        return _feedback_from_body(status, body)

    def checkpoint(self) -> dict:
        return self.primary.checkpoint()

    def health(self) -> dict:
        return self.primary.health()

    # -- failover plumbing (ISSUE 9) -------------------------------------

    def discover_primary(self) -> Optional[str]:
        """Probe every known endpoint's ``/health`` (one attempt each,
        no backoff) and return the URL advertising ``role: primary``
        with the highest epoch, or None when no primary is reachable."""
        self.primary_rediscoveries += 1
        best_url: Optional[str] = None
        best_epoch = -1
        for url in self.endpoint_urls:
            probe = OntoAccessClient(
                url,
                timeout=self._timeout,
                retry=RetryPolicy(max_attempts=1),
                sleep=self._sleep,
            )
            try:
                doc = probe.health()
            except ReproError:
                continue
            finally:
                probe.close()
            if doc.get("role") != "primary":
                continue
            try:
                epoch = int(doc.get("epoch") or 0)
            except (TypeError, ValueError):
                epoch = 0
            if epoch > best_epoch:
                best_url, best_epoch = url, epoch
        return best_url

    def _repoint(self, url: str) -> None:
        """Aim the write path at a different endpoint."""
        old = self.primary
        self.primary = OntoAccessClient(
            url, timeout=self._timeout, retry=self._retry, sleep=self._sleep
        )
        self.write_failovers += 1
        old.close()

    def _write(
        self, path: str, payload: str, content_type: str, idempotent: bool
    ) -> Tuple[int, str]:
        """One write with failover re-routing.  Retry classification:

        * 403 read-only → the write provably did not execute; always
          safe to re-route (even non-idempotent writes);
        * transport error that provably never reached a server
          (connection refused, host/network unreachable, DNS failure)
          → re-routed only with ``idempotent=True``;
        * anything else (including a connection that died mid-request)
          → raised/returned as-is: the write may have executed.

        The whole failover sequence runs in one request scope, so every
        endpoint that saw this write logged the same ``X-Request-Id``.
        """
        with request_scope():
            return self._write_routed(path, payload, content_type, idempotent)

    def _write_routed(
        self, path: str, payload: str, content_type: str, idempotent: bool
    ) -> Tuple[int, str]:
        last_exc: Optional[EndpointTransportError] = None
        last_answer: Optional[Tuple[int, str]] = None
        for attempt in range(self.failover_retry.max_attempts):
            if attempt:
                self._sleep(self.failover_retry.delay(attempt - 1))
                url = self.discover_primary()
                if url is not None and url != self.primary.base_url:
                    self._repoint(url)
            try:
                status, body = self.primary._post(path, payload, content_type)
            except EndpointTransportError as exc:
                if not idempotent or not _never_delivered(exc):
                    raise
                last_exc, last_answer = exc, None
                continue
            if status == 403 and _is_read_only_refusal(body):
                # Provably unexecuted: keep hunting for the primary.
                last_exc, last_answer = None, (status, body)
                continue
            return status, body
        if last_exc is not None:
            raise last_exc
        assert last_answer is not None
        return last_answer

    # -- read path: replica first, primary on failure -------------------

    def _pick(self) -> Optional[OntoAccessClient]:
        if not self.replicas:
            return None
        client = self.replicas[self._next_replica % len(self.replicas)]
        self._next_replica += 1
        return client

    def _note_lag(self, client: OntoAccessClient) -> None:
        headers = client.last_response_headers or {}
        for name, value in headers.items():
            if name.lower() == "x-replica-lag":
                try:
                    self.last_replica_lag = float(value)
                except ValueError:
                    pass
                return

    def query_json(
        self, sparql_query: str, request_timeout: Optional[float] = None
    ) -> dict:
        # One request scope per logical read: a replica attempt and its
        # primary fallback carry the same X-Request-Id.
        with request_scope():
            replica = self._pick()
            if replica is not None:
                try:
                    result = replica.query_json(sparql_query, request_timeout)
                except ReproError:
                    self.primary_fallbacks += 1
                else:
                    self.replica_reads += 1
                    self._note_lag(replica)
                    return result
            self.primary_reads += 1
            return self.primary.query_json(sparql_query, request_timeout)

    def query_text(
        self, sparql_query: str, request_timeout: Optional[float] = None
    ) -> str:
        with request_scope():
            return self._query_text_routed(sparql_query, request_timeout)

    def _query_text_routed(
        self, sparql_query: str, request_timeout: Optional[float] = None
    ) -> str:
        replica = self._pick()
        if replica is not None:
            try:
                # _post (not query_text) so the status is visible: a 503
                # replica-lagging body must not be returned as a result.
                status, body = replica._post(
                    protocol.QUERY_PATH,
                    sparql_query,
                    protocol.CONTENT_SPARQL_QUERY,
                    idempotent=True,
                    request_timeout=request_timeout,
                )
            except ReproError:
                self.primary_fallbacks += 1
            else:
                if status == 200:
                    self.replica_reads += 1
                    self._note_lag(replica)
                    return body
                self.primary_fallbacks += 1
        self.primary_reads += 1
        return self.primary.query_text(sparql_query, request_timeout)

    def dump(self) -> Graph:
        with request_scope():
            replica = self._pick()
            if replica is not None:
                try:
                    result = replica.dump()
                except ReproError:
                    self.primary_fallbacks += 1
                else:
                    self.replica_reads += 1
                    self._note_lag(replica)
                    return result
            self.primary_reads += 1
            return self.primary.dump()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self.primary.close()
        for replica in self.replicas:
            replica.close()

    def __enter__(self) -> "ReplicatedClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: errnos that guarantee the TCP connection was never established, so
#: the request bytes provably never reached a server process
_NEVER_DELIVERED_ERRNOS = frozenset(
    {errno.ECONNREFUSED, errno.EHOSTUNREACH, errno.ENETUNREACH}
)


def _never_delivered(exc: EndpointTransportError) -> bool:
    """True when the failed request provably never reached a server:
    the connection was refused or never routed, so not a single byte of
    the write was delivered.  A connection that died *mid-request*
    (reset, timeout, EOF) does NOT qualify — the server may have
    executed the write before the failure."""
    cause = exc.cause
    seen = 0
    while cause is not None and seen < 8:  # defensive: no cycle walks
        if isinstance(cause, (ConnectionRefusedError, socket.gaierror)):
            return True
        if (
            isinstance(cause, OSError)
            and cause.errno in _NEVER_DELIVERED_ERRNOS
        ):
            return True
        cause = cause.__cause__
        seen += 1
    return False


def _is_read_only_refusal(body: str) -> bool:
    """True for the endpoint's 403 JSON refusal of a write on a replica
    or fenced primary (error codes ``read-only-replica`` /
    ``read-only``) — the refusal guarantees nothing executed."""
    try:
        doc = json.loads(body)
    except (json.JSONDecodeError, ValueError):
        return False
    return isinstance(doc, dict) and doc.get("error") in (
        "read-only",
        "read-only-replica",
    )


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """``Retry-After`` in delta-seconds form (HTTP-date is ignored)."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return max(0.0, seconds)


def _feedback_from_body(status: int, body: str) -> Feedback:
    """Feedback from a response that is usually Turtle but may be a
    plain-text or JSON error (e.g. /batch body validation, 503 shed)."""
    try:
        graph = parse_turtle(body)
    except Exception:
        return Feedback(
            ok=status == 200, graph=Graph(), message=body.strip() or None
        )
    return Feedback.from_graph(graph, http_ok=status == 200)
