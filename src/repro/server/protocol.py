"""Wire protocol of the OntoAccess HTTP endpoint.

The prototype (paper Section 6) is "implemented as a HTTP endpoint" that
"allows clients to remotely manipulate the relational data".  Since
ISSUE 2 the endpoint is shaped after the W3C SPARQL Protocol: operations
arrive as ``application/sparql-update`` / ``application/sparql-query``
request bodies, and responses are content-negotiated.

Endpoints:

* ``POST /update`` — body: SPARQL/Update (``application/sparql-update``);
  response: RDF feedback graph as Turtle (confirmation or error, HTTP 200
  vs 400).
* ``POST /query`` / ``GET /query?query=…`` — body (or ``query`` URL
  parameter): a SPARQL query.  Response depends on the ``Accept`` header:
  ``application/sparql-results+json`` returns SPARQL 1.1 JSON results for
  SELECT/ASK, ``text/csv`` / ``text/tab-separated-values`` return the
  SPARQL 1.1 CSV/TSV result formats for SELECT; the default is a simple
  tab-separated table for SELECT and ``true``/``false`` for ASK.
  CONSTRUCT always returns Turtle.  SELECT bindings are serialized
  incrementally and sent with chunked transfer encoding, so large results
  stream instead of being materialized as one response body.
* ``POST /batch``   — a batch executed inside **one** database
  transaction (all-or-nothing, :meth:`Session.execute_all`).  Body is
  either a JSON array of SPARQL/Update request strings
  (``application/json``) or a single multi-operation request
  (``application/sparql-update``).
* ``GET /dump``    — the mapped database as Turtle.
* ``GET /mapping`` — the R3M mapping document as Turtle.
* ``POST /admin/checkpoint`` — force a durability checkpoint (ISSUE 5):
  serialize the committed state and truncate the write-ahead log.
  Answers JSON ``{"checkpoint": <path>}`` (HTTP 200) or a 409 when the
  endpoint serves an in-memory database.
* ``GET /metrics`` — Prometheus text exposition of the serving gate,
  executor, WAL, and replication counters (ISSUE 10).  Like ``/health``
  it bypasses admission control, so a saturated server still scrapes.
* ``GET /admin/stats`` — the serving-gate statistics as JSON (also
  admission-exempt).
* ``GET /admin/slow-queries`` — the ring-buffered slow-query log as
  JSON, newest first.

Query responses are negotiated via ``Accept`` among the SPARQL 1.1
result formats: JSON (``application/sparql-results+json``), XML
(``application/sparql-results+xml``), CSV, and TSV; the default is a
plain text table.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Optional
from xml.sax.saxutils import escape, quoteattr

from ..rdf.graph import Graph
from ..rdf.serialize import to_turtle
from ..rdf.terms import BNode, Literal, Term, URIRef

__all__ = [
    "UPDATE_PATH",
    "QUERY_PATH",
    "BATCH_PATH",
    "DUMP_PATH",
    "MAPPING_PATH",
    "CHECKPOINT_PATH",
    "PROMOTE_PATH",
    "HEALTH_PATH",
    "READY_PATH",
    "METRICS_PATH",
    "STATS_PATH",
    "SLOW_QUERIES_PATH",
    "CONTENT_PROMETHEUS",
    "QUERY_RESULT_TYPES",
    "acceptable",
    "error_json",
    "CONTENT_TURTLE",
    "CONTENT_SPARQL_UPDATE",
    "CONTENT_SPARQL_QUERY",
    "CONTENT_SPARQL_JSON",
    "CONTENT_SPARQL_XML",
    "CONTENT_JSON",
    "CONTENT_TEXT",
    "CONTENT_CSV",
    "CONTENT_TSV",
    "Response",
    "accepts",
    "iter_select_csv",
    "iter_select_json",
    "iter_select_result",
    "iter_select_tsv",
    "iter_select_xml",
    "render_ask_json",
    "render_ask_xml",
    "render_select_json",
    "render_select_result",
]

UPDATE_PATH = "/update"
QUERY_PATH = "/query"
BATCH_PATH = "/batch"
DUMP_PATH = "/dump"
MAPPING_PATH = "/mapping"
CHECKPOINT_PATH = "/admin/checkpoint"
PROMOTE_PATH = "/admin/promote"
HEALTH_PATH = "/health"
READY_PATH = "/ready"
METRICS_PATH = "/metrics"
STATS_PATH = "/admin/stats"
SLOW_QUERIES_PATH = "/admin/slow-queries"

CONTENT_TURTLE = "text/turtle; charset=utf-8"
CONTENT_SPARQL_UPDATE = "application/sparql-update"
CONTENT_SPARQL_QUERY = "application/sparql-query"
CONTENT_SPARQL_JSON = "application/sparql-results+json"
CONTENT_SPARQL_XML = "application/sparql-results+xml; charset=utf-8"
CONTENT_JSON = "application/json"
CONTENT_TEXT = "text/plain; charset=utf-8"
CONTENT_CSV = "text/csv; charset=utf-8"
CONTENT_TSV = "text/tab-separated-values; charset=utf-8"
#: Prometheus text exposition format 0.0.4 (what ``GET /metrics`` serves).
CONTENT_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


class Response:
    """A protocol-level response, independent of the HTTP library.

    Either ``body`` holds the whole payload, or ``body_iter`` yields it in
    chunks — the HTTP layer sends the latter with chunked transfer
    encoding so large SELECT results stream instead of being materialized.
    Reading :attr:`body` on a streamed response drains the iterator, so
    protocol handlers called directly (no network) behave as before.
    """

    def __init__(
        self,
        status: int,
        body: str = "",
        content_type: str = CONTENT_TURTLE,
        body_iter: Optional[Iterable[str]] = None,
        headers: Optional[dict] = None,
    ) -> None:
        self.status = status
        self._body = body
        self.content_type = content_type
        self.body_iter = body_iter
        #: extra HTTP headers (e.g. ``Retry-After`` on 503/408)
        self.headers = dict(headers) if headers else {}

    @property
    def body(self) -> str:
        if self.body_iter is not None:
            self._body = "".join(self.body_iter)
            self.body_iter = None
        return self._body

    def __repr__(self) -> str:
        streamed = ", streamed" if self.body_iter is not None else ""
        return (
            f"<Response {self.status} {self.content_type!r}{streamed}>"
        )

    @classmethod
    def turtle(cls, graph: Graph, status: int = 200) -> "Response":
        return cls(status=status, body=to_turtle(graph), content_type=CONTENT_TURTLE)

    @classmethod
    def text(cls, body: str, status: int = 200) -> "Response":
        return cls(status=status, body=body, content_type=CONTENT_TEXT)

    @classmethod
    def json(
        cls,
        payload,
        status: int = 200,
        content_type: str = CONTENT_JSON,
        headers: Optional[dict] = None,
    ) -> "Response":
        return cls(
            status=status,
            body=json.dumps(payload, indent=2, sort_keys=False) + "\n",
            content_type=content_type,
            headers=headers,
        )

    @classmethod
    def stream(
        cls, chunks: Iterable[str], content_type: str, status: int = 200
    ) -> "Response":
        return cls(status=status, content_type=content_type, body_iter=chunks)


def accepts(accept: Optional[str], media_type: str) -> bool:
    """True when the Accept header explicitly lists ``media_type``.

    Deliberately minimal: exact media-type membership (parameters like
    ``charset`` ignored on both sides), no q-values.  An absent header or
    ``*/*`` selects the endpoint's default rendering, so they do not
    count as an explicit request.
    """
    if not accept:
        return False
    wanted = media_type.split(";")[0].strip().lower()
    for part in accept.split(","):
        if part.split(";")[0].strip().lower() == wanted:
            return True
    return False


#: Every media type a /query response can be rendered as (ISSUE 6: the
#: 406 error body lists these so a client can correct its Accept header).
QUERY_RESULT_TYPES = (
    CONTENT_SPARQL_JSON,
    CONTENT_SPARQL_XML.split(";")[0],
    CONTENT_CSV.split(";")[0],
    CONTENT_TSV.split(";")[0],
    CONTENT_TEXT.split(";")[0],
    CONTENT_TURTLE.split(";")[0],
)

_WILDCARDS = ("*/*", "text/*", "application/*")


def acceptable(accept: Optional[str]) -> bool:
    """Can any /query rendering satisfy this Accept header?

    An absent header selects the default rendering; wildcards match it
    too.  Only a header that names *no* supported type and contains no
    usable wildcard is unacceptable — the endpoint answers 406 with the
    supported list rather than sending a representation the client
    declared it cannot process.
    """
    if not accept:
        return True
    for part in accept.split(","):
        media = part.split(";")[0].strip().lower()
        if not media:
            continue
        if media in _WILDCARDS or media in QUERY_RESULT_TYPES:
            return True
    return False


def error_json(
    code: str,
    message: str,
    status: int,
    retry_after: Optional[float] = None,
    **extra,
) -> Response:
    """A machine-readable error response (ISSUE 6): JSON body with a
    stable ``error`` code, plus a ``Retry-After`` header when the
    condition is transient (overload, timeout)."""
    payload = {"error": code, "message": message, **extra}
    headers = {}
    if retry_after is not None:
        payload["retry_after"] = retry_after
        # HTTP Retry-After takes integral seconds; never advertise 0.
        headers["Retry-After"] = str(max(1, int(retry_after)))
    return Response.json(payload, status=status, headers=headers)


# ---------------------------------------------------------------------------
# result renderings
# ---------------------------------------------------------------------------

#: Rows per emitted chunk on the streaming paths: large enough that the
#: chunked-transfer framing is noise, small enough that the first bytes
#: leave while late rows are still being serialized.
_STREAM_BATCH = 64


def _batched(lines: Iterator[str]) -> Iterator[str]:
    batch = []
    for line in lines:
        batch.append(line)
        if len(batch) >= _STREAM_BATCH:
            yield "".join(batch)
            batch.clear()
    if batch:
        yield "".join(batch)


def render_select_result(result) -> str:
    """SELECT results as a header + tab-separated rows (one per solution)."""
    return "".join(iter_select_result(result))


def iter_select_result(result) -> Iterator[str]:
    """The default text table, one chunk per row batch."""
    def lines() -> Iterator[str]:
        yield "\t".join(f"?{v.name}" for v in result.variables) + "\n"
        for row in result.rows():
            yield "\t".join(
                "" if term is None else term.n3() for term in row
            ) + "\n"

    return _batched(lines())


def _csv_field(term: Optional[Term]) -> str:
    """One RDF term as a SPARQL 1.1 CSV field: the plain value (URIs and
    lexical forms), quoted per RFC 4180 when it contains metacharacters."""
    if term is None:
        return ""
    if isinstance(term, URIRef):
        value = term.value
    elif isinstance(term, BNode):
        value = f"_:{term.label}"
    else:
        value = term.lexical
    if any(ch in value for ch in (",", '"', "\n", "\r")):
        return '"' + value.replace('"', '""') + '"'
    return value


def iter_select_csv(result) -> Iterator[str]:
    """SPARQL 1.1 Query Results CSV (plain values, CRLF line ends)."""
    def lines() -> Iterator[str]:
        yield ",".join(v.name for v in result.variables) + "\r\n"
        for row in result.rows():
            yield ",".join(_csv_field(term) for term in row) + "\r\n"

    return _batched(lines())


def _tsv_field(term: Optional[Term]) -> str:
    """One RDF term in SPARQL 1.1 TSV form: full N-Triples-style syntax
    (URIs bracketed, literals quoted and typed), empty for unbound."""
    return "" if term is None else term.n3()


def iter_select_tsv(result) -> Iterator[str]:
    """SPARQL 1.1 Query Results TSV (encoded terms, LF line ends)."""
    def lines() -> Iterator[str]:
        yield "\t".join(f"?{v.name}" for v in result.variables) + "\n"
        for row in result.rows():
            yield "\t".join(_tsv_field(term) for term in row) + "\n"

    return _batched(lines())


def iter_select_json(result) -> Iterator[str]:
    """SPARQL 1.1 JSON results serialized incrementally: the head, then
    each binding object, without ever materializing the whole document."""
    def lines() -> Iterator[str]:
        head = json.dumps({"vars": [v.name for v in result.variables]})
        yield '{"head": ' + head + ', "results": {"bindings": [\n'
        first = True
        for solution in result.solutions:
            binding = {
                v.name: _term_json(t)
                for v, t in solution.items()
                if t is not None
            }
            prefix = "" if first else ",\n"
            first = False
            yield prefix + json.dumps(binding)
        yield "\n]}}\n"

    return _batched(lines())


def _term_json(term: Term) -> dict:
    """One RDF term in SPARQL 1.1 Query Results JSON form."""
    if isinstance(term, URIRef):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        binding = {"type": "literal", "value": term.lexical}
        if term.language is not None:
            binding["xml:lang"] = term.language
        elif term.datatype is not None:
            binding["datatype"] = term.datatype
        return binding
    raise TypeError(f"cannot serialize {type(term).__name__} to JSON")


def render_select_json(result) -> dict:
    """SELECT results as a SPARQL 1.1 Query Results JSON document."""
    variables = [v.name for v in result.variables]
    bindings = []
    for solution in result.solutions:
        bindings.append(
            {v.name: _term_json(t) for v, t in solution.items() if t is not None}
        )
    return {"head": {"vars": variables}, "results": {"bindings": bindings}}


def render_ask_json(value: bool) -> dict:
    """ASK results as a SPARQL 1.1 Query Results JSON document."""
    return {"head": {}, "boolean": bool(value)}


# ---------------------------------------------------------------------------
# SPARQL 1.1 Query Results XML Format (ISSUE 5)
# ---------------------------------------------------------------------------

_XML_HEADER = '<?xml version="1.0" encoding="UTF-8"?>\n'
_SPARQL_NS = "http://www.w3.org/2005/sparql-results#"


def _term_xml(name: str, term: Term) -> str:
    """One ``<binding>`` element of the XML results format."""
    if isinstance(term, URIRef):
        body = f"<uri>{escape(term.value)}</uri>"
    elif isinstance(term, BNode):
        body = f"<bnode>{escape(term.label)}</bnode>"
    elif isinstance(term, Literal):
        attrs = ""
        if term.language is not None:
            attrs = f" xml:lang={quoteattr(term.language)}"
        elif term.datatype is not None:
            attrs = f" datatype={quoteattr(term.datatype)}"
        body = f"<literal{attrs}>{escape(term.lexical)}</literal>"
    else:
        raise TypeError(f"cannot serialize {type(term).__name__} to XML")
    return f"<binding name={quoteattr(name)}>{body}</binding>"


def iter_select_xml(result) -> Iterator[str]:
    """SPARQL 1.1 Query Results XML, serialized incrementally: the head,
    then one ``<result>`` element per solution."""
    def lines() -> Iterator[str]:
        yield _XML_HEADER
        yield f'<sparql xmlns="{_SPARQL_NS}">\n'
        yield "  <head>\n"
        for variable in result.variables:
            yield f"    <variable name={quoteattr(variable.name)}/>\n"
        yield "  </head>\n"
        yield "  <results>\n"
        for solution in result.solutions:
            bindings = "".join(
                _term_xml(v.name, t)
                for v, t in solution.items()
                if t is not None
            )
            yield f"    <result>{bindings}</result>\n"
        yield "  </results>\n"
        yield "</sparql>\n"

    return _batched(lines())


def render_ask_xml(value: bool) -> str:
    """ASK results as a SPARQL 1.1 Query Results XML document."""
    return (
        _XML_HEADER
        + f'<sparql xmlns="{_SPARQL_NS}">\n'
        + "  <head/>\n"
        + f"  <boolean>{'true' if value else 'false'}</boolean>\n"
        + "</sparql>\n"
    )
