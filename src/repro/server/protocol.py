"""Wire protocol of the OntoAccess HTTP endpoint.

The prototype (paper Section 6) is "implemented as a HTTP endpoint" that
"allows clients to remotely manipulate the relational data": SPARQL/Update
operations arrive in HTTP requests, the translated SQL runs on the
database, and "a confirmation or error message ... is then converted to an
RDF representation and sent back to the client."

Endpoints:

* ``POST /update`` — body: SPARQL/Update (``application/sparql-update``);
  response: RDF feedback graph as Turtle (confirmation or error, HTTP 200
  vs 400).
* ``POST /query``  — body: SPARQL query; response: SELECT results as a
  simple tab-separated table, ASK as ``true``/``false``, CONSTRUCT as
  Turtle.
* ``GET /dump``    — the mapped database as Turtle.
* ``GET /mapping`` — the R3M mapping document as Turtle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..rdf.graph import Graph
from ..rdf.serialize import to_turtle

__all__ = [
    "UPDATE_PATH",
    "QUERY_PATH",
    "DUMP_PATH",
    "MAPPING_PATH",
    "CONTENT_TURTLE",
    "CONTENT_SPARQL_UPDATE",
    "CONTENT_SPARQL_QUERY",
    "Response",
    "render_select_result",
]

UPDATE_PATH = "/update"
QUERY_PATH = "/query"
DUMP_PATH = "/dump"
MAPPING_PATH = "/mapping"

CONTENT_TURTLE = "text/turtle; charset=utf-8"
CONTENT_SPARQL_UPDATE = "application/sparql-update"
CONTENT_SPARQL_QUERY = "application/sparql-query"
CONTENT_TEXT = "text/plain; charset=utf-8"


@dataclass
class Response:
    """A protocol-level response, independent of the HTTP library."""

    status: int
    body: str
    content_type: str = CONTENT_TURTLE

    @classmethod
    def turtle(cls, graph: Graph, status: int = 200) -> "Response":
        return cls(status=status, body=to_turtle(graph), content_type=CONTENT_TURTLE)

    @classmethod
    def text(cls, body: str, status: int = 200) -> "Response":
        return cls(status=status, body=body, content_type=CONTENT_TEXT)


def render_select_result(result) -> str:
    """SELECT results as a header + tab-separated rows (one per solution)."""
    header = "\t".join(f"?{v.name}" for v in result.variables)
    lines = [header]
    for row in result.rows():
        lines.append(
            "\t".join("" if term is None else term.n3() for term in row)
        )
    return "\n".join(lines) + "\n"
