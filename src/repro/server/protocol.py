"""Wire protocol of the OntoAccess HTTP endpoint.

The prototype (paper Section 6) is "implemented as a HTTP endpoint" that
"allows clients to remotely manipulate the relational data".  Since
ISSUE 2 the endpoint is shaped after the W3C SPARQL Protocol: operations
arrive as ``application/sparql-update`` / ``application/sparql-query``
request bodies, and responses are content-negotiated.

Endpoints:

* ``POST /update`` — body: SPARQL/Update (``application/sparql-update``);
  response: RDF feedback graph as Turtle (confirmation or error, HTTP 200
  vs 400).
* ``POST /query`` / ``GET /query?query=…`` — body (or ``query`` URL
  parameter): a SPARQL query.  Response depends on the ``Accept`` header:
  ``application/sparql-results+json`` returns SPARQL 1.1 JSON results for
  SELECT/ASK; the default is a simple tab-separated table for SELECT and
  ``true``/``false`` for ASK.  CONSTRUCT always returns Turtle.
* ``POST /batch``   — a batch executed inside **one** database
  transaction (all-or-nothing, :meth:`Session.execute_all`).  Body is
  either a JSON array of SPARQL/Update request strings
  (``application/json``) or a single multi-operation request
  (``application/sparql-update``).
* ``GET /dump``    — the mapped database as Turtle.
* ``GET /mapping`` — the R3M mapping document as Turtle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from ..rdf.graph import Graph
from ..rdf.serialize import to_turtle
from ..rdf.terms import BNode, Literal, Term, URIRef

__all__ = [
    "UPDATE_PATH",
    "QUERY_PATH",
    "BATCH_PATH",
    "DUMP_PATH",
    "MAPPING_PATH",
    "CONTENT_TURTLE",
    "CONTENT_SPARQL_UPDATE",
    "CONTENT_SPARQL_QUERY",
    "CONTENT_SPARQL_JSON",
    "CONTENT_JSON",
    "CONTENT_TEXT",
    "Response",
    "accepts",
    "render_ask_json",
    "render_select_json",
    "render_select_result",
]

UPDATE_PATH = "/update"
QUERY_PATH = "/query"
BATCH_PATH = "/batch"
DUMP_PATH = "/dump"
MAPPING_PATH = "/mapping"

CONTENT_TURTLE = "text/turtle; charset=utf-8"
CONTENT_SPARQL_UPDATE = "application/sparql-update"
CONTENT_SPARQL_QUERY = "application/sparql-query"
CONTENT_SPARQL_JSON = "application/sparql-results+json"
CONTENT_JSON = "application/json"
CONTENT_TEXT = "text/plain; charset=utf-8"


@dataclass
class Response:
    """A protocol-level response, independent of the HTTP library."""

    status: int
    body: str
    content_type: str = CONTENT_TURTLE

    @classmethod
    def turtle(cls, graph: Graph, status: int = 200) -> "Response":
        return cls(status=status, body=to_turtle(graph), content_type=CONTENT_TURTLE)

    @classmethod
    def text(cls, body: str, status: int = 200) -> "Response":
        return cls(status=status, body=body, content_type=CONTENT_TEXT)

    @classmethod
    def json(cls, payload, status: int = 200, content_type: str = CONTENT_JSON) -> "Response":
        return cls(
            status=status,
            body=json.dumps(payload, indent=2, sort_keys=False) + "\n",
            content_type=content_type,
        )


def accepts(accept: Optional[str], media_type: str) -> bool:
    """True when the Accept header explicitly lists ``media_type``.

    Deliberately minimal: exact media-type membership, no q-values.  An
    absent header or ``*/*`` selects the endpoint's default rendering, so
    they do not count as an explicit request.
    """
    if not accept:
        return False
    for part in accept.split(","):
        if part.split(";")[0].strip().lower() == media_type:
            return True
    return False


# ---------------------------------------------------------------------------
# result renderings
# ---------------------------------------------------------------------------

def render_select_result(result) -> str:
    """SELECT results as a header + tab-separated rows (one per solution)."""
    header = "\t".join(f"?{v.name}" for v in result.variables)
    lines = [header]
    for row in result.rows():
        lines.append(
            "\t".join("" if term is None else term.n3() for term in row)
        )
    return "\n".join(lines) + "\n"


def _term_json(term: Term) -> dict:
    """One RDF term in SPARQL 1.1 Query Results JSON form."""
    if isinstance(term, URIRef):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        binding = {"type": "literal", "value": term.lexical}
        if term.language is not None:
            binding["xml:lang"] = term.language
        elif term.datatype is not None:
            binding["datatype"] = term.datatype
        return binding
    raise TypeError(f"cannot serialize {type(term).__name__} to JSON")


def render_select_json(result) -> dict:
    """SELECT results as a SPARQL 1.1 Query Results JSON document."""
    variables = [v.name for v in result.variables]
    bindings = []
    for solution in result.solutions:
        bindings.append(
            {v.name: _term_json(t) for v, t in solution.items() if t is not None}
        )
    return {"head": {"vars": variables}, "results": {"bindings": bindings}}


def render_ask_json(value: bool) -> dict:
    """ASK results as a SPARQL 1.1 Query Results JSON document."""
    return {"head": {}, "boolean": bool(value)}
