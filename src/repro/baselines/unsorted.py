"""Ablation baseline: Algorithm 1 *without* the FK statement sorting.

Paper Section 5.1: "executing the generated statements in an arbitrary
order may result in the failure of the transaction whereas their execution
in the sorted order would succeed."  This baseline preserves the raw
(request) order of the generated statements so the FK-sort ablation
benchmark can demonstrate exactly that failure under immediate constraint
checking, and its disappearance under deferred checking.
"""

from __future__ import annotations

from typing import List, Optional, Union
from unittest import mock

from ..rdb.engine import Database
from ..rdf.namespace import PrefixMap
from ..r3m.model import DatabaseMapping
from ..sparql.update_ast import UpdateRequest
from ..sql import ast
from ..core import sorting
from ..core.mediator import OntoAccess, UpdateResult

__all__ = ["UnsortedOntoAccess", "shuffled_statement_order"]


def _identity_sort(statements, schema) -> List[ast.Statement]:
    """Replacement for :func:`repro.core.sorting.sort_statements` that
    keeps the translation's raw emission order."""
    return list(statements)


class UnsortedOntoAccess(OntoAccess):
    """OntoAccess with Algorithm 1 step 5 disabled (ablation)."""

    def update(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> UpdateResult:
        with mock.patch.object(sorting, "sort_statements", _identity_sort), \
                mock.patch(
                    "repro.core.insert_data.sort_statements", _identity_sort
                ), mock.patch(
                    "repro.core.delete_data.sort_statements", _identity_sort
                ):
            return super().update(request, prefixes=prefixes)

    def translate(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> List[ast.Statement]:
        with mock.patch.object(sorting, "sort_statements", _identity_sort), \
                mock.patch(
                    "repro.core.insert_data.sort_statements", _identity_sort
                ), mock.patch(
                    "repro.core.delete_data.sort_statements", _identity_sort
                ):
            return super().translate(request, prefixes=prefixes)


def shuffled_statement_order(statements: List[ast.Statement], seed: int) -> List[ast.Statement]:
    """Deterministically shuffle statements (for ablation sweeps)."""
    import random

    rng = random.Random(seed)
    shuffled = list(statements)
    rng.shuffle(shuffled)
    return shuffled
