"""Baselines: native triple store and the unsorted-translation ablation."""

from .triplestore import MappingAwareTripleStore, NativeTripleStore
from .unsorted import UnsortedOntoAccess, shuffled_statement_order

__all__ = [
    "MappingAwareTripleStore",
    "NativeTripleStore",
    "UnsortedOntoAccess",
    "shuffled_statement_order",
]
