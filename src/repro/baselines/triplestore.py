"""Native triple-store baseline.

Applies SPARQL/Update operations directly to an in-memory graph — the
comparison point in the paper's narrative (mediation vs. converting all
data to RDF, Sections 1 and 3).  Also the *oracle* in equivalence tests:
after the same update request, the mediated database's RDF dump must match
this store's graph.

Literal canonicalization: the RDB dump emits typed literals for non-string
columns (``"2009"^^xsd:integer``) and ``mailto:`` URIs for value-pattern
attributes, whereas clients may write plain literals (the paper's listings
do).  :class:`MappingAwareTripleStore` normalizes incoming triples through
the mapping so both sides speak the dump's canonical form and graphs
compare equal.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..rdb.engine import Database
from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..rdf.terms import Literal, Object, Term, Triple, URIRef
from ..r3m.model import DatabaseMapping
from ..sparql.engine import update as native_update
from ..sparql.update_ast import (
    Clear,
    DeleteData,
    InsertData,
    Modify,
    UpdateRequest,
)
from ..sparql.update_parser import parse_update
from ..core.common import literal_for_column

__all__ = ["NativeTripleStore", "MappingAwareTripleStore"]


class NativeTripleStore:
    """A plain in-memory triple store with SPARQL/Update support."""

    def __init__(self, graph: Optional[Graph] = None) -> None:
        self.graph = graph if graph is not None else Graph()

    def update(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> Dict[str, int]:
        return native_update(self.graph, request, prefixes=prefixes)

    def query(self, q, prefixes: Optional[PrefixMap] = None):
        from ..sparql.engine import query as native_query

        return native_query(self.graph, q, prefixes=prefixes)

    def apply_operation(self, operation) -> Tuple[int, int]:
        """Apply one update operation; returns (added, removed)."""
        from ..sparql.engine import apply_operation as native_apply

        return native_apply(self.graph, operation)

    def __len__(self) -> int:
        return len(self.graph)


class MappingAwareTripleStore(NativeTripleStore):
    """Triple store that canonicalizes literals through an R3M mapping.

    Used as the equivalence oracle: the mediated RDB dump and this store
    must hold identical graphs after identical update sequences.
    """

    def __init__(
        self,
        mapping: DatabaseMapping,
        db: Database,
        graph: Optional[Graph] = None,
    ) -> None:
        super().__init__(graph)
        self.mapping = mapping
        self.db = db

    def update(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> Dict[str, int]:
        if isinstance(request, str):
            request = parse_update(request, prefixes=prefixes)
        added = removed = 0
        for operation in request.operations:
            a, r = self.apply_operation(operation)
            added += a
            removed += r
        return {"added": added, "removed": removed}

    # ------------------------------------------------------------------

    def apply_operation(self, operation) -> Tuple[int, int]:
        """Apply one operation with row-implied rdf:type semantics.

        A relational row always carries its class, so inserting any triple
        about a mapped entity implies its rdf:type triple; conversely,
        when a delete removes an entity's last data triple, the mediated
        row disappears (the paper's complete-row DELETE rule) and the
        implied type triple must vanish with it.
        """
        from ..sparql.algebra import evaluate_pattern, instantiate

        if isinstance(operation, InsertData):
            triples = [self.normalize_triple(t) for t in operation.triples]
            triples.extend(self._implied_types(triples))
            return self.graph.add_all(triples), 0
        if isinstance(operation, DeleteData):
            triples = [self.normalize_triple(t) for t in operation.triples]
            removed = self.graph.remove_all(triples)
            removed += self._cleanup_types(triples)
            return 0, removed
        if isinstance(operation, Modify):
            solutions = evaluate_pattern(self.graph, operation.where)
            to_remove = []
            to_add = []
            for solution in solutions:
                to_remove.extend(
                    self.normalize_triple(t)
                    for t in instantiate(operation.delete_template, solution)
                )
                to_add.extend(
                    self.normalize_triple(t)
                    for t in instantiate(operation.insert_template, solution)
                )
            removed = self.graph.remove_all(to_remove)
            to_add.extend(self._implied_types(to_add))
            added = self.graph.add_all(to_add)
            removed += self._cleanup_types(to_remove)
            return added, removed
        if isinstance(operation, Clear):
            removed = len(self.graph)
            self.graph.clear()
            return 0, removed
        raise TypeError(f"unknown operation {type(operation).__name__}")

    def _implied_types(self, triples) -> list:
        from ..rdf.namespace import RDF

        implied = []
        seen = set()
        for triple in triples:
            subject = triple.subject
            if subject in seen or not isinstance(subject, URIRef):
                continue
            seen.add(subject)
            table = self._table_of(subject)
            if table is not None:
                implied.append(Triple(subject, RDF.type, table.maps_to_class))
        return implied

    def _cleanup_types(self, removed_triples) -> int:
        """Drop type triples of entities left with no data triples."""
        from ..rdf.namespace import RDF

        removed = 0
        for subject in {t.subject for t in removed_triples}:
            remaining = list(self.graph.triples(subject))
            if remaining and all(t.predicate == RDF.type for t in remaining):
                removed += self.graph.remove_all(remaining)
        return removed

    def _table_of(self, subject: URIRef):
        from ..core.common import identify_entity

        try:
            entity = identify_entity(self.mapping, self.db, subject)
        except Exception:
            return None
        return entity.table

    def normalize_triple(self, triple: Triple) -> Triple:
        """Convert the object literal to the dump's canonical form."""
        subject, predicate, obj = triple
        normalized = self._normalize_object(subject, predicate, obj)
        return Triple(subject, predicate, normalized)

    def _normalize_object(
        self, subject: Term, predicate: Term, obj: Object
    ) -> Object:
        if not isinstance(predicate, URIRef):
            return obj
        attribute_site = self._attribute_for(subject, predicate)
        if attribute_site is None:
            return obj
        table, attribute = attribute_site
        if attribute.is_object_property:
            return obj
        column = self.db.table(table.table_name).column(attribute.attribute_name)
        if attribute.value_pattern is not None:
            if isinstance(obj, URIRef):
                return obj
            if isinstance(obj, Literal):
                pattern = attribute.value_pattern
                return pattern.format({pattern.attributes[0]: obj.lexical})
            return obj
        if isinstance(obj, Literal):
            try:
                value = column.sql_type.coerce(obj.to_python())
            except Exception:
                return obj
            return literal_for_column(column.sql_type, value)
        if isinstance(obj, URIRef):
            return literal_for_column(column.sql_type, obj.value)
        return obj

    def _attribute_for(self, subject: Term, predicate: URIRef):
        if self.mapping.link_for_property(predicate) is not None:
            return None
        if isinstance(subject, URIRef):
            candidates = self.mapping.identify_candidates(subject)
            for table, _ in candidates:
                attribute = table.attribute_for_property(predicate)
                if attribute is not None:
                    return table, attribute
        hits = self.mapping.tables_for_property(predicate)
        if len(hits) == 1:
            return hits[0]
        return None
