"""Workloads: the paper's use case plus scalable synthetic generators."""

from .generator import (
    Dataset,
    WorkloadConfig,
    build_populated_database,
    generate_dataset,
    populate_database,
)
from .publication import (
    PUBLICATION_DDL,
    URI_PREFIX,
    build_database,
    build_mapping,
    build_ontology,
    seed_feasibility_data,
    table1_rows,
)

__all__ = [
    "Dataset",
    "PUBLICATION_DDL",
    "URI_PREFIX",
    "WorkloadConfig",
    "build_database",
    "build_mapping",
    "build_ontology",
    "build_populated_database",
    "generate_dataset",
    "populate_database",
    "seed_feasibility_data",
    "table1_rows",
]
