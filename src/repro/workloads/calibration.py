"""Short closed-loop calibration for load tests and benchmarks (ISSUE 8).

The serving-tier tests and benchmarks pin their offered load and
deadlines to an *injected* service latency so the numbers mean the same
thing on every machine.  That only holds while the injected latency
dominates the raw (machine-dependent) request time; PR 6 hard-coded the
raw side away (≈46 req/s capacity, 60 ms stalls, 2.0 s deadlines) and
the overload soak flaked whenever a slow or loaded box broke those
assumptions.  The cure is a few sequential requests up front:

1. :func:`measure_service_time` runs a short, uninjected closed loop and
   returns the median wall-clock time of one request;
2. :func:`derive_overload_pins` turns that raw figure into every pin an
   overload scenario needs — the latency to inject (large enough to
   dominate), the tight per-request timeout that *must* expire, the
   server-wide deadline that admitted requests *must* meet, and the
   elapsed-time ceiling the test may assert.

The guarantees the pins encode:

* ``injected_latency_s >= dominance * raw_service_s``, so capacity
  ``1/service_s`` is stable across machines;
* ``tight_timeout_s < 3 * injected_latency_s``, so any request whose
  execution crosses at least three injection points is guaranteed to
  exceed a deadline of ``tight_timeout_s`` (a deterministic 408);
* ``default_timeout_s`` and ``accepted_latency_bound_s`` scale with the
  measured service time (with the PR 6 values as floors), so admitted
  requests on a slow machine are not misclassified as unbounded.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["OverloadPins", "derive_overload_pins", "measure_service_time"]


def measure_service_time(
    fire: Callable[[], object], *, samples: int = 7, warmup: int = 2
) -> float:
    """Median wall-clock seconds of one sequential ``fire()`` call.

    ``fire`` performs one complete request against the system under
    test (and may assert on its outcome).  The warmup calls absorb
    one-time costs — connection setup, lazily built plans, cold caches —
    so the median reflects steady state.
    """
    for _ in range(warmup):
        fire()
    elapsed = []
    for _ in range(samples):
        start = time.monotonic()
        fire()
        elapsed.append(time.monotonic() - start)
    return statistics.median(elapsed)


@dataclass(frozen=True)
class OverloadPins:
    """Calibration-derived constants for one overload scenario."""

    #: measured, uninjected service time (median seconds per request)
    raw_service_s: float
    #: latency to inject at the executor so service time is pinned
    injected_latency_s: float
    #: expected service time with injection = raw + injected
    service_s: float
    #: closed-loop capacity of ONE admitted slot, requests/second
    capacity_rps: float
    #: per-request ``?timeout=`` that must deterministically expire for
    #: any request crossing >= 3 injection points
    tight_timeout_s: float
    #: server-wide default deadline admitted requests must meet
    default_timeout_s: float
    #: ceiling a test may assert on an accepted request's elapsed time
    accepted_latency_bound_s: float


def derive_overload_pins(
    raw_service_s: float,
    *,
    min_injected: float = 0.02,
    dominance: float = 4.0,
) -> OverloadPins:
    """Derive every overload pin from one measured raw service time.

    ``min_injected`` keeps fast machines on the historical pins (PR 6
    used 0.02 s for the benchmark, 0.06 s for the soak); ``dominance``
    is how many times the raw service time the injected latency must be
    for the pin to dominate.
    """
    raw = max(0.0, raw_service_s)
    injected = max(min_injected, dominance * raw)
    service = raw + injected
    # 2 * service < 3 * injected  <=>  2 * raw < injected, which holds
    # by construction whenever dominance >= 2 (we require >= 4): the
    # tight timeout deterministically expires across three stalls while
    # still being long enough that admission itself never races it.
    return OverloadPins(
        raw_service_s=raw,
        injected_latency_s=injected,
        service_s=service,
        capacity_rps=1.0 / service,
        tight_timeout_s=2.0 * service,
        default_timeout_s=max(2.0, 25.0 * service),
        accepted_latency_bound_s=max(2.5, 30.0 * service),
    )
