"""SPARQL/Update operation generators for benchmarks and property tests.

Produces textual SPARQL/Update requests against the publication use case:
entity inserts of configurable width, incremental inserts, attribute and
entity deletes, and MODIFY replacements — the operation mix the paper's
feasibility study walks through, at scale.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .generator import Dataset

__all__ = [
    "PREFIXES",
    "insert_team_op",
    "insert_author_op",
    "insert_full_publication_op",
    "delete_email_op",
    "delete_author_op",
    "modify_email_op",
    "mixed_workload",
]

PREFIXES = """\
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX dc:   <http://purl.org/dc/elements/1.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
PREFIX rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
"""


def insert_team_op(team_id: int, name: str = "Generated Team", code: str = "GEN") -> str:
    return PREFIXES + f"""
INSERT DATA {{
    ex:team{team_id} foaf:name "{name} {team_id}" ;
                     ont:teamCode "{code}{team_id}" .
}}
"""


def insert_author_op(
    author_id: int,
    team_id: Optional[int] = None,
    lastname: str = "Generated",
    with_email: bool = True,
) -> str:
    lines = [
        f'    ex:author{author_id} foaf:firstName "First{author_id}" ;',
        f'        foaf:family_name "{lastname}{author_id}" ;',
    ]
    if with_email:
        lines.append(
            f"        foaf:mbox <mailto:author{author_id}@example.org> ;"
        )
    if team_id is not None:
        lines.append(f"        ont:team ex:team{team_id} ;")
    body = "\n".join(lines).rstrip(";") + " ."
    return PREFIXES + "\nINSERT DATA {\n" + body + "\n}\n"


def insert_full_publication_op(
    publication_id: int,
    author_id: int,
    team_id: int,
    pubtype_id: int,
    publisher_id: int,
) -> str:
    """The Listing 15 shape: a complete dataset touching all six tables."""
    return PREFIXES + f"""
INSERT DATA {{
    ex:pub{publication_id} dc:title "Generated Publication {publication_id}" ;
        ont:pubYear "{2000 + publication_id % 10}" ;
        ont:pubType ex:pubtype{pubtype_id} ;
        dc:publisher ex:publisher{publisher_id} ;
        dc:creator ex:author{author_id} .

    ex:author{author_id} foaf:firstName "First{author_id}" ;
        foaf:family_name "Last{author_id}" ;
        foaf:mbox <mailto:author{author_id}@example.org> ;
        ont:team ex:team{team_id} .

    ex:team{team_id} foaf:name "Team {team_id}" ;
        ont:teamCode "T{team_id}" .

    ex:pubtype{pubtype_id} ont:type "type{pubtype_id}" .

    ex:publisher{publisher_id} ont:name "Publisher {publisher_id}" .
}}
"""


def delete_email_op(author_id: int, email: str) -> str:
    """The Listing 17 shape: remove one attribute triple."""
    return PREFIXES + f"""
DELETE DATA {{
    ex:author{author_id} foaf:mbox <mailto:{email}> .
}}
"""


def delete_author_op(dataset: Dataset, author_id: int) -> str:
    """Delete all triples of an author (complete row removal)."""
    row = next(a for a in dataset.authors if a["id"] == author_id)
    lines = [f"    ex:author{author_id} a foaf:Person ;"]
    if row.get("title"):
        lines.append(f'        foaf:title "{row["title"]}" ;')
    if row.get("email"):
        lines.append(f'        foaf:mbox <mailto:{row["email"]}> ;')
    if row.get("firstname"):
        lines.append(f'        foaf:firstName "{row["firstname"]}" ;')
    lines.append(f'        foaf:family_name "{row["lastname"]}" ;')
    if row.get("team"):
        lines.append(f'        ont:team ex:team{row["team"]} ;')
    body = "\n".join(lines).rstrip(" ;") + " ."
    return PREFIXES + "\nDELETE DATA {\n" + body + "\n}\n"


def modify_email_op(firstname: str, lastname: str, new_email: str) -> str:
    """The Listing 11 shape: replace the email of a named author."""
    return PREFIXES + f"""
MODIFY
DELETE {{ ?x foaf:mbox ?mbox . }}
INSERT {{ ?x foaf:mbox <mailto:{new_email}> . }}
WHERE {{
    ?x rdf:type foaf:Person ;
       foaf:firstName "{firstname}" ;
       foaf:family_name "{lastname}" ;
       foaf:mbox ?mbox .
}}
"""


def mixed_workload(
    dataset: Dataset, operations: int, seed: int = 7
) -> List[str]:
    """A deterministic mixed stream of inserts, deletes, and modifies.

    Operates on entity ids *above* the dataset's range so it can run
    against a database populated with ``dataset`` without colliding.
    """
    rng = random.Random(seed)
    next_author = len(dataset.authors) + 1
    next_pub = len(dataset.publications) + 1
    # Fresh ids for the entities full-publication ops (re-)assert: a
    # request re-stating an existing entity with different values is a
    # correctly-rejected multi-value error, so the workload avoids it.
    next_team = len(dataset.teams) + 1
    next_pubtype = len(dataset.pubtypes) + 1
    next_publisher = len(dataset.publishers) + 1
    inserted_authors: List[int] = []
    ops: List[str] = []
    for _ in range(operations):
        roll = rng.random()
        if roll < 0.5 or not inserted_authors:
            team = rng.choice(dataset.teams)["id"] if dataset.teams else None
            ops.append(insert_author_op(next_author, team_id=team))
            inserted_authors.append(next_author)
            next_author += 1
        elif roll < 0.7:
            author = rng.choice(inserted_authors)
            ops.append(
                PREFIXES
                + f"""
MODIFY
DELETE {{ ?x foaf:mbox ?m . }}
INSERT {{ ?x foaf:mbox <mailto:new{author}@example.org> . }}
WHERE {{ ?x foaf:family_name "Generated{author}" ; foaf:mbox ?m . }}
"""
            )
        elif roll < 0.9:
            author = inserted_authors.pop(rng.randrange(len(inserted_authors)))
            ops.append(
                PREFIXES
                + f"""
DELETE DATA {{
    ex:author{author} foaf:firstName "First{author}" .
}}
"""
            )
        else:
            ops.append(
                insert_full_publication_op(
                    next_pub, next_author, next_team, next_pubtype, next_publisher
                )
            )
            next_pub += 1
            next_author += 1
            next_team += 1
            next_pubtype += 1
            next_publisher += 1
    return ops
