"""The paper's publication-system use case (Sections 3 and 7).

Provides exactly the artifacts of the feasibility study:

* :func:`build_database` — the Figure 1 schema: six tables with the
  paper's primary keys, NOT NULL constraints, and foreign keys.
* :func:`build_ontology` — the Figure 2 domain ontology graph (classes and
  properties with domains/ranges, reusing FOAF and DC).
* :func:`build_mapping` — the Table 1 mapping, generated through the R3M
  auto-generator with the paper's FOAF/DC/ONT term assignments.
* :func:`table1_rows` — the rows of Table 1 for printing/benchmark output.
* :func:`seed_feasibility_data` — the concrete entities used by the
  paper's example listings (team5/SEAL, author6/Hert, etc.).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..rdb.engine import Database
from ..rdf.graph import Graph
from ..rdf.namespace import DC, FOAF, ONT, OWL, RDF, RDFS, XSD
from ..rdf.terms import Literal, Triple, URIRef
from ..r3m.generator import generate_mapping
from ..r3m.model import DatabaseMapping

__all__ = [
    "PUBLICATION_DDL",
    "URI_PREFIX",
    "build_database",
    "build_ontology",
    "build_mapping",
    "table1_rows",
    "seed_feasibility_data",
]

#: The instance URI prefix of Listing 1.
URI_PREFIX = "http://example.org/db/"

#: Figure 1, as DDL for the relational substrate.  Every table has the
#: distinct integer primary key ``id``; ``*`` columns in the figure are
#: NOT NULL; ``publication_author`` is the N:M link table.
PUBLICATION_DDL = """
CREATE TABLE team (
    id INTEGER PRIMARY KEY,
    name VARCHAR(200),
    code VARCHAR(20)
);
CREATE TABLE publisher (
    id INTEGER PRIMARY KEY,
    name VARCHAR(200)
);
CREATE TABLE pubtype (
    id INTEGER PRIMARY KEY,
    type VARCHAR(50)
);
CREATE TABLE author (
    id INTEGER PRIMARY KEY,
    title VARCHAR(50),
    email VARCHAR(200),
    firstname VARCHAR(100),
    lastname VARCHAR(100) NOT NULL,
    team INTEGER REFERENCES team(id)
);
CREATE TABLE publication (
    id INTEGER PRIMARY KEY,
    title VARCHAR(300) NOT NULL,
    year INTEGER NOT NULL,
    type INTEGER REFERENCES pubtype(id),
    publisher INTEGER REFERENCES publisher(id)
);
CREATE TABLE publication_author (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    publication INTEGER NOT NULL REFERENCES publication(id),
    author INTEGER NOT NULL REFERENCES author(id)
);
"""


def build_database(constraint_mode: str = "immediate") -> Database:
    """Create a fresh publication database with the Figure 1 schema."""
    db = Database(constraint_mode=constraint_mode)
    db.execute_script(PUBLICATION_DDL)
    return db


#: Table 1's attribute→property assignments (the columns of the paper's
#: mapping overview), keyed by (table, attribute).
PROPERTY_ASSIGNMENTS: Dict[Tuple[str, str], URIRef] = {
    ("publication", "title"): DC.title,
    ("publication", "year"): ONT.pubYear,
    ("publication", "type"): ONT.pubType,
    ("publication", "publisher"): DC.publisher,
    ("publisher", "name"): ONT.name,
    ("pubtype", "type"): ONT.type,
    ("author", "title"): FOAF.title,
    ("author", "email"): FOAF.mbox,
    ("author", "firstname"): FOAF.firstName,
    ("author", "lastname"): FOAF.family_name,
    ("author", "team"): ONT.team,
    ("team", "name"): FOAF.name,
    ("team", "code"): ONT.teamCode,
}

#: Table 1's table→class assignments.
CLASS_ASSIGNMENTS: Dict[str, URIRef] = {
    "publication": FOAF.Document,
    "author": FOAF.Person,
    "team": FOAF.Group,
    "publisher": ONT.Publisher,
    "pubtype": ONT.PubType,
}

#: The link table maps to dc:creator (Table 1, last row).
LINK_ASSIGNMENTS: Dict[str, URIRef] = {
    "publication_author": DC.creator,
}

#: foaf:mbox values are mailto: URIs but the email column stores the bare
#: address (Listing 9 vs Listing 10).
VALUE_PATTERNS: Dict[Tuple[str, str], str] = {
    ("author", "email"): "mailto:%%email%%",
}


#: The paper's instance URIs abbreviate publication to ``pub`` (ex:pub12).
URI_PATTERNS: Dict[str, str] = {
    "publication": "pub%%id%%",
}


def build_mapping(db: Database | None = None) -> DatabaseMapping:
    """The Table 1 mapping: auto-generated with the paper's vocabulary."""
    if db is None:
        db = build_database()
    return generate_mapping(
        db,
        uri_prefix=URI_PREFIX,
        class_overrides=CLASS_ASSIGNMENTS,
        property_overrides=PROPERTY_ASSIGNMENTS,
        link_property_overrides=LINK_ASSIGNMENTS,
        value_pattern_overrides=VALUE_PATTERNS,
        uri_pattern_overrides=URI_PATTERNS,
    )


def build_ontology() -> Graph:
    """The Figure 2 domain ontology as an RDF graph.

    Five classes (foaf:Document, foaf:Person, foaf:Group, ont:Publisher,
    ont:PubType) and the properties used with each class, with ranges as
    shown in the figure.
    """
    g = Graph()
    classes = [FOAF.Document, FOAF.Person, FOAF.Group, ONT.Publisher, ONT.PubType]
    for cls in classes:
        g.add(Triple(cls, RDF.type, OWL.term("Class")))
        g.add(Triple(cls, RDFS.subClassOf, OWL.Thing))

    def data_property(prop: URIRef, domain: URIRef, range_: URIRef) -> None:
        g.add(Triple(prop, RDF.type, OWL.DatatypeProperty))
        g.add(Triple(prop, RDFS.domain, domain))
        g.add(Triple(prop, RDFS.range, range_))

    def object_property(prop: URIRef, domain: URIRef, range_: URIRef) -> None:
        g.add(Triple(prop, RDF.type, OWL.ObjectProperty))
        g.add(Triple(prop, RDFS.domain, domain))
        g.add(Triple(prop, RDFS.range, range_))

    # foaf:Document (publication)
    data_property(DC.title, FOAF.Document, XSD.string)
    data_property(ONT.pubYear, FOAF.Document, XSD.int)
    object_property(ONT.pubType, FOAF.Document, ONT.PubType)
    object_property(DC.publisher, FOAF.Document, ONT.Publisher)
    object_property(DC.creator, FOAF.Document, FOAF.Person)
    # foaf:Person (author)
    data_property(FOAF.title, FOAF.Person, XSD.string)
    data_property(FOAF.mbox, FOAF.Person, XSD.string)
    data_property(FOAF.firstName, FOAF.Person, XSD.string)
    data_property(FOAF.family_name, FOAF.Person, XSD.string)
    object_property(ONT.team, FOAF.Person, FOAF.Group)
    # foaf:Group (team)
    data_property(FOAF.name, FOAF.Group, XSD.string)
    data_property(ONT.teamCode, FOAF.Group, XSD.string)
    # ont:Publisher / ont:PubType
    data_property(ONT.name, ONT.Publisher, XSD.string)
    data_property(ONT.type, ONT.PubType, XSD.string)
    return g


def table1_rows(mapping: DatabaseMapping | None = None) -> List[Tuple[str, str]]:
    """The rows of Table 1 ("Use case mapping overview").

    Each row is (``table -> class``, ``attribute -> property``) using the
    compact qnames the paper prints.
    """
    if mapping is None:
        mapping = build_mapping()
    from ..rdf.namespace import PrefixMap

    prefixes = PrefixMap.with_defaults()

    def compact(uri: URIRef) -> str:
        return prefixes.compact(uri) or uri.value

    rows: List[Tuple[str, str]] = []
    order = ["publication", "publisher", "pubtype", "author", "team"]
    for name in order:
        table = mapping.tables[name]
        first_column = f"{name} -> {compact(table.maps_to_class)}"
        attr_rows = [
            f"{a.attribute_name} -> {compact(a.property)}"
            for a in table.attributes
            if a.property is not None
        ]
        for i, attr_row in enumerate(attr_rows):
            rows.append((first_column if i == 0 else "", attr_row))
    for link in mapping.link_tables.values():
        rows.append((f"{link.table_name} -> -", f"- -> {compact(link.property)}"))
    return rows


def seed_feasibility_data(db: Database) -> None:
    """Insert the concrete rows the paper's examples assume exist.

    Listing 9/15 reference team5 (SEAL); Listing 17/18 assume author6
    exists with the full data of Listing 10.
    """
    db.execute_script(
        """
        INSERT INTO team (id, name, code) VALUES (5, 'Software Engineering', 'SEAL');
        INSERT INTO pubtype (id, type) VALUES (4, 'inproceedings');
        INSERT INTO publisher (id, name) VALUES (3, 'Springer');
        INSERT INTO author (id, title, firstname, lastname, email, team)
            VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);
        """
    )
