"""Scalable synthetic publication workloads.

Generates deterministic (seeded) data for the Figure 1 schema at any
scale: teams, publishers, publication types, authors, publications, and
authorship links.  Used by the scaling/overhead benchmarks and the
equivalence property tests.

All generation is pure: the same seed yields the same dataset, so
benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..rdb.engine import Database
from .publication import build_database

__all__ = ["WorkloadConfig", "Dataset", "generate_dataset", "populate_database"]

_FIRST_NAMES = [
    "Matthias", "Gerald", "Harald", "Alice", "Bob", "Carol", "Dave",
    "Erika", "Felix", "Grace", "Heidi", "Ivan", "Judy", "Karl", "Lena",
]
_LAST_NAMES = [
    "Hert", "Reif", "Gall", "Smith", "Mueller", "Weber", "Keller",
    "Brunner", "Baumann", "Frei", "Huber", "Meier", "Schmid", "Steiner",
]
_TEAM_NAMES = [
    "Software Engineering", "Database Technology", "Information Systems",
    "Artificial Intelligence", "Distributed Systems", "Visualization",
    "Human-Computer Interaction", "Requirements Engineering",
]
_PUBLISHERS = ["Springer", "ACM", "IEEE", "Elsevier", "Morgan Kaufmann", "VLDB"]
_PUBTYPES = ["inproceedings", "article", "book", "techreport", "phdthesis"]
_TITLE_WORDS = [
    "Updating", "Relational", "Data", "via", "SPARQL", "Semantic", "Web",
    "Ontology", "Mapping", "Mediation", "Query", "Translation", "Schema",
    "Integration", "Linked", "Graphs", "Databases", "Views",
]


@dataclass
class WorkloadConfig:
    """Scale parameters for a synthetic publication dataset."""

    teams: int = 5
    publishers: int = 4
    pubtypes: int = 4
    authors: int = 50
    publications: int = 100
    max_authors_per_publication: int = 3
    seed: int = 42


@dataclass
class Dataset:
    """Generated rows, keyed the way the schema stores them."""

    teams: List[Dict] = field(default_factory=list)
    publishers: List[Dict] = field(default_factory=list)
    pubtypes: List[Dict] = field(default_factory=list)
    authors: List[Dict] = field(default_factory=list)
    publications: List[Dict] = field(default_factory=list)
    authorships: List[Tuple[int, int]] = field(default_factory=list)

    def row_count(self) -> int:
        return (
            len(self.teams)
            + len(self.publishers)
            + len(self.pubtypes)
            + len(self.authors)
            + len(self.publications)
            + len(self.authorships)
        )

    def triple_count(self) -> int:
        """Triples the dataset maps to (type + non-null attribute triples
        + link triples) — used to size benchmark comparisons."""
        count = 0
        for rows, attrs in (
            (self.teams, ("name", "code")),
            (self.publishers, ("name",)),
            (self.pubtypes, ("type",)),
            (self.authors, ("title", "email", "firstname", "lastname", "team")),
            (self.publications, ("title", "year", "type", "publisher")),
        ):
            for row in rows:
                count += 1  # rdf:type
                count += sum(1 for a in attrs if row.get(a) is not None)
        count += len(self.authorships)
        return count


def generate_dataset(config: WorkloadConfig) -> Dataset:
    """Generate a deterministic dataset for the given scale."""
    rng = random.Random(config.seed)
    dataset = Dataset()

    for i in range(1, config.teams + 1):
        name = _TEAM_NAMES[(i - 1) % len(_TEAM_NAMES)]
        code = "".join(w[0] for w in name.split())[:4].upper() + str(i)
        dataset.teams.append({"id": i, "name": f"{name} {i}", "code": code})

    for i in range(1, config.publishers + 1):
        dataset.publishers.append(
            {"id": i, "name": f"{_PUBLISHERS[(i - 1) % len(_PUBLISHERS)]} {i}"}
        )

    for i in range(1, config.pubtypes + 1):
        dataset.pubtypes.append(
            {"id": i, "type": _PUBTYPES[(i - 1) % len(_PUBTYPES)]}
        )

    for i in range(1, config.authors + 1):
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        has_email = rng.random() > 0.2
        has_team = rng.random() > 0.1 and dataset.teams
        dataset.authors.append(
            {
                "id": i,
                "title": rng.choice(["Mr", "Ms", "Dr", None]),
                "email": f"{first.lower()}.{last.lower()}{i}@example.org"
                if has_email
                else None,
                "firstname": first,
                "lastname": f"{last}{i}",
                "team": rng.choice(dataset.teams)["id"] if has_team else None,
            }
        )

    for i in range(1, config.publications + 1):
        words = rng.sample(_TITLE_WORDS, k=rng.randint(3, 6))
        dataset.publications.append(
            {
                "id": i,
                "title": " ".join(words) + f" {i}",
                "year": rng.randint(1998, 2010),
                "type": rng.choice(dataset.pubtypes)["id"]
                if dataset.pubtypes and rng.random() > 0.1
                else None,
                "publisher": rng.choice(dataset.publishers)["id"]
                if dataset.publishers and rng.random() > 0.1
                else None,
            }
        )

    seen = set()
    for publication in dataset.publications:
        k = rng.randint(1, max(1, config.max_authors_per_publication))
        authors = rng.sample(
            dataset.authors, k=min(k, len(dataset.authors))
        )
        for author in authors:
            pair = (publication["id"], author["id"])
            if pair not in seen:
                seen.add(pair)
                dataset.authorships.append(pair)
    return dataset


def populate_database(db: Database, dataset: Dataset) -> None:
    """Bulk-load a dataset via direct SQL INSERTs (parents first)."""
    from ..sql import ast

    def insert(table: str, rows: List[Dict]) -> None:
        for row in rows:
            columns = tuple(k for k, v in row.items() if v is not None)
            db.execute(
                ast.Insert(
                    table=table,
                    columns=columns,
                    rows=(tuple(ast.Literal(row[c]) for c in columns),),
                )
            )

    insert("team", dataset.teams)
    insert("publisher", dataset.publishers)
    insert("pubtype", dataset.pubtypes)
    insert("author", dataset.authors)
    insert("publication", dataset.publications)
    for publication_id, author_id in dataset.authorships:
        db.execute(
            ast.Insert(
                table="publication_author",
                columns=("publication", "author"),
                rows=((ast.Literal(publication_id), ast.Literal(author_id)),),
            )
        )


def build_populated_database(config: WorkloadConfig) -> Database:
    """Convenience: fresh schema + generated data."""
    db = build_database()
    populate_database(db, generate_dataset(config))
    return db
