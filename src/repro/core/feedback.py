"""The RDF feedback protocol (paper Sections 6 and 8).

"A confirmation or error message is returned to the translation module.
This message is then converted to an RDF representation and sent back to
the client" — and, as future work, "a feedback protocol that provides
semantically rich information about the cause of a rejection and possible
directions for improvement".

This module implements that protocol: both confirmations and errors are
RDF graphs in the ``oa:`` vocabulary, carrying machine-readable error
codes, the offending subject/property/table/attribute, and a human-
readable hint with a direction for improvement.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import TranslationError
from ..rdf.graph import Graph
from ..rdf.namespace import OA, RDF
from ..rdf.terms import BNode, Literal, Triple, URIRef

__all__ = ["confirmation_graph", "error_graph", "HINTS"]

#: Per-error-code improvement hints ("possible directions for improvement
#: can be reported", Section 8).
HINTS = {
    TranslationError.UNKNOWN_SUBJECT: (
        "Use an instance URI built from a uriPattern of the mapping, e.g. "
        "<prefix><table><key>."
    ),
    TranslationError.UNKNOWN_CLASS: (
        "Only classes assigned in the mapping can be instantiated; consult "
        "the mapping's TableMaps for the available classes."
    ),
    TranslationError.ENTITY_EXISTS: (
        "The entity already holds complete data; use MODIFY to change it."
    ),
    TranslationError.UNKNOWN_PROPERTY: (
        "Only properties assigned in the mapping can be stored; consult the "
        "mapping's TableMap for the valid vocabulary of this class."
    ),
    TranslationError.MISSING_REQUIRED: (
        "Add triples for every NOT NULL attribute without default before "
        "creating the entity."
    ),
    TranslationError.NOT_NULL_DELETE: (
        "This attribute is mandatory; delete the complete entity instead of "
        "removing the triple."
    ),
    TranslationError.TYPE_MISMATCH: (
        "Provide a literal compatible with the column type declared in the "
        "database schema."
    ),
    TranslationError.MULTI_VALUE: (
        "Relational attributes hold one value; delete the existing triple "
        "first or use MODIFY to replace it."
    ),
    TranslationError.ENTITY_MISSING: (
        "The entity does not exist; insert it before deleting its triples."
    ),
    TranslationError.TRIPLE_MISSING: (
        "DELETE DATA removes known triples only; query the current state "
        "first."
    ),
    TranslationError.FK_TARGET_MISSING: (
        "Insert the referenced entity first (or in the same request; the "
        "mediator orders statements by foreign-key dependencies)."
    ),
    TranslationError.CLASS_MISMATCH: (
        "The subject URI determines the table; use the class the table maps "
        "to."
    ),
    TranslationError.CONSTRAINT_VIOLATION: (
        "The database rejected the update; check referential integrity of "
        "the affected rows."
    ),
    TranslationError.UNSUPPORTED: (
        "Rephrase the request within the supported SPARQL/Update fragment."
    ),
}


def confirmation_graph(
    statements_executed: int,
    operations: int = 1,
    request_uri: Optional[URIRef] = None,
) -> Graph:
    """Build the RDF confirmation for a successful update request."""
    g = Graph()
    node = request_uri or BNode()
    g.add(Triple(node, RDF.type, OA.Confirmation))
    g.add(Triple(node, OA.operationCount, Literal(operations)))
    g.add(Triple(node, OA.statementsExecuted, Literal(statements_executed)))
    g.add(Triple(node, OA.status, Literal("ok")))
    return g


def error_graph(
    error: TranslationError, request_uri: Optional[URIRef] = None
) -> Graph:
    """Encode a translation error as the RDF feedback message."""
    g = Graph()
    node = request_uri or BNode()
    g.add(Triple(node, RDF.type, OA.Error))
    g.add(Triple(node, OA.status, Literal("error")))
    g.add(Triple(node, OA.code, Literal(error.code)))
    g.add(Triple(node, OA.message, Literal(str(error))))
    hint = HINTS.get(error.code)
    if hint:
        g.add(Triple(node, OA.hint, Literal(hint)))

    detail_predicates = {
        "subject": OA.subject,
        "property": OA.property,
        "table": OA.table,
        "attribute": OA.attribute,
        "object": OA.object,
        "referenced_table": OA.referencedTable,
        "expected": OA.expectedValue,
        "actual": OA.actualValue,
        "existing": OA.existingValue,
        "new": OA.newValue,
        "value": OA.value,
    }
    for key, predicate in detail_predicates.items():
        value = error.details.get(key)
        if value is None:
            continue
        if isinstance(value, str) and (
            value.startswith("http://")
            or value.startswith("https://")
            or value.startswith("mailto:")
        ):
            g.add(Triple(node, predicate, URIRef(value)))
        elif isinstance(value, (str, int, float, bool)):
            g.add(Triple(node, predicate, Literal(value)))
        elif isinstance(value, list):
            for item in value:
                g.add(Triple(node, predicate, Literal(str(item))))
    return g
