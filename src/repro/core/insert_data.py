"""INSERT DATA → SQL translation (paper Section 5.1, Algorithm 1).

Per subject group the translation produces either:

* an SQL ``INSERT`` when the entity does not exist yet (the URI pattern's
  key values plus every attribute value from the triples), or
* an SQL ``UPDATE`` "that replaces the NULLs with actual values" when the
  entity already exists (incremental data entry — first just the last
  name, later the first name and email).

Link-table triples become ``INSERT``s into the link table.  Validity
checks (step 3) happen before any SQL is generated:

* an INSERT creating a new entity must provide a triple for every
  attribute with a NOT NULL constraint and no default (step 3's example);
* at most one value per attribute (tuples cannot hold two);
* when updating an existing entity, a non-NULL attribute may only be
  "re-inserted" with the same value (triple-set semantics); a *different*
  value is rejected unless ``allow_overwrite`` is set, which the MODIFY
  driver uses for its replace optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TranslationError
from ..rdb.engine import Database
from ..rdf.terms import Object, Triple
from ..r3m.model import DatabaseMapping, LinkTableMapping
from ..sql import ast
from .common import (
    EntityRef,
    SubjectGroup,
    classify_group,
    group_by_subject,
    term_to_sql_value,
)
from .sorting import sort_statements

__all__ = ["translate_insert_data"]


def translate_insert_data(
    mapping: DatabaseMapping,
    db: Database,
    triples: Tuple[Triple, ...],
    allow_overwrite: bool = False,
) -> List[ast.Statement]:
    """Translate an INSERT DATA payload to sorted SQL statements."""
    statements: List[ast.Statement] = []
    link_rows: List[Tuple[LinkTableMapping, Any, Any]] = []
    #: key values of entities this request itself creates — needed so a
    #: link triple can reference a row inserted by the same operation.
    pending_rows: Dict[Tuple[str, Tuple[Any, ...]], bool] = {}

    for subject, group_triples in group_by_subject(triples):
        group = classify_group(mapping, db, subject, group_triples)
        entity = group.entity
        values = _attribute_values(mapping, db, group)
        current = entity.current_row(db)
        if current is None:
            statements.append(_insert_statement(db, group, values))
            pending_rows[(entity.table.table_name, entity.pk_tuple(db))] = True
        else:
            update = _update_statement(
                db, group, values, current, allow_overwrite
            )
            if update is not None:
                statements.append(update)
        for link, obj in group.link_values:
            link_rows.append(_link_row(mapping, db, link, entity, obj))

    # Referenced-row existence is checked only after every group has been
    # processed: Listing 15's pub12 group references author6, whose INSERT
    # is produced by a later group of the same request.
    for link, subject_key, object_key in link_rows:
        _check_link_targets(db, link, subject_key, object_key, pending_rows)
        insert = _link_insert(db, link, subject_key, object_key)
        if insert is not None:
            statements.append(insert)
    return sort_statements(statements, db.schema)


def _attribute_values(
    mapping: DatabaseMapping, db: Database, group: SubjectGroup
) -> Dict[str, Any]:
    """Extract and coerce the attribute values of one subject group."""
    entity = group.entity
    values: Dict[str, Any] = {}
    for attribute, obj in group.attribute_values:
        value = term_to_sql_value(mapping, db, entity.table, attribute, obj)
        name = attribute.attribute_name
        if name in values and values[name] != value:
            raise TranslationError(
                f"multiple values for {entity.table.table_name}.{name}: the "
                "relational model stores at most one",
                code=TranslationError.MULTI_VALUE,
                details={
                    "subject": entity.uri.value,
                    "table": entity.table.table_name,
                    "attribute": name,
                },
            )
        values[name] = value
    return values


def _insert_statement(
    db: Database, group: SubjectGroup, values: Dict[str, Any]
) -> ast.Insert:
    entity = group.entity
    table = entity.table

    # Step 3: "a triple must be present containing a property for every
    # corresponding database attribute that has a NotNull constraint but no
    # Default value."
    missing = [
        a.attribute_name
        for a in table.required_attributes()
        if a.attribute_name not in values
    ]
    if missing:
        raise TranslationError(
            f"cannot create {entity.uri.value}: required attribute(s) "
            f"{missing} of table {table.table_name!r} have no value "
            "(NOT NULL without default)",
            code=TranslationError.MISSING_REQUIRED,
            details={
                "subject": entity.uri.value,
                "table": table.table_name,
                "attributes": missing,
            },
        )

    row = {**entity.key_values, **values}
    columns = tuple(row)
    return ast.Insert(
        table=table.table_name,
        columns=columns,
        rows=(tuple(_value_expr(row[c]) for c in columns),),
    )


def _update_statement(
    db: Database,
    group: SubjectGroup,
    values: Dict[str, Any],
    current: Dict[str, Any],
    allow_overwrite: bool,
) -> Optional[ast.Update]:
    """INSERT DATA on an existing entity → UPDATE filling NULLs."""
    entity = group.entity
    assignments: List[ast.Assignment] = []
    for name, value in values.items():
        existing = current.get(name)
        if existing is None or allow_overwrite:
            if existing != value:
                assignments.append(ast.Assignment(name, _value_expr(value)))
            continue
        if existing == value:
            continue  # the triple already holds; inserting it is a no-op
        raise TranslationError(
            f"attribute {entity.table.table_name}.{name} of "
            f"{entity.uri.value} already has the value {existing!r}; "
            f"inserting a second value {value!r} would require two tuples",
            code=TranslationError.MULTI_VALUE,
            details={
                "subject": entity.uri.value,
                "table": entity.table.table_name,
                "attribute": name,
                "existing": existing,
                "new": value,
            },
        )
    if not assignments:
        return None  # fully redundant insert: set semantics, nothing to do
    return ast.Update(
        table=entity.table.table_name,
        assignments=tuple(assignments),
        where=_pk_condition(db, entity),
    )


def _link_row(
    mapping: DatabaseMapping,
    db: Database,
    link: LinkTableMapping,
    entity: EntityRef,
    obj: Object,
) -> Tuple[LinkTableMapping, Any, Any]:
    from ..rdf.terms import URIRef

    subject_key = entity.pk_tuple(db)[0]
    if not isinstance(obj, URIRef):
        raise TranslationError(
            f"link property {link.property} requires an instance URI object",
            code=TranslationError.TYPE_MISMATCH,
            details={"property": str(link.property)},
        )
    target = mapping.table(link.object_table())
    raw = target.uri_pattern.match(obj)
    if raw is None:
        raise TranslationError(
            f"object {obj.value} does not match the uriPattern of "
            f"{link.object_table()!r}",
            code=TranslationError.FK_TARGET_MISSING,
            details={"object": obj.value, "referenced_table": link.object_table()},
        )
    from .common import coerce_pattern_values

    coerced = coerce_pattern_values(db, target, raw, obj)
    object_key = tuple(
        coerced[c] for c in db.table(link.object_table()).primary_key
    )[0]
    return link, subject_key, object_key


def _check_link_targets(
    db: Database,
    link: LinkTableMapping,
    subject_key: Any,
    object_key: Any,
    pending_rows: Dict[Tuple[str, Tuple[Any, ...]], bool],
) -> None:
    """The referenced rows must exist either in the database or among the
    rows this very request inserts (they sort first)."""
    for table_name, key in (
        (link.subject_table(), (subject_key,)),
        (link.object_table(), (object_key,)),
    ):
        if (table_name, key) in pending_rows:
            continue
        if db.get_row_by_pk(table_name, key) is None:
            raise TranslationError(
                f"link triple references missing row {table_name}{key}",
                code=TranslationError.FK_TARGET_MISSING,
                details={"referenced_table": table_name, "key": list(key)},
            )


def _link_insert(
    db: Database, link: LinkTableMapping, subject_key: Any, object_key: Any
) -> Optional[ast.Insert]:
    """INSERT into the link table, skipping pairs that already exist."""
    table_data = db.table_data(link.table_name)
    subject_attr = link.subject_attribute.attribute_name
    object_attr = link.object_attribute.attribute_name
    for rowid in table_data.find_by_value(subject_attr, subject_key):
        if table_data.rows[rowid].get(object_attr) == object_key:
            return None  # triple already present: set semantics
    return ast.Insert(
        table=link.table_name,
        columns=(subject_attr, object_attr),
        rows=((_value_expr(subject_key), _value_expr(object_key)),),
    )


def _pk_condition(db: Database, entity: EntityRef) -> ast.Expression:
    schema_table = db.table(entity.table.table_name)
    condition: Optional[ast.Expression] = None
    for column in schema_table.primary_key:
        clause = ast.BinaryOp(
            "=", ast.ColumnRef(column), _value_expr(entity.key_values[column])
        )
        condition = clause if condition is None else ast.BinaryOp("AND", condition, clause)
    if condition is None:
        raise TranslationError(
            f"table {entity.table.table_name!r} has no primary key; updates "
            "cannot address rows"
        )
    return condition


def _value_expr(value: Any) -> ast.Expression:
    return ast.Null() if value is None else ast.Literal(value)
