"""Algorithm 1 step 5: sort SQL statements by foreign-key dependencies.

"The collected SQL statements are sorted according to the foreign key
relationships among the affected tables ... executing the generated
statements in an arbitrary order may result in the failure of the
transaction whereas their execution in the sorted order would succeed."

INSERTs are ordered parents-before-children (a row can only reference an
existing parent); DELETEs children-before-parents; UPDATEs run between the
two phases (after all inserts that could create their FK targets, before
deletes that could remove rows they still reference).

The topological sort is a deterministic Kahn's algorithm over the *static*
FK graph of the affected tables; ties break on first-appearance order so
translation output is stable (the listings in the paper print a specific
order).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..errors import TranslationError
from ..rdb.catalog import Schema
from ..sql import ast

__all__ = ["sort_statements", "topological_table_order"]


def sort_statements(
    statements: Sequence[ast.Statement], schema: Schema
) -> List[ast.Statement]:
    """Return the statements in FK-dependency-safe execution order."""
    inserts = [s for s in statements if isinstance(s, ast.Insert)]
    updates = [s for s in statements if isinstance(s, ast.Update)]
    deletes = [s for s in statements if isinstance(s, ast.Delete)]
    others = [
        s
        for s in statements
        if not isinstance(s, (ast.Insert, ast.Update, ast.Delete))
    ]
    if others:
        raise TranslationError(
            f"cannot sort statement of type {type(others[0]).__name__}"
        )

    insert_order = topological_table_order(
        [s.table for s in inserts], schema
    )
    delete_order = topological_table_order(
        [s.table for s in deletes], schema
    )

    sorted_inserts = _stable_sort_by_table(inserts, insert_order)
    # deletes run children-first: reverse the parents-first order
    sorted_deletes = _stable_sort_by_table(
        deletes, list(reversed(delete_order))
    )
    return [*sorted_inserts, *updates, *sorted_deletes]


def topological_table_order(tables: Sequence[str], schema: Schema) -> List[str]:
    """Parents-before-children order of the given tables.

    Only FK edges between tables in the input set constrain the order;
    unaffected tables are ignored.  First-appearance order breaks ties.
    """
    appearance: Dict[str, int] = {}
    for name in tables:
        appearance.setdefault(name, len(appearance))
    names: Set[str] = set(appearance)

    # edge parent -> child for each FK child.references(parent)
    children_of: Dict[str, List[str]] = {name: [] for name in names}
    indegree: Dict[str, int] = {name: 0 for name in names}
    for name in names:
        table = schema.table(name)
        for fk in table.foreign_keys:
            parent = fk.ref_table
            if parent in names and parent != name:
                children_of[parent].append(name)
                indegree[name] += 1

    ready = sorted(
        (name for name in names if indegree[name] == 0),
        key=lambda n: appearance[n],
    )
    order: List[str] = []
    while ready:
        current = ready.pop(0)
        order.append(current)
        newly_ready = []
        for child in children_of[current]:
            indegree[child] -= 1
            if indegree[child] == 0:
                newly_ready.append(child)
        ready.extend(sorted(newly_ready, key=lambda n: appearance[n]))
        ready.sort(key=lambda n: appearance[n])
    if len(order) != len(names):
        cyclic = sorted(names - set(order))
        raise TranslationError(
            f"cyclic foreign-key dependency among tables {cyclic}; cannot "
            "order statements (deferred constraint checking required)"
        )
    return order


def _stable_sort_by_table(
    statements: List, table_order: List[str]
) -> List:
    rank = {name: i for i, name in enumerate(table_order)}
    indexed = sorted(
        enumerate(statements),
        key=lambda pair: (rank.get(pair[1].table, len(rank)), pair[0]),
    )
    return [statement for _, statement in indexed]
