"""The OntoAccess mediator: the public facade of the reproduction.

Ties the mapping (R3M), the translation algorithms (Sections 5.1/5.2), the
relational engine, the query path, and the feedback protocol together::

    from repro import OntoAccess
    from repro.workloads.publication import build_database, build_mapping

    db = build_database()
    oa = OntoAccess(db, build_mapping(db))
    result = oa.update('''
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX ont:  <http://example.org/ontology#>
        PREFIX ex:   <http://example.org/db/>
        INSERT DATA {
            ex:team4 foaf:name "Database Technology" ;
                     ont:teamCode "DBTG" .
        }
    ''')
    result.sql()  # ["INSERT INTO team (id, name, code) VALUES (4, ...);"]

Every SPARQL/Update operation executes inside one database transaction
("all generated SQL statements that correspond to a single SPARQL/Update
operation are executed within the context of one database transaction to
ensure the atomicity of the SPARQL/Update operation", Section 5.1).

Since ISSUE 2 the facade is a thin shim over the Session API: execution
lives in :class:`~repro.core.backend.RelationalBackend` and transaction
scope in :class:`~repro.core.session.Session`.  Call :meth:`OntoAccess.
session` for the amortizing interface (prepared operations, batches,
explicit transactions, alternative backends).
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..errors import TranslationError
from ..rdb.engine import Database
from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..r3m.model import DatabaseMapping
from ..r3m.validator import validate_mapping
from ..sparql.query_ast import Query
from ..sparql.update_ast import UpdateRequest
from ..sparql.update_parser import parse_update
from ..sql import ast
from ..sql.render import render
from .backend import (
    Backend,
    OperationResult,
    RelationalBackend,
    UpdateResult,
)
from .feedback import error_graph
from .query import QueryOutcome
from .session import Session

__all__ = ["OntoAccess", "OperationResult", "UpdateResult"]


class OntoAccess:
    """Mediator between SPARQL/Update clients and a relational database."""

    def __init__(
        self,
        db: Database,
        mapping: DatabaseMapping,
        validate: bool = True,
        optimize_modify: bool = True,
        force_query_fallback: bool = False,
    ) -> None:
        self.db = db
        if validate:
            validate_mapping(mapping, db)
        self._backend = RelationalBackend(
            db,
            mapping,
            optimize_modify=optimize_modify,
            force_query_fallback=force_query_fallback,
        )
        self._session = Session(self._backend)

    # Translation knobs stay mutable attributes of the facade; they are
    # shared with (not copied into) the backend.
    @property
    def mapping(self) -> DatabaseMapping:
        return self._backend.mapping

    @mapping.setter
    def mapping(self, value: DatabaseMapping) -> None:
        # Forwarded so reassignment keeps affecting execution (and bumps
        # the backend's mapping generation, invalidating prepared SQL).
        self._backend.mapping = value

    @property
    def optimize_modify(self) -> bool:
        return self._backend.optimize_modify

    @optimize_modify.setter
    def optimize_modify(self, value: bool) -> None:
        self._backend.optimize_modify = value

    @property
    def force_query_fallback(self) -> bool:
        return self._backend.force_query_fallback

    @force_query_fallback.setter
    def force_query_fallback(self, value: bool) -> None:
        self._backend.force_query_fallback = value

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------

    def session(self, backend: Optional[Backend] = None) -> Session:
        """A new :class:`Session` over this mediator's backend (or any
        other backend), with its own prepared-operation cache."""
        return Session(backend if backend is not None else self._backend)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def update(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> UpdateResult:
        """Translate and execute a SPARQL/Update request.

        Raises :class:`~repro.errors.TranslationError` when a request is
        invalid from the RDB perspective; nothing is persisted for the
        failing operation (one transaction per operation).
        """
        return self._session.execute(request, prefixes=prefixes)

    def try_update(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> Graph:
        """Update and return the RDF feedback graph (never raises for
        translation/constraint errors) — the HTTP endpoint's behaviour."""
        try:
            return self.update(request, prefixes=prefixes).feedback()
        except TranslationError as exc:
            return error_graph(exc)

    def translate(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> List[ast.Statement]:
        """Translate without executing (dry run against current state)."""
        if isinstance(request, str):
            request = parse_update(request, prefixes=prefixes)
        statements: List[ast.Statement] = []
        # Translation reads row data (current_row, link lookups), so it
        # must serialize with concurrent writers like every session entry.
        with self._session._lock:
            for operation in request.operations:
                statements.extend(self._backend.translate_operation(operation))
        return statements

    def translate_sql(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> List[str]:
        """Dry-run translation rendered to SQL text (the paper's listings)."""
        return [render(s) for s in self.translate(request, prefixes=prefixes)]

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def query(
        self,
        q: Union[str, Query],
        prefixes: Optional[PrefixMap] = None,
    ):
        """Run a SPARQL query; returns SelectResult / bool / Graph."""
        return self.query_outcome(q, prefixes=prefixes).result

    def query_outcome(
        self,
        q: Union[str, Query],
        prefixes: Optional[PrefixMap] = None,
    ) -> QueryOutcome:
        """Like :meth:`query` but exposing how the query was evaluated."""
        return self._session.query_outcome(q, prefixes=prefixes)

    def dump(self) -> Graph:
        """Materialize the whole mapped database as RDF."""
        return self._session.dump()  # session lock: no torn reads
