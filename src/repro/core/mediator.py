"""The OntoAccess mediator: the public facade of the reproduction.

Ties the mapping (R3M), the translation algorithms (Sections 5.1/5.2), the
relational engine, the query path, and the feedback protocol together::

    from repro import OntoAccess
    from repro.workloads.publication import build_database, build_mapping

    db = build_database()
    oa = OntoAccess(db, build_mapping(db))
    result = oa.update('''
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX ont:  <http://example.org/ontology#>
        PREFIX ex:   <http://example.org/db/>
        INSERT DATA {
            ex:team4 foaf:name "Database Technology" ;
                     ont:teamCode "DBTG" .
        }
    ''')
    result.sql()  # ["INSERT INTO team (id, name, code) VALUES (4, ...);"]

Every SPARQL/Update operation executes inside one database transaction
("all generated SQL statements that correspond to a single SPARQL/Update
operation are executed within the context of one database transaction to
ensure the atomicity of the SPARQL/Update operation", Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..errors import DatabaseError, IntegrityError, TranslationError
from ..rdb.engine import Database
from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..r3m.model import DatabaseMapping
from ..r3m.validator import validate_mapping
from ..sparql.query_ast import Query
from ..sparql.update_ast import (
    Clear,
    DeleteData,
    InsertData,
    Modify,
    UpdateOperation,
    UpdateRequest,
)
from ..sparql.update_parser import parse_update
from ..sql import ast
from ..sql.render import render
from .delete_data import translate_delete_data
from .dump import dump_database
from .feedback import confirmation_graph, error_graph
from .insert_data import translate_insert_data
from .modify import ModifyPlan, bindings_for_pattern, plan_binding, plan_modify
from .query import QueryOutcome, execute_query

__all__ = ["OntoAccess", "OperationResult", "UpdateResult"]


@dataclass
class OperationResult:
    """Outcome of one translated + executed update operation."""

    kind: str  # 'insert-data' | 'delete-data' | 'modify' | 'clear'
    statements: List[ast.Statement] = field(default_factory=list)
    rows_affected: int = 0
    bindings: int = 0
    #: True when a MODIFY evaluated its WHERE via translated SQL
    used_sql_select: Optional[bool] = None

    def sql(self) -> List[str]:
        return [render(s) for s in self.statements]


@dataclass
class UpdateResult:
    """Outcome of a whole SPARQL/Update request."""

    operations: List[OperationResult] = field(default_factory=list)

    def sql(self) -> List[str]:
        return [line for op in self.operations for line in op.sql()]

    def statements_executed(self) -> int:
        return sum(len(op.statements) for op in self.operations)

    def feedback(self) -> Graph:
        """The RDF confirmation message for this result."""
        return confirmation_graph(
            statements_executed=self.statements_executed(),
            operations=len(self.operations),
        )


class OntoAccess:
    """Mediator between SPARQL/Update clients and a relational database."""

    def __init__(
        self,
        db: Database,
        mapping: DatabaseMapping,
        validate: bool = True,
        optimize_modify: bool = True,
        force_query_fallback: bool = False,
    ) -> None:
        self.db = db
        self.mapping = mapping
        self.optimize_modify = optimize_modify
        self.force_query_fallback = force_query_fallback
        if validate:
            validate_mapping(mapping, db)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def update(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> UpdateResult:
        """Translate and execute a SPARQL/Update request.

        Raises :class:`~repro.errors.TranslationError` when a request is
        invalid from the RDB perspective; nothing is persisted for the
        failing operation (one transaction per operation).
        """
        if isinstance(request, str):
            request = parse_update(request, prefixes=prefixes)
        result = UpdateResult()
        for operation in request.operations:
            result.operations.append(self._execute_operation(operation))
        return result

    def try_update(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> Graph:
        """Update and return the RDF feedback graph (never raises for
        translation/constraint errors) — the HTTP endpoint's behaviour."""
        try:
            return self.update(request, prefixes=prefixes).feedback()
        except TranslationError as exc:
            return error_graph(exc)

    def translate(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> List[ast.Statement]:
        """Translate without executing (dry run against current state)."""
        if isinstance(request, str):
            request = parse_update(request, prefixes=prefixes)
        statements: List[ast.Statement] = []
        for operation in request.operations:
            statements.extend(self._translate_operation(operation))
        return statements

    def translate_sql(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> List[str]:
        """Dry-run translation rendered to SQL text (the paper's listings)."""
        return [render(s) for s in self.translate(request, prefixes=prefixes)]

    def _translate_operation(
        self, operation: UpdateOperation
    ) -> List[ast.Statement]:
        if isinstance(operation, InsertData):
            return translate_insert_data(self.mapping, self.db, operation.triples)
        if isinstance(operation, DeleteData):
            return translate_delete_data(self.mapping, self.db, operation.triples)
        if isinstance(operation, Modify):
            plan = plan_modify(
                self.mapping,
                self.db,
                operation,
                optimize_redundant_deletes=self.optimize_modify,
                force_fallback=self.force_query_fallback,
            )
            return plan.all_statements()
        if isinstance(operation, Clear):
            return [
                ast.Delete(table=name)
                for name in reversed(
                    _safe_clear_order(self.mapping, self.db)
                )
            ]
        raise TranslationError(
            f"unsupported operation {type(operation).__name__}",
            code=TranslationError.UNSUPPORTED,
        )

    def _execute_operation(self, operation: UpdateOperation) -> OperationResult:
        if isinstance(operation, InsertData):
            statements = translate_insert_data(
                self.mapping, self.db, operation.triples
            )
            return self._run("insert-data", statements)
        if isinstance(operation, DeleteData):
            statements = translate_delete_data(
                self.mapping, self.db, operation.triples
            )
            return self._run("delete-data", statements)
        if isinstance(operation, Modify):
            return self._execute_modify(operation)
        if isinstance(operation, Clear):
            statements = self._translate_operation(operation)
            return self._run("clear", statements)
        raise TranslationError(
            f"unsupported operation {type(operation).__name__}",
            code=TranslationError.UNSUPPORTED,
        )

    def _run(self, kind: str, statements: List[ast.Statement]) -> OperationResult:
        """Execute translated statements in one transaction."""
        result = OperationResult(kind=kind, statements=statements)
        self.db.begin()
        try:
            for statement in statements:
                outcome = self.db.execute(statement)
                result.rows_affected += outcome.rowcount
            self.db.commit()
        except (IntegrityError, DatabaseError) as exc:
            if self.db.in_transaction():
                self.db.rollback()
            raise _wrap_db_error(exc) from exc
        except Exception:
            if self.db.in_transaction():
                self.db.rollback()
            raise
        return result

    def _execute_modify(self, operation: Modify) -> OperationResult:
        """Algorithm 2: evaluate WHERE, then per binding translate and
        execute the DELETE DATA / INSERT DATA pair (lines 7–13)."""
        solutions, used_sql, _ = bindings_for_pattern(
            self.mapping,
            self.db,
            operation.where,
            force_fallback=self.force_query_fallback,
        )
        result = OperationResult(
            kind="modify", bindings=len(solutions), used_sql_select=used_sql
        )
        self.db.begin()
        try:
            for solution in solutions:
                # Re-plan against the current state: earlier bindings may
                # have changed rows this binding touches.
                step = plan_binding(
                    self.mapping,
                    self.db,
                    operation,
                    solution,
                    optimize_redundant_deletes=self.optimize_modify,
                )
                for statement in step.all_statements():
                    outcome = self.db.execute(statement)
                    result.rows_affected += outcome.rowcount
                    result.statements.append(statement)
            self.db.commit()
        except (IntegrityError, DatabaseError) as exc:
            if self.db.in_transaction():
                self.db.rollback()
            raise _wrap_db_error(exc) from exc
        except Exception:
            if self.db.in_transaction():
                self.db.rollback()
            raise
        return result

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def query(
        self,
        q: Union[str, Query],
        prefixes: Optional[PrefixMap] = None,
    ):
        """Run a SPARQL query; returns SelectResult / bool / Graph."""
        return self.query_outcome(q, prefixes=prefixes).result

    def query_outcome(
        self,
        q: Union[str, Query],
        prefixes: Optional[PrefixMap] = None,
    ) -> QueryOutcome:
        """Like :meth:`query` but exposing how the query was evaluated."""
        return execute_query(
            self.mapping,
            self.db,
            q,
            prefixes=prefixes,
            force_fallback=self.force_query_fallback,
        )

    def dump(self) -> Graph:
        """Materialize the whole mapped database as RDF."""
        return dump_database(self.mapping, self.db)


def _wrap_db_error(exc: Exception) -> TranslationError:
    if isinstance(exc, IntegrityError):
        return TranslationError(
            f"database rejected the update: {exc}",
            code=TranslationError.CONSTRAINT_VIOLATION,
            details={
                "table": exc.table,
                "attribute": exc.column,
                "constraint": exc.constraint,
            },
        )
    return TranslationError(
        f"database error: {exc}", code=TranslationError.CONSTRAINT_VIOLATION
    )


def _safe_clear_order(mapping: DatabaseMapping, db: Database) -> List[str]:
    """Tables in parents-first order; CLEAR deletes in reverse."""
    from .sorting import topological_table_order

    return topological_table_order(mapping.all_table_names(), db.schema)
