"""Shared pieces of the SPARQL/Update-to-SQL translation (Algorithm 1).

Provides the per-step building blocks the INSERT DATA and DELETE DATA
drivers compose:

* :func:`group_by_subject` — step 1: group triples by equal subjects;
* :class:`EntityRef` / :func:`identify_entity` — step 2: identify the
  target table and primary-key values from a subject URI;
* value conversion between RDF terms and SQL values according to the
  mapping and column types (used by steps 3 and 4);
* classification of a subject group's triples into type / attribute /
  link-table triples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TranslationError, TypeMismatchError
from ..rdb.catalog import Column, Table
from ..rdb.engine import Database
from ..rdb.types import BooleanType, DateType, FloatType, IntegerType, SQLType
from ..rdf.namespace import RDF
from ..rdf.terms import (
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DATETIME,
    XSD_DOUBLE,
    XSD_FLOAT,
    XSD_INTEGER,
    BNode,
    Literal,
    Object,
    Term,
    Triple,
    URIRef,
)
from ..r3m.model import AttributeMapping, DatabaseMapping, LinkTableMapping, TableMapping

__all__ = [
    "EntityRef",
    "SubjectGroup",
    "group_by_subject",
    "identify_entity",
    "classify_group",
    "term_to_sql_value",
    "sql_value_to_term",
    "coerce_pattern_values",
]


def group_by_subject(triples: Tuple[Triple, ...]) -> List[Tuple[Term, List[Triple]]]:
    """Algorithm 1 step 1: group triples by equal subject, preserving the
    order in which subjects first appear."""
    groups: Dict[Term, List[Triple]] = {}
    for triple in triples:
        groups.setdefault(triple.subject, []).append(triple)
    return list(groups.items())


@dataclass
class EntityRef:
    """A subject resolved to a table and primary-key values (step 2)."""

    uri: URIRef
    table: TableMapping
    #: URI-pattern attribute values coerced to their column types.
    key_values: Dict[str, Any]

    def pk_tuple(self, db: Database) -> Tuple[Any, ...]:
        schema_table = db.table(self.table.table_name)
        return tuple(self.key_values[c] for c in schema_table.primary_key)

    def exists(self, db: Database) -> bool:
        return self.current_row(db) is not None

    def current_row(self, db: Database) -> Optional[Dict[str, Any]]:
        return db.get_row_by_pk(self.table.table_name, self.pk_tuple(db))


def identify_entity(
    mapping: DatabaseMapping, db: Database, subject: Term
) -> EntityRef:
    """Resolve a subject URI to (table, key values) or raise.

    Blank-node subjects cannot be mapped to rows (no key information), so
    they are rejected with a rich error — the paper's mapping mints URIs
    for every entity.
    """
    if isinstance(subject, BNode):
        raise TranslationError(
            f"blank node subject {subject} cannot be mapped to a table row; "
            "use an instance URI matching a uriPattern",
            code=TranslationError.UNKNOWN_SUBJECT,
            details={"subject": str(subject)},
        )
    if not isinstance(subject, URIRef):
        raise TranslationError(
            f"subject must be a URI, got {subject!r}",
            code=TranslationError.UNKNOWN_SUBJECT,
            details={"subject": str(subject)},
        )
    candidates = mapping.identify_candidates(subject)
    if not candidates:
        raise TranslationError(
            f"subject {subject.value} matches no uriPattern in the mapping",
            code=TranslationError.UNKNOWN_SUBJECT,
            details={"subject": subject.value},
        )
    # Most specific pattern whose extracted values fit the column types
    # wins (e.g. "pubtype4" structurally matches pub%%id%% too, but
    # "type4" is no INTEGER, so the pubtype table is the only valid match).
    last_error: Optional[TranslationError] = None
    for table_mapping, raw_values in candidates:
        try:
            key_values = coerce_pattern_values(
                db, table_mapping, raw_values, subject
            )
        except TranslationError as exc:
            last_error = exc
            continue
        return EntityRef(uri=subject, table=table_mapping, key_values=key_values)
    assert last_error is not None
    raise last_error


def coerce_pattern_values(
    db: Database,
    table_mapping: TableMapping,
    raw_values: Dict[str, str],
    subject: URIRef,
) -> Dict[str, Any]:
    """Coerce URI-pattern-extracted strings to the column types."""
    schema_table = db.table(table_mapping.table_name)
    coerced: Dict[str, Any] = {}
    for attr, raw in raw_values.items():
        column = schema_table.column(attr)
        try:
            coerced[attr] = column.sql_type.coerce(raw, attr)
        except TypeMismatchError as exc:
            raise TranslationError(
                f"URI {subject.value}: pattern value {raw!r} is invalid for "
                f"{table_mapping.table_name}.{attr}: {exc}",
                code=TranslationError.TYPE_MISMATCH,
                details={
                    "subject": subject.value,
                    "table": table_mapping.table_name,
                    "attribute": attr,
                    "value": raw,
                },
            ) from exc
    return coerced


@dataclass
class SubjectGroup:
    """One subject's triples, classified for translation (steps 2-3)."""

    entity: EntityRef
    #: declared rdf:type objects (usually zero or one)
    types: List[Term] = field(default_factory=list)
    #: attribute triples: (attribute mapping, object term)
    attribute_values: List[Tuple[AttributeMapping, Object]] = field(
        default_factory=list
    )
    #: link-table triples: (link mapping, object term)
    link_values: List[Tuple[LinkTableMapping, Object]] = field(default_factory=list)


def classify_group(
    mapping: DatabaseMapping,
    db: Database,
    subject: Term,
    triples: List[Triple],
) -> SubjectGroup:
    """Steps 2-3 (structural part): identify the table and classify each
    triple as type / attribute / link, rejecting unknown properties."""
    entity = identify_entity(mapping, db, subject)
    group = SubjectGroup(entity=entity)
    table = entity.table

    for triple in triples:
        predicate = triple.predicate
        if predicate == RDF.type:
            group.types.append(triple.object)
            if triple.object != table.maps_to_class:
                raise TranslationError(
                    f"subject {entity.uri.value} is mapped to table "
                    f"{table.table_name!r} (class {table.maps_to_class}), but "
                    f"the request types it as {triple.object}",
                    code=TranslationError.CLASS_MISMATCH,
                    details={
                        "subject": entity.uri.value,
                        "table": table.table_name,
                        "expected": str(table.maps_to_class),
                        "actual": str(triple.object),
                    },
                )
            continue
        link = mapping.link_for_property(predicate)
        if link is not None:
            if link.subject_table() != table.table_name:
                raise TranslationError(
                    f"property {predicate} links instances of "
                    f"{link.subject_table()!r}, not {table.table_name!r}",
                    code=TranslationError.UNKNOWN_PROPERTY,
                    details={
                        "subject": entity.uri.value,
                        "property": str(predicate),
                        "table": table.table_name,
                    },
                )
            group.link_values.append((link, triple.object))
            continue
        attribute = table.attribute_for_property(predicate)
        if attribute is None:
            raise TranslationError(
                f"property {predicate} is not mapped for table "
                f"{table.table_name!r}",
                code=TranslationError.UNKNOWN_PROPERTY,
                details={
                    "subject": entity.uri.value,
                    "property": str(predicate),
                    "table": table.table_name,
                },
            )
        group.attribute_values.append((attribute, triple.object))
    return group


# ---------------------------------------------------------------------------
# value conversion
# ---------------------------------------------------------------------------

def term_to_sql_value(
    mapping: DatabaseMapping,
    db: Database,
    table: TableMapping,
    attribute: AttributeMapping,
    obj: Object,
) -> Any:
    """Convert a triple object into the SQL value for an attribute.

    Data properties take the literal's lexical value coerced to the column
    type; object properties take the primary-key value extracted from the
    object URI via the referenced table's URI pattern.
    """
    column = db.table(table.table_name).column(attribute.attribute_name)
    if attribute.is_object_property:
        referenced = attribute.references()
        if referenced is None:
            raise TranslationError(
                f"attribute {table.table_name}.{attribute.attribute_name} is "
                "an object property without a foreign key",
                code=TranslationError.UNSUPPORTED,
            )
        return _object_uri_to_key(mapping, db, referenced, obj, table, attribute)

    if isinstance(obj, URIRef):
        # Data attribute holding URI-valued terms (e.g. foaf:mbox →
        # email): extract the stored value through the value pattern, or
        # store the full URI string when no pattern is declared.
        if attribute.value_pattern is not None:
            extracted = attribute.value_pattern.match(obj)
            if extracted is None:
                raise TranslationError(
                    f"value {obj.value} does not match the value pattern "
                    f"{attribute.value_pattern.pattern!r} of "
                    f"{table.table_name}.{attribute.attribute_name}",
                    code=TranslationError.TYPE_MISMATCH,
                    details={
                        "table": table.table_name,
                        "attribute": attribute.attribute_name,
                        "value": obj.value,
                    },
                )
            raw_value = extracted[attribute.value_pattern.attributes[0]]
        else:
            raw_value = obj.value
        try:
            return column.sql_type.coerce(raw_value, attribute.attribute_name)
        except TypeMismatchError as exc:
            raise TranslationError(
                f"URI value {obj.value} cannot be stored in "
                f"{table.table_name}.{attribute.attribute_name}: {exc}",
                code=TranslationError.TYPE_MISMATCH,
                details={
                    "table": table.table_name,
                    "attribute": attribute.attribute_name,
                    "value": obj.value,
                },
            ) from exc
    if not isinstance(obj, Literal):
        raise TranslationError(
            f"property {attribute.property} is a data property; expected a "
            f"literal object, got {obj.n3() if isinstance(obj, Term) else obj!r}",
            code=TranslationError.TYPE_MISMATCH,
            details={
                "table": table.table_name,
                "attribute": attribute.attribute_name,
                "property": str(attribute.property),
            },
        )
    try:
        return column.sql_type.coerce(obj.to_python(), attribute.attribute_name)
    except (TypeMismatchError, ValueError) as exc:
        raise TranslationError(
            f"literal {obj.n3()} cannot be stored in "
            f"{table.table_name}.{attribute.attribute_name}: {exc}",
            code=TranslationError.TYPE_MISMATCH,
            details={
                "table": table.table_name,
                "attribute": attribute.attribute_name,
                "value": obj.lexical,
            },
        ) from exc


def _object_uri_to_key(
    mapping: DatabaseMapping,
    db: Database,
    referenced_table: str,
    obj: Object,
    table: TableMapping,
    attribute: AttributeMapping,
) -> Any:
    if not isinstance(obj, URIRef):
        raise TranslationError(
            f"property {attribute.property} is an object property; expected "
            f"an instance URI, got {obj.n3() if isinstance(obj, Term) else obj!r}",
            code=TranslationError.TYPE_MISMATCH,
            details={
                "table": table.table_name,
                "attribute": attribute.attribute_name,
            },
        )
    target = mapping.table(referenced_table)
    values = target.uri_pattern.match(obj)
    if values is None:
        raise TranslationError(
            f"object {obj.value} does not match the uriPattern of the "
            f"referenced table {referenced_table!r}",
            code=TranslationError.FK_TARGET_MISSING,
            details={
                "object": obj.value,
                "referenced_table": referenced_table,
            },
        )
    coerced = coerce_pattern_values(db, target, values, obj)
    schema_table = db.table(referenced_table)
    pk = schema_table.primary_key
    if len(pk) != 1:
        raise TranslationError(
            f"referenced table {referenced_table!r} must have a single-column "
            "primary key for object-property mapping",
            code=TranslationError.UNSUPPORTED,
        )
    return coerced[pk[0]]


def sql_value_to_term(
    mapping: DatabaseMapping,
    table: TableMapping,
    attribute: AttributeMapping,
    value: Any,
    column: Column,
) -> Optional[Term]:
    """Convert a stored SQL value back to a triple object (dump/query path).

    Returns None for NULL (no triple).  Numeric/boolean/date columns emit
    typed literals; string columns emit plain literals, matching the form
    the paper's listings use.
    """
    if value is None:
        return None
    if attribute.is_object_property:
        target = mapping.table(attribute.references())
        return target.uri_pattern.format({target.uri_pattern.attributes[0]: value})
    if attribute.value_pattern is not None:
        return attribute.value_pattern.format(
            {attribute.value_pattern.attributes[0]: value}
        )
    return literal_for_column(column.sql_type, value)


def literal_for_column(sql_type: SQLType, value: Any) -> Literal:
    """Canonical literal form for a column type (shared with baselines)."""
    if isinstance(sql_type, IntegerType):
        return Literal(str(int(value)), datatype=XSD_INTEGER)
    if isinstance(sql_type, FloatType):
        return Literal(repr(float(value)), datatype=XSD_DOUBLE)
    if isinstance(sql_type, BooleanType):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(sql_type, DateType):
        datatype = XSD_DATETIME if ("T" in str(value) or " " in str(value)) else XSD_DATE
        return Literal(str(value), datatype=datatype)
    return Literal(str(value))
