"""Pluggable execution backends behind the Session API.

A :class:`Backend` is the uniform surface a :class:`repro.core.session.
Session` drives: translate/execute one SPARQL/Update operation, run a
query, control a transaction, dump the store as RDF.  Two implementations
exist:

* :class:`RelationalBackend` — the paper's mediation pipeline: SPARQL is
  translated to SQL (Sections 5.1/5.2) and executed on the relational
  engine.  This is the backend the :class:`~repro.core.mediator.OntoAccess`
  facade uses.
* :class:`TripleStoreBackend` — the native in-memory triple store
  (:mod:`repro.sparql.engine`), the paper's comparison point and the
  semantic oracle of the equivalence suite.

Because both speak the same interface, equivalence tests and benchmarks
drive both through one :class:`Session`, and per-operation transaction
scope lives in exactly one place (the session), never in the backend.

Backends do NOT begin/commit transactions around operations themselves —
``execute_operation`` always runs inside a transaction the caller opened.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import (
    DatabaseError,
    DurabilityError,
    IntegrityError,
    ReadOnlyDatabaseError,
    TransactionError,
    TranslationError,
)
from ..observability.tracing import annotate
from ..rdb.engine import Database
from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..r3m.model import DatabaseMapping
from ..sparql.query_ast import Query
from ..sparql.update_ast import (
    Clear,
    DeleteData,
    InsertData,
    Modify,
    UpdateOperation,
)
from ..sql import ast
from ..sql.render import render
from .delete_data import translate_delete_data
from .dump import dump_database
from .feedback import confirmation_graph
from .insert_data import translate_insert_data
from .modify import bindings_for_pattern, plan_binding, plan_modify
from .query import QueryOutcome, execute_query, outcome_from_solutions

__all__ = [
    "Backend",
    "OperationResult",
    "RelationalBackend",
    "TripleStoreBackend",
    "UpdateResult",
    "operation_kind",
]


@dataclass
class OperationResult:
    """Outcome of one translated + executed update operation."""

    kind: str  # 'insert-data' | 'delete-data' | 'modify' | 'clear'
    statements: List[ast.Statement] = field(default_factory=list)
    rows_affected: int = 0
    bindings: int = 0
    #: True when a MODIFY evaluated its WHERE via translated SQL
    used_sql_select: Optional[bool] = None

    def sql(self) -> List[str]:
        return [render(s) for s in self.statements]


@dataclass
class UpdateResult:
    """Outcome of a whole SPARQL/Update request."""

    operations: List[OperationResult] = field(default_factory=list)

    def sql(self) -> List[str]:
        return [line for op in self.operations for line in op.sql()]

    def statements_executed(self) -> int:
        return sum(len(op.statements) for op in self.operations)

    def rows_affected(self) -> int:
        return sum(op.rows_affected for op in self.operations)

    def feedback(self) -> Graph:
        """The RDF confirmation message for this result."""
        return confirmation_graph(
            statements_executed=self.statements_executed(),
            operations=len(self.operations),
        )


def operation_kind(operation: UpdateOperation) -> str:
    if isinstance(operation, InsertData):
        return "insert-data"
    if isinstance(operation, DeleteData):
        return "delete-data"
    if isinstance(operation, Modify):
        return "modify"
    if isinstance(operation, Clear):
        return "clear"
    return type(operation).__name__.lower()


class Backend(abc.ABC):
    """Uniform execution surface over one storage engine.

    Subclasses must call ``super().__init__()``: the backend owns the
    reentrant lock that every :class:`~repro.core.session.Session` over
    it shares, because transaction state is backend-global and two
    sessions on one store must never interleave.

    Since the MVCC work the session lock is a **write-tier** lock: update
    execution, transaction scope, and translation serialize on it, while
    the query path runs lock-free against committed snapshots (see
    :meth:`~repro.rdb.engine.Database.snapshot` and the triple store's
    frozen-graph cache).  ``_cache_lock`` guards the small prepared-cache
    dictionaries that readers touch, so a long write transaction never
    stalls them.
    """

    #: Short identifier used in diagnostics and test parametrization.
    name: str = "backend"

    def __init__(self) -> None:
        self._session_lock = threading.RLock()
        #: Brief critical sections only (prepared-cache get/put); never
        #: held while executing a query or an update.
        self._cache_lock = threading.Lock()
        #: Outstanding ``Session.begin()`` acquisitions of the session
        #: lock (0 or 1; engines forbid nested transactions).  Lives here
        #: because the lock and transaction state are backend-global: a
        #: transaction begun through one session may legitimately be
        #: committed through another over the same backend.
        self._begin_holds = 0

    # -- write path ----------------------------------------------------

    @abc.abstractmethod
    def execute_operation(self, operation: UpdateOperation) -> OperationResult:
        """Execute one operation inside the caller's open transaction."""

    def translate_operation(
        self, operation: UpdateOperation
    ) -> List[ast.Statement]:
        """Dry-run translation (backends without SQL return nothing)."""
        return []

    def prepare_operation(self, operation: UpdateOperation) -> "PreparedOp":
        """A reusable handle for repeated execution of one operation."""
        return PreparedOp(self, operation)

    # -- transactions ---------------------------------------------------

    @abc.abstractmethod
    def begin(self) -> None: ...

    @abc.abstractmethod
    def commit(self) -> None: ...

    @abc.abstractmethod
    def rollback(self) -> None: ...

    @abc.abstractmethod
    def in_transaction(self) -> bool: ...

    # -- read path ------------------------------------------------------

    @abc.abstractmethod
    def query_outcome(
        self, q: Union[str, Query], prefixes: Optional[PrefixMap] = None
    ) -> QueryOutcome: ...

    def prepare_query(self, q: Query) -> "PreparedQueryPlan":
        return PreparedQueryPlan(self, q)

    @abc.abstractmethod
    def dump(self) -> Graph:
        """Materialize the whole store as an RDF graph."""

    # -- durability ------------------------------------------------------

    def checkpoint(self) -> Optional[str]:
        """Force a durability checkpoint; returns its path, or None when
        the backend has no durable store (the default)."""
        return None

    def health(self) -> Dict[str, Any]:
        """Machine-readable backend health (ISSUE 6): at minimum the
        backend name and whether a durable store backs it."""
        return {"backend": self.name, "durable": False}

    # -- bookkeeping -----------------------------------------------------

    def state_version(self) -> Any:
        """Opaque token that changes whenever visible state may have
        changed; prepared operations key their caches on it."""
        return object()  # never equal: no caching by default

    def wrap_error(self, exc: Exception) -> Exception:
        """Map an engine-level error to the client-facing exception."""
        return exc


class PreparedOp:
    """Default prepared handle: re-executes the operation each time."""

    __slots__ = ("backend", "operation")

    def __init__(self, backend: Backend, operation: UpdateOperation) -> None:
        self.backend = backend
        self.operation = operation

    def execute(self) -> OperationResult:
        return self.backend.execute_operation(self.operation)


class PreparedQueryPlan:
    """Default prepared query: re-runs the full query path each time."""

    __slots__ = ("backend", "query")

    def __init__(self, backend: Backend, query: Query) -> None:
        self.backend = backend
        self.query = query

    def outcome(self) -> QueryOutcome:
        return self.backend.query_outcome(self.query)


# ---------------------------------------------------------------------------
# the mediation pipeline as a backend
# ---------------------------------------------------------------------------

class RelationalBackend(Backend):
    """The paper's mediator pipeline: SPARQL/Update → SQL → RDB."""

    name = "rdb"

    def __init__(
        self,
        db: Database,
        mapping: DatabaseMapping,
        optimize_modify: bool = True,
        force_query_fallback: bool = False,
    ) -> None:
        super().__init__()
        self.db = db
        self._mapping = mapping
        #: Bumped when the mapping object is replaced, so prepared
        #: translations keyed on the state version invalidate.  In-place
        #: mutation of a DatabaseMapping is not tracked — replace the
        #: mapping (or build a new mediator) to change it safely.
        self._mapping_generation = 0
        self.optimize_modify = optimize_modify
        self.force_query_fallback = force_query_fallback

    @property
    def mapping(self) -> DatabaseMapping:
        return self._mapping

    @mapping.setter
    def mapping(self, value: DatabaseMapping) -> None:
        self._mapping = value
        self._mapping_generation += 1

    # -- write path ----------------------------------------------------

    def translate_operation(
        self, operation: UpdateOperation
    ) -> List[ast.Statement]:
        if isinstance(operation, InsertData):
            return translate_insert_data(self.mapping, self.db, operation.triples)
        if isinstance(operation, DeleteData):
            return translate_delete_data(self.mapping, self.db, operation.triples)
        if isinstance(operation, Modify):
            plan = plan_modify(
                self.mapping,
                self.db,
                operation,
                optimize_redundant_deletes=self.optimize_modify,
                force_fallback=self.force_query_fallback,
            )
            return plan.all_statements()
        if isinstance(operation, Clear):
            return [
                ast.Delete(table=name)
                for name in reversed(safe_clear_order(self.mapping, self.db))
            ]
        raise TranslationError(
            f"unsupported operation {type(operation).__name__}",
            code=TranslationError.UNSUPPORTED,
        )

    def execute_operation(self, operation: UpdateOperation) -> OperationResult:
        if isinstance(operation, Modify):
            return self._execute_modify(operation)
        statements = self.translate_operation(operation)
        return self.run_statements(operation_kind(operation), statements)

    def run_statements(
        self, kind: str, statements: List[ast.Statement]
    ) -> OperationResult:
        """Execute already-translated statements (translation replay)."""
        # Copy: callers may mutate result.statements, and the prepared-op
        # replay cache holds the original list.
        result = OperationResult(kind=kind, statements=list(statements))
        for statement in statements:
            outcome = self.db.execute(statement)
            result.rows_affected += outcome.rowcount
        return result

    def _execute_modify(self, operation: Modify) -> OperationResult:
        """Algorithm 2: evaluate WHERE, then per binding translate and
        execute the DELETE DATA / INSERT DATA pair (lines 7–13)."""
        solutions, used_sql, _ = bindings_for_pattern(
            self.mapping,
            self.db,
            operation.where,
            force_fallback=self.force_query_fallback,
        )
        result = OperationResult(
            kind="modify", bindings=len(solutions), used_sql_select=used_sql
        )
        for solution in solutions:
            # Re-plan against the current state: earlier bindings may
            # have changed rows this binding touches.
            step = plan_binding(
                self.mapping,
                self.db,
                operation,
                solution,
                optimize_redundant_deletes=self.optimize_modify,
            )
            for statement in step.all_statements():
                outcome = self.db.execute(statement)
                result.rows_affected += outcome.rowcount
                result.statements.append(statement)
        return result

    def prepare_operation(self, operation: UpdateOperation) -> PreparedOp:
        return _PreparedRdbOp(self, operation)

    # -- transactions ---------------------------------------------------

    def begin(self) -> None:
        self.db.begin()

    def commit(self) -> None:
        self.db.commit()

    def rollback(self) -> None:
        self.db.rollback()

    def in_transaction(self) -> bool:
        return self.db.in_transaction()

    # -- read path ------------------------------------------------------

    def query_outcome(
        self, q: Union[str, Query], prefixes: Optional[PrefixMap] = None
    ) -> QueryOutcome:
        outcome = execute_query(
            self.mapping,
            self.db,
            q,
            prefixes=prefixes,
            force_fallback=self.force_query_fallback,
        )
        annotate(backend=self.name, used_sql=outcome.used_sql)
        return outcome

    def prepare_query(self, q: Query) -> PreparedQueryPlan:
        return _PreparedRdbQuery(self, q)

    def dump(self) -> Graph:
        return dump_database(self.mapping, self.db)

    # -- durability ------------------------------------------------------

    def checkpoint(self) -> Optional[str]:
        return self.db.checkpoint()

    def health(self) -> Dict[str, Any]:
        return {"backend": self.name, **self.db.durability_status()}

    # -- bookkeeping -----------------------------------------------------

    def state_version(self) -> Tuple[int, int, int]:
        return (
            self._mapping_generation,
            self.db.schema_version,
            self.db.data_version,
        )

    def query_state_version(self) -> Tuple[int, int]:
        """What prepared query translations depend on: mapping + schema
        (pattern translation never reads row data)."""
        return (self._mapping_generation, self.db.schema_version)

    def wrap_error(self, exc: Exception) -> Exception:
        if isinstance(exc, DurabilityError):
            # Not a translation problem: the durable store itself failed.
            # Keep the type (the endpoint maps it to 503) and make the
            # message actionable when the WAL is refusing commits.
            if self.db.durability_status().get("wal_refusing"):
                return DurabilityError(
                    f"{exc} — the write-ahead log is refusing commits after "
                    "an I/O failure; in-memory state may be ahead of the "
                    "durable prefix.  Restart the process to recover the "
                    "intact prefix, then retry."
                )
            return exc
        if isinstance(exc, ReadOnlyDatabaseError):
            # Not a translation problem either: the write was refused
            # before execution (replica / fenced primary).  Keep the
            # type — the endpoint maps it to 403 "read-only" so the
            # client can re-route to the current primary.
            return exc
        if isinstance(exc, (IntegrityError, DatabaseError)):
            return wrap_db_error(exc)
        return exc


class _PreparedRdbOp(PreparedOp):
    """Prepared relational operation with a translation-replay cache.

    Translation is a pure function of (mapping, database state); the
    database state is identified by :meth:`Database.state_version`.  As
    long as the version is unchanged since the last translation, the
    cached SQL statements are replayed without re-running Algorithm 1 —
    the steady state for repeated idempotent operations.  Any change
    (including the replay itself affecting rows) bumps the version and
    forces a fresh translation, so semantics never drift from the
    unprepared path.

    MODIFY interleaves translation and execution per binding (Algorithm
    2), so it is never replayed from cache — only its parse is amortized.
    """

    __slots__ = ("_cached",)

    def __init__(self, backend: RelationalBackend, operation: UpdateOperation) -> None:
        super().__init__(backend, operation)
        #: (state version at translation, translated statements) or None
        self._cached: Optional[Tuple[Any, List[ast.Statement]]] = None

    def execute(self) -> OperationResult:
        backend = self.backend
        if isinstance(self.operation, Modify):
            return backend.execute_operation(self.operation)
        kind = operation_kind(self.operation)
        version = backend.state_version()
        if self._cached is not None and self._cached[0] == version:
            return backend.run_statements(kind, self._cached[1])
        statements = backend.translate_operation(self.operation)
        self._cached = (version, statements)
        return backend.run_statements(kind, statements)


class _PreparedRdbQuery(PreparedQueryPlan):
    """Prepared relational query: the SPARQL→SQL pattern translation is
    computed once per (mapping, schema) version (it never depends on row
    data) and re-executed against current data on every call; executions
    share the planner's compiled plan for the translated SELECT.

    Thread-safe without a lock: the cached translation lives in one
    atomically swapped tuple, so concurrent readers either reuse it or
    redundantly recompute the identical translation (benign), and never
    observe a half-updated pair of fields.
    """

    __slots__ = ("_state",)

    def __init__(self, backend: RelationalBackend, query: Query) -> None:
        super().__init__(backend, query)
        #: (version, translated, rendered sql, unsupported) — replaced
        #: wholesale, never mutated in place.
        self._state: Tuple[Any, Any, Optional[str], bool] = (
            None, None, None, False
        )

    def outcome(self) -> QueryOutcome:
        backend = self.backend
        if backend.force_query_fallback:
            return backend.query_outcome(self.query)
        version = backend.query_state_version()
        state = self._state
        if state[0] != version:
            from ..errors import UnsupportedPatternError
            from .select_translate import translate_pattern

            try:
                # Under the planner lock: DDL holds it across its catalog
                # mutation, so the (otherwise lock-free) translation can
                # never observe a half-applied schema change.
                with backend.db.planner.lock:
                    translated = translate_pattern(
                        backend.mapping, backend.db, self.query.where
                    )
                # render once, not per call
                state = (version, translated, translated.sql(), False)
            except UnsupportedPatternError:
                state = (version, None, None, True)
            self._state = state
        _, translated, sql, unsupported = state
        if unsupported:
            # Known-untranslatable for this schema: go straight to the
            # dump evaluation instead of re-attempting translation.
            from ..sparql.algebra import evaluate_pattern
            from .dump import dump_database

            graph = dump_database(backend.mapping, backend.db)
            annotate(backend=backend.name, used_sql=False)
            return outcome_from_solutions(
                self.query,
                evaluate_pattern(graph, self.query.where),
                used_sql=False,
            )
        annotate(backend=backend.name, used_sql=True)
        return outcome_from_solutions(
            self.query,
            translated.execute(),
            used_sql=True,
            select_sql=sql,
        )


# ---------------------------------------------------------------------------
# the native triple store as a backend
# ---------------------------------------------------------------------------

class TripleStoreBackend(Backend):
    """Native in-memory triple store behind the same Session interface.

    Wraps a :class:`~repro.baselines.triplestore.NativeTripleStore` (or
    its mapping-aware subclass, the equivalence oracle).  Transactions use
    the graph's undo journal: ``begin`` starts recording inverse
    operations, ``rollback`` replays them — O(changes), not O(graph).

    Snapshot reads: queries outside a transaction evaluate against a
    *frozen copy* of the committed graph, cached per committed version —
    so reader threads share one immutable graph and never race writer
    mutations.  ``begin`` refreshes the frozen copy when stale, which
    guarantees a pre-transaction snapshot exists for readers to use
    while the transaction is open.  The thread owning the open
    transaction reads the live graph (read-your-own-writes).

    Cost model: snapshotting is whole-graph granular, so once reads are
    active a write transaction whose cache is stale pays one O(graph)
    copy at ``begin`` (write-only workloads pay nothing — the copy is
    gated on ``_reads_active``).  The frozen copy must never be patched
    in place with the journal delta: readers iterate it lock-free, and
    mutating it would reintroduce exactly the torn reads snapshots
    exist to prevent.  Making this O(changes) needs per-index
    copy-on-write like the relational engine's per-table clones — a
    recorded ROADMAP follow-on.
    """

    name = "triplestore"

    def __init__(self, store) -> None:
        super().__init__()
        self.store = store
        self._version = 0
        #: _version at the last commit point (begin/rollback/commit keep
        #: it at committed state, so readers' freshness checks work like
        #: the relational engine's committed snapshot version).
        self._committed_version = 0
        #: (committed version, frozen graph copy) or None.
        self._read_cache: Optional[Tuple[int, Graph]] = None
        #: True once any snapshot read happened — only then does begin()
        #: pay for a pre-transaction copy; write-only workloads keep the
        #: O(changes) journal cost with no O(graph) copies.
        self._reads_active = False
        self._txn_owner: Optional[int] = None

    @property
    def graph(self) -> Graph:
        return self.store.graph

    # -- write path ----------------------------------------------------

    def execute_operation(self, operation: UpdateOperation) -> OperationResult:
        added, removed = self.store.apply_operation(operation)
        self._version += 1
        if not self.store.graph.journaling():
            self._committed_version = self._version
        return OperationResult(
            kind=operation_kind(operation), rows_affected=added + removed
        )

    # -- transactions ---------------------------------------------------
    # Error contract mirrors the relational engine's transaction control
    # (TransactionError on misuse) so backends stay swappable.

    def begin(self) -> None:
        if self.store.graph.journaling():
            raise TransactionError("a transaction is already open")
        cache = self._read_cache
        if self._reads_active and (
            cache is None or cache[0] != self._committed_version
        ):
            # Publish the pre-transaction state before mutating, so
            # concurrent readers stay lock-free for the whole transaction.
            # (A first-ever reader arriving mid-transaction instead waits
            # for the commit on the write-tier lock.)
            self._read_cache = (
                self._committed_version, self.store.graph.copy()
            )
        self._txn_owner = threading.get_ident()
        self.store.graph.start_journal()

    def commit(self) -> None:
        if not self.store.graph.journaling():
            raise TransactionError("no transaction is open")
        self.store.graph.commit_journal()
        self._txn_owner = None
        self._committed_version = self._version

    def rollback(self) -> None:
        if not self.store.graph.journaling():
            raise TransactionError("no transaction is open")
        self.store.graph.rollback_journal()
        self._txn_owner = None
        cache = self._read_cache
        # The journal restored exactly the pre-transaction state; if the
        # cache holds that state (begin() published it), relabel it with
        # the new committed version instead of forcing an O(graph) recopy.
        restored = cache is not None and cache[0] == self._committed_version
        self._version += 1
        self._committed_version = self._version
        if restored:
            self._read_cache = (self._committed_version, cache[1])

    def in_transaction(self) -> bool:
        return self.store.graph.journaling()

    # -- read path ------------------------------------------------------

    def _committed_graph(self) -> Graph:
        """The frozen committed graph readers evaluate against."""
        self._reads_active = True
        cache = self._read_cache
        if cache is not None and cache[0] == self._committed_version:
            return cache[1]
        # Stale cache with no open transaction (an open one would have
        # refreshed it in begin()): copy under the write-tier lock so the
        # copy never interleaves with a writer.
        with self._session_lock:
            cache = self._read_cache
            if cache is None or cache[0] != self._committed_version:
                cache = (self._committed_version, self.store.graph.copy())
                self._read_cache = cache
            return cache[1]

    def query_outcome(
        self, q: Union[str, Query], prefixes: Optional[PrefixMap] = None
    ) -> QueryOutcome:
        if (
            self.store.graph.journaling()
            and self._txn_owner == threading.get_ident()
        ):
            # Inside this thread's transaction: see our own writes.
            result = self.store.query(q, prefixes=prefixes)
        else:
            from ..sparql.engine import query as native_query

            result = native_query(self._committed_graph(), q, prefixes=prefixes)
        annotate(backend=self.name, used_sql=False)
        return QueryOutcome(result=result, used_sql=False)

    def dump(self) -> Graph:
        if (
            self.store.graph.journaling()
            and self._txn_owner == threading.get_ident()
        ):
            return self.store.graph.copy()
        return self._committed_graph().copy()

    # -- bookkeeping -----------------------------------------------------

    def state_version(self) -> int:
        return self._version


# ---------------------------------------------------------------------------
# shared helpers (previously private to the mediator)
# ---------------------------------------------------------------------------

def wrap_db_error(exc: Exception) -> TranslationError:
    if isinstance(exc, IntegrityError):
        return TranslationError(
            f"database rejected the update: {exc}",
            code=TranslationError.CONSTRAINT_VIOLATION,
            details={
                "table": exc.table,
                "attribute": exc.column,
                "constraint": exc.constraint,
            },
        )
    return TranslationError(
        f"database error: {exc}", code=TranslationError.CONSTRAINT_VIOLATION
    )


def safe_clear_order(mapping: DatabaseMapping, db: Database) -> List[str]:
    """Tables in parents-first order; CLEAR deletes in reverse."""
    from .sorting import topological_table_order

    return topological_table_order(mapping.all_table_names(), db.schema)
