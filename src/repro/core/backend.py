"""Pluggable execution backends behind the Session API.

A :class:`Backend` is the uniform surface a :class:`repro.core.session.
Session` drives: translate/execute one SPARQL/Update operation, run a
query, control a transaction, dump the store as RDF.  Two implementations
exist:

* :class:`RelationalBackend` — the paper's mediation pipeline: SPARQL is
  translated to SQL (Sections 5.1/5.2) and executed on the relational
  engine.  This is the backend the :class:`~repro.core.mediator.OntoAccess`
  facade uses.
* :class:`TripleStoreBackend` — the native in-memory triple store
  (:mod:`repro.sparql.engine`), the paper's comparison point and the
  semantic oracle of the equivalence suite.

Because both speak the same interface, equivalence tests and benchmarks
drive both through one :class:`Session`, and per-operation transaction
scope lives in exactly one place (the session), never in the backend.

Backends do NOT begin/commit transactions around operations themselves —
``execute_operation`` always runs inside a transaction the caller opened.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union

from ..errors import (
    DatabaseError,
    IntegrityError,
    TransactionError,
    TranslationError,
)
from ..rdb.engine import Database
from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..r3m.model import DatabaseMapping
from ..sparql.query_ast import Query
from ..sparql.update_ast import (
    Clear,
    DeleteData,
    InsertData,
    Modify,
    UpdateOperation,
)
from ..sql import ast
from ..sql.render import render
from .delete_data import translate_delete_data
from .dump import dump_database
from .feedback import confirmation_graph
from .insert_data import translate_insert_data
from .modify import bindings_for_pattern, plan_binding, plan_modify
from .query import QueryOutcome, execute_query, outcome_from_solutions

__all__ = [
    "Backend",
    "OperationResult",
    "RelationalBackend",
    "TripleStoreBackend",
    "UpdateResult",
    "operation_kind",
]


@dataclass
class OperationResult:
    """Outcome of one translated + executed update operation."""

    kind: str  # 'insert-data' | 'delete-data' | 'modify' | 'clear'
    statements: List[ast.Statement] = field(default_factory=list)
    rows_affected: int = 0
    bindings: int = 0
    #: True when a MODIFY evaluated its WHERE via translated SQL
    used_sql_select: Optional[bool] = None

    def sql(self) -> List[str]:
        return [render(s) for s in self.statements]


@dataclass
class UpdateResult:
    """Outcome of a whole SPARQL/Update request."""

    operations: List[OperationResult] = field(default_factory=list)

    def sql(self) -> List[str]:
        return [line for op in self.operations for line in op.sql()]

    def statements_executed(self) -> int:
        return sum(len(op.statements) for op in self.operations)

    def rows_affected(self) -> int:
        return sum(op.rows_affected for op in self.operations)

    def feedback(self) -> Graph:
        """The RDF confirmation message for this result."""
        return confirmation_graph(
            statements_executed=self.statements_executed(),
            operations=len(self.operations),
        )


def operation_kind(operation: UpdateOperation) -> str:
    if isinstance(operation, InsertData):
        return "insert-data"
    if isinstance(operation, DeleteData):
        return "delete-data"
    if isinstance(operation, Modify):
        return "modify"
    if isinstance(operation, Clear):
        return "clear"
    return type(operation).__name__.lower()


class Backend(abc.ABC):
    """Uniform execution surface over one storage engine.

    Subclasses must call ``super().__init__()``: the backend owns the
    reentrant lock that every :class:`~repro.core.session.Session` over
    it shares, because transaction state is backend-global and two
    sessions on one store must never interleave.
    """

    #: Short identifier used in diagnostics and test parametrization.
    name: str = "backend"

    def __init__(self) -> None:
        self._session_lock = threading.RLock()

    # -- write path ----------------------------------------------------

    @abc.abstractmethod
    def execute_operation(self, operation: UpdateOperation) -> OperationResult:
        """Execute one operation inside the caller's open transaction."""

    def translate_operation(
        self, operation: UpdateOperation
    ) -> List[ast.Statement]:
        """Dry-run translation (backends without SQL return nothing)."""
        return []

    def prepare_operation(self, operation: UpdateOperation) -> "PreparedOp":
        """A reusable handle for repeated execution of one operation."""
        return PreparedOp(self, operation)

    # -- transactions ---------------------------------------------------

    @abc.abstractmethod
    def begin(self) -> None: ...

    @abc.abstractmethod
    def commit(self) -> None: ...

    @abc.abstractmethod
    def rollback(self) -> None: ...

    @abc.abstractmethod
    def in_transaction(self) -> bool: ...

    # -- read path ------------------------------------------------------

    @abc.abstractmethod
    def query_outcome(
        self, q: Union[str, Query], prefixes: Optional[PrefixMap] = None
    ) -> QueryOutcome: ...

    def prepare_query(self, q: Query) -> "PreparedQueryPlan":
        return PreparedQueryPlan(self, q)

    @abc.abstractmethod
    def dump(self) -> Graph:
        """Materialize the whole store as an RDF graph."""

    # -- bookkeeping -----------------------------------------------------

    def state_version(self) -> Any:
        """Opaque token that changes whenever visible state may have
        changed; prepared operations key their caches on it."""
        return object()  # never equal: no caching by default

    def wrap_error(self, exc: Exception) -> Exception:
        """Map an engine-level error to the client-facing exception."""
        return exc


class PreparedOp:
    """Default prepared handle: re-executes the operation each time."""

    __slots__ = ("backend", "operation")

    def __init__(self, backend: Backend, operation: UpdateOperation) -> None:
        self.backend = backend
        self.operation = operation

    def execute(self) -> OperationResult:
        return self.backend.execute_operation(self.operation)


class PreparedQueryPlan:
    """Default prepared query: re-runs the full query path each time."""

    __slots__ = ("backend", "query")

    def __init__(self, backend: Backend, query: Query) -> None:
        self.backend = backend
        self.query = query

    def outcome(self) -> QueryOutcome:
        return self.backend.query_outcome(self.query)


# ---------------------------------------------------------------------------
# the mediation pipeline as a backend
# ---------------------------------------------------------------------------

class RelationalBackend(Backend):
    """The paper's mediator pipeline: SPARQL/Update → SQL → RDB."""

    name = "rdb"

    def __init__(
        self,
        db: Database,
        mapping: DatabaseMapping,
        optimize_modify: bool = True,
        force_query_fallback: bool = False,
    ) -> None:
        super().__init__()
        self.db = db
        self._mapping = mapping
        #: Bumped when the mapping object is replaced, so prepared
        #: translations keyed on the state version invalidate.  In-place
        #: mutation of a DatabaseMapping is not tracked — replace the
        #: mapping (or build a new mediator) to change it safely.
        self._mapping_generation = 0
        self.optimize_modify = optimize_modify
        self.force_query_fallback = force_query_fallback

    @property
    def mapping(self) -> DatabaseMapping:
        return self._mapping

    @mapping.setter
    def mapping(self, value: DatabaseMapping) -> None:
        self._mapping = value
        self._mapping_generation += 1

    # -- write path ----------------------------------------------------

    def translate_operation(
        self, operation: UpdateOperation
    ) -> List[ast.Statement]:
        if isinstance(operation, InsertData):
            return translate_insert_data(self.mapping, self.db, operation.triples)
        if isinstance(operation, DeleteData):
            return translate_delete_data(self.mapping, self.db, operation.triples)
        if isinstance(operation, Modify):
            plan = plan_modify(
                self.mapping,
                self.db,
                operation,
                optimize_redundant_deletes=self.optimize_modify,
                force_fallback=self.force_query_fallback,
            )
            return plan.all_statements()
        if isinstance(operation, Clear):
            return [
                ast.Delete(table=name)
                for name in reversed(safe_clear_order(self.mapping, self.db))
            ]
        raise TranslationError(
            f"unsupported operation {type(operation).__name__}",
            code=TranslationError.UNSUPPORTED,
        )

    def execute_operation(self, operation: UpdateOperation) -> OperationResult:
        if isinstance(operation, Modify):
            return self._execute_modify(operation)
        statements = self.translate_operation(operation)
        return self.run_statements(operation_kind(operation), statements)

    def run_statements(
        self, kind: str, statements: List[ast.Statement]
    ) -> OperationResult:
        """Execute already-translated statements (translation replay)."""
        # Copy: callers may mutate result.statements, and the prepared-op
        # replay cache holds the original list.
        result = OperationResult(kind=kind, statements=list(statements))
        for statement in statements:
            outcome = self.db.execute(statement)
            result.rows_affected += outcome.rowcount
        return result

    def _execute_modify(self, operation: Modify) -> OperationResult:
        """Algorithm 2: evaluate WHERE, then per binding translate and
        execute the DELETE DATA / INSERT DATA pair (lines 7–13)."""
        solutions, used_sql, _ = bindings_for_pattern(
            self.mapping,
            self.db,
            operation.where,
            force_fallback=self.force_query_fallback,
        )
        result = OperationResult(
            kind="modify", bindings=len(solutions), used_sql_select=used_sql
        )
        for solution in solutions:
            # Re-plan against the current state: earlier bindings may
            # have changed rows this binding touches.
            step = plan_binding(
                self.mapping,
                self.db,
                operation,
                solution,
                optimize_redundant_deletes=self.optimize_modify,
            )
            for statement in step.all_statements():
                outcome = self.db.execute(statement)
                result.rows_affected += outcome.rowcount
                result.statements.append(statement)
        return result

    def prepare_operation(self, operation: UpdateOperation) -> PreparedOp:
        return _PreparedRdbOp(self, operation)

    # -- transactions ---------------------------------------------------

    def begin(self) -> None:
        self.db.begin()

    def commit(self) -> None:
        self.db.commit()

    def rollback(self) -> None:
        self.db.rollback()

    def in_transaction(self) -> bool:
        return self.db.in_transaction()

    # -- read path ------------------------------------------------------

    def query_outcome(
        self, q: Union[str, Query], prefixes: Optional[PrefixMap] = None
    ) -> QueryOutcome:
        return execute_query(
            self.mapping,
            self.db,
            q,
            prefixes=prefixes,
            force_fallback=self.force_query_fallback,
        )

    def prepare_query(self, q: Query) -> PreparedQueryPlan:
        return _PreparedRdbQuery(self, q)

    def dump(self) -> Graph:
        return dump_database(self.mapping, self.db)

    # -- bookkeeping -----------------------------------------------------

    def state_version(self) -> Tuple[int, int, int]:
        return (
            self._mapping_generation,
            self.db.schema_version,
            self.db.data_version,
        )

    def query_state_version(self) -> Tuple[int, int]:
        """What prepared query translations depend on: mapping + schema
        (pattern translation never reads row data)."""
        return (self._mapping_generation, self.db.schema_version)

    def wrap_error(self, exc: Exception) -> Exception:
        if isinstance(exc, (IntegrityError, DatabaseError)):
            return wrap_db_error(exc)
        return exc


class _PreparedRdbOp(PreparedOp):
    """Prepared relational operation with a translation-replay cache.

    Translation is a pure function of (mapping, database state); the
    database state is identified by :meth:`Database.state_version`.  As
    long as the version is unchanged since the last translation, the
    cached SQL statements are replayed without re-running Algorithm 1 —
    the steady state for repeated idempotent operations.  Any change
    (including the replay itself affecting rows) bumps the version and
    forces a fresh translation, so semantics never drift from the
    unprepared path.

    MODIFY interleaves translation and execution per binding (Algorithm
    2), so it is never replayed from cache — only its parse is amortized.
    """

    __slots__ = ("_cached",)

    def __init__(self, backend: RelationalBackend, operation: UpdateOperation) -> None:
        super().__init__(backend, operation)
        #: (state version at translation, translated statements) or None
        self._cached: Optional[Tuple[Any, List[ast.Statement]]] = None

    def execute(self) -> OperationResult:
        backend = self.backend
        if isinstance(self.operation, Modify):
            return backend.execute_operation(self.operation)
        kind = operation_kind(self.operation)
        version = backend.state_version()
        if self._cached is not None and self._cached[0] == version:
            return backend.run_statements(kind, self._cached[1])
        statements = backend.translate_operation(self.operation)
        self._cached = (version, statements)
        return backend.run_statements(kind, statements)


class _PreparedRdbQuery(PreparedQueryPlan):
    """Prepared relational query: the SPARQL→SQL pattern translation is
    computed once per (mapping, schema) version (it never depends on row
    data) and re-executed against current data on every call; executions
    share the planner's compiled plan for the translated SELECT."""

    __slots__ = ("_version", "_translated", "_sql", "_unsupported")

    def __init__(self, backend: RelationalBackend, query: Query) -> None:
        super().__init__(backend, query)
        self._version: Optional[Tuple[int, int]] = None
        self._translated = None
        self._sql: Optional[str] = None
        self._unsupported = False

    def outcome(self) -> QueryOutcome:
        backend = self.backend
        if backend.force_query_fallback:
            return backend.query_outcome(self.query)
        version = backend.query_state_version()
        if self._version != version:
            from ..errors import UnsupportedPatternError
            from .select_translate import translate_pattern

            self._version = version
            try:
                self._translated = translate_pattern(
                    backend.mapping, backend.db, self.query.where
                )
                self._sql = self._translated.sql()  # render once, not per call
                self._unsupported = False
            except UnsupportedPatternError:
                self._translated = None
                self._sql = None
                self._unsupported = True
        if self._unsupported:
            # Known-untranslatable for this schema: go straight to the
            # dump evaluation instead of re-attempting translation.
            from ..sparql.algebra import evaluate_pattern
            from .dump import dump_database

            graph = dump_database(backend.mapping, backend.db)
            return outcome_from_solutions(
                self.query,
                evaluate_pattern(graph, self.query.where),
                used_sql=False,
            )
        return outcome_from_solutions(
            self.query,
            self._translated.execute(),
            used_sql=True,
            select_sql=self._sql,
        )


# ---------------------------------------------------------------------------
# the native triple store as a backend
# ---------------------------------------------------------------------------

class TripleStoreBackend(Backend):
    """Native in-memory triple store behind the same Session interface.

    Wraps a :class:`~repro.baselines.triplestore.NativeTripleStore` (or
    its mapping-aware subclass, the equivalence oracle).  Transactions use
    the graph's undo journal: ``begin`` starts recording inverse
    operations, ``rollback`` replays them — O(changes), not O(graph).
    """

    name = "triplestore"

    def __init__(self, store) -> None:
        super().__init__()
        self.store = store
        self._version = 0

    @property
    def graph(self) -> Graph:
        return self.store.graph

    # -- write path ----------------------------------------------------

    def execute_operation(self, operation: UpdateOperation) -> OperationResult:
        added, removed = self.store.apply_operation(operation)
        self._version += 1
        return OperationResult(
            kind=operation_kind(operation), rows_affected=added + removed
        )

    # -- transactions ---------------------------------------------------
    # Error contract mirrors the relational engine's transaction control
    # (TransactionError on misuse) so backends stay swappable.

    def begin(self) -> None:
        if self.store.graph.journaling():
            raise TransactionError("a transaction is already open")
        self.store.graph.start_journal()

    def commit(self) -> None:
        if not self.store.graph.journaling():
            raise TransactionError("no transaction is open")
        self.store.graph.commit_journal()

    def rollback(self) -> None:
        if not self.store.graph.journaling():
            raise TransactionError("no transaction is open")
        self.store.graph.rollback_journal()
        self._version += 1

    def in_transaction(self) -> bool:
        return self.store.graph.journaling()

    # -- read path ------------------------------------------------------

    def query_outcome(
        self, q: Union[str, Query], prefixes: Optional[PrefixMap] = None
    ) -> QueryOutcome:
        return QueryOutcome(
            result=self.store.query(q, prefixes=prefixes), used_sql=False
        )

    def dump(self) -> Graph:
        return self.store.graph.copy()

    # -- bookkeeping -----------------------------------------------------

    def state_version(self) -> int:
        return self._version


# ---------------------------------------------------------------------------
# shared helpers (previously private to the mediator)
# ---------------------------------------------------------------------------

def wrap_db_error(exc: Exception) -> TranslationError:
    if isinstance(exc, IntegrityError):
        return TranslationError(
            f"database rejected the update: {exc}",
            code=TranslationError.CONSTRAINT_VIOLATION,
            details={
                "table": exc.table,
                "attribute": exc.column,
                "constraint": exc.constraint,
            },
        )
    return TranslationError(
        f"database error: {exc}", code=TranslationError.CONSTRAINT_VIOLATION
    )


def safe_clear_order(mapping: DatabaseMapping, db: Database) -> List[str]:
    """Tables in parents-first order; CLEAR deletes in reverse."""
    from .sorting import topological_table_order

    return topological_table_order(mapping.all_table_names(), db.schema)
