"""SPARQL queries over the relational database (the read path).

The paper's prototype had query support "under development" (Section 6);
this module completes it.  SELECT/ASK WHERE patterns inside the
translatable fragment run as a single translated SQL statement; everything
else falls back to evaluating over the RDB dump, so all of SPARQL keeps
working (translation is an optimization, never a semantic restriction).

The helpers are split so the prepared-query path
(:class:`repro.core.session.PreparedQuery`) can translate a pattern once
and re-execute it many times: pattern translation depends only on the
mapping and the schema, never on row data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..errors import UnsupportedPatternError
from ..rdb.engine import Database
from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..r3m.model import DatabaseMapping
from ..sparql.algebra import evaluate_pattern, instantiate
from ..sparql.engine import SelectResult, apply_select_modifiers
from ..sparql.query_ast import AskQuery, ConstructQuery, Query, SelectQuery
from ..sparql.query_parser import parse_query
from .dump import dump_database
from .select_translate import translate_pattern

__all__ = ["QueryOutcome", "execute_query", "outcome_from_solutions"]


@dataclass
class QueryOutcome:
    """A query result plus how it was obtained (for benchmarks/tests)."""

    result: Union[SelectResult, bool, Graph]
    used_sql: bool
    select_sql: Optional[str] = None


def outcome_from_solutions(
    q: Query, solutions, used_sql: bool, select_sql: Optional[str] = None
) -> QueryOutcome:
    """Shape raw WHERE solutions into the query-form-specific result."""
    if isinstance(q, SelectQuery):
        return QueryOutcome(
            result=apply_select_modifiers(q, solutions),
            used_sql=used_sql,
            select_sql=select_sql,
        )
    if isinstance(q, AskQuery):
        return QueryOutcome(
            result=bool(solutions), used_sql=used_sql, select_sql=select_sql
        )
    if isinstance(q, ConstructQuery):
        constructed = Graph()
        for solution in solutions:
            constructed.add_all(instantiate(q.template, solution))
        return QueryOutcome(
            result=constructed, used_sql=used_sql, select_sql=select_sql
        )
    raise TypeError(f"unknown query type {type(q).__name__}")


def execute_query(
    mapping: DatabaseMapping,
    db: Database,
    q: Union[str, Query],
    prefixes: Optional[PrefixMap] = None,
    force_fallback: bool = False,
) -> QueryOutcome:
    """Run a SPARQL query against the mapped database."""
    if isinstance(q, str):
        q = parse_query(q, prefixes=prefixes)

    if not force_fallback:
        try:
            # Under the planner lock: DDL holds it across its catalog
            # mutation, so translation (pure schema/mapping reads, now on
            # the lock-free read tier) never sees a half-applied change.
            with db.planner.lock:
                translated = translate_pattern(mapping, db, q.where)
            return outcome_from_solutions(
                q, translated.execute(), used_sql=True, select_sql=translated.sql()
            )
        except UnsupportedPatternError:
            pass

    graph = dump_database(mapping, db)
    solutions = evaluate_pattern(graph, q.where)
    return outcome_from_solutions(q, solutions, used_sql=False)
