"""RDB → RDF dump: materialize the mapped database as a graph.

Implements the read direction of the mapping (paper Section 4): "each row
in a database table is mapped to a set of RDF triples.  One triple
identifies the entity ... as an instance of the class the corresponding
table is mapped to.  Then, there is in general one triple for each table
attribute that relates the instance to a data value or another instance."
Link-table rows become single object-property triples.

The dump serves three roles: the read-access path for small databases, the
fallback evaluation target for SPARQL patterns outside the translatable
fragment, and the *oracle* in equivalence tests (mediated updates must
leave the database in a state whose dump matches the native triple store).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..rdb.engine import Database
from ..rdb.storage import TableData
from ..rdf.graph import Graph
from ..rdf.namespace import RDF
from ..rdf.terms import Triple
from ..r3m.model import DatabaseMapping, LinkTableMapping, TableMapping
from .common import sql_value_to_term

__all__ = ["dump_database", "dump_table", "entity_uri"]


def dump_database(mapping: DatabaseMapping, db: Database) -> Graph:
    """Materialize every mapped table into a fresh graph.

    Rows are read through :meth:`~repro.rdb.engine.Database.read_view`:
    the committed snapshot for concurrent readers, the working store for
    the thread owning an open transaction — so a fallback-evaluated query
    sees exactly the same state a translated one would.
    """
    tables = db.read_view()
    graph = Graph()
    for table_mapping in mapping.tables.values():
        for triple in dump_table(mapping, db, table_mapping, tables=tables):
            graph.add(triple)
    for link in mapping.link_tables.values():
        for triple in _dump_link_table(mapping, db, link, tables=tables):
            graph.add(triple)
    return graph


def dump_table(
    mapping: DatabaseMapping,
    db: Database,
    table_mapping: TableMapping,
    tables: Optional[Dict[str, TableData]] = None,
) -> Iterator[Triple]:
    """Yield the triples of one table's rows."""
    schema_table = db.table(table_mapping.table_name)
    if tables is None:
        tables = db.read_view()
    table_data = tables[table_mapping.table_name]
    for _, row in table_data.scan():
        uri = table_mapping.uri_pattern.format(row)
        yield Triple(uri, RDF.type, table_mapping.maps_to_class)
        for attribute in table_mapping.mapped_attributes():
            column = schema_table.column(attribute.attribute_name)
            term = sql_value_to_term(
                mapping, table_mapping, attribute, row.get(attribute.attribute_name), column
            )
            if term is not None:
                yield Triple(uri, attribute.property, term)


def _dump_link_table(
    mapping: DatabaseMapping,
    db: Database,
    link: LinkTableMapping,
    tables: Optional[Dict[str, TableData]] = None,
) -> Iterator[Triple]:
    subject_table = mapping.table(link.subject_table())
    object_table = mapping.table(link.object_table())
    if tables is None:
        tables = db.read_view()
    table_data = tables[link.table_name]
    subject_attr = link.subject_attribute.attribute_name
    object_attr = link.object_attribute.attribute_name
    subject_key = subject_table.uri_pattern.attributes[0]
    object_key = object_table.uri_pattern.attributes[0]
    for _, row in table_data.scan():
        s_value = row.get(subject_attr)
        o_value = row.get(object_attr)
        if s_value is None or o_value is None:
            continue
        yield Triple(
            subject_table.uri_pattern.format({subject_key: s_value}),
            link.property,
            object_table.uri_pattern.format({object_key: o_value}),
        )


def entity_uri(
    mapping: DatabaseMapping, table_name: str, key_value
) -> Optional[object]:
    """Mint the instance URI for a row key (convenience for callers)."""
    table_mapping = mapping.tables.get(table_name)
    if table_mapping is None:
        return None
    attr = table_mapping.uri_pattern.attributes[0]
    return table_mapping.uri_pattern.format({attr: key_value})
