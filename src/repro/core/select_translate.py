"""SPARQL SELECT → SQL SELECT translation over an R3M mapping.

Algorithm 2 (MODIFY) needs its WHERE clause evaluated against the
relational data: "The WHERE part is used to create a SPARQL SELECT query
that retrieves the data needed for the DELETE and INSERT templates.  It is
translated to SQL and evaluated on the relational data."  This module
implements that translation for the fragment the mapping approach admits
(Angles & Gutierrez's expressivity result guarantees the full language is
translatable in principle; OntoAccess translates the mapped fragment and
the mediator falls back to dump-based evaluation for the rest).

Translatable fragment:

* basic graph patterns whose subjects resolve to mapped tables (via
  ``rdf:type`` triples, property usage, or concrete instance URIs);
* data- and object-property triples, including joins through foreign keys
  and N:M link tables;
* ``OPTIONAL`` groups of property triples over already-bound subjects;
* ``FILTER`` comparisons pushed into SQL where possible; all residual
  filters are applied to the decoded bindings afterwards, so filter
  semantics never restrict the fragment.

Everything else (UNION, variable predicates, unmappable subjects) raises
:class:`~repro.errors.UnsupportedPatternError`; callers fall back to
evaluating against :func:`repro.core.dump.dump_database`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import TranslationError, UnsupportedPatternError
from ..rdb.engine import Database
from ..rdf.namespace import RDF
from ..rdf.terms import BNode, Literal, Term, Triple, URIRef, Variable
from ..r3m.model import AttributeMapping, DatabaseMapping, TableMapping
from ..sparql import algebra_ast as alg
from ..sparql.algebra import Solution
from ..sparql.expressions import filter_accepts
from ..sql import ast
from .common import identify_entity, literal_for_column, term_to_sql_value

__all__ = ["TranslatedSelect", "translate_pattern", "SelectTranslator"]


@dataclass
class _BindingSite:
    """Where a variable's value lives in the SQL result."""

    alias: str
    column: str
    kind: str  # 'data' | 'object' | 'subject'
    table: TableMapping  # for 'object': the referenced table; else own table
    select_index: int = -1
    #: lexical transform for URI-valued data attributes (foaf:mbox)
    value_pattern: Optional[object] = None


@dataclass
class TranslatedSelect:
    """A translated pattern: SQL + the recipe to decode rows to bindings."""

    select: ast.Select
    sites: Dict[Variable, _BindingSite]
    post_filters: Tuple[alg.Expr, ...]
    mapping: DatabaseMapping
    db: Database
    #: per-variable (index, decoder) pairs, built once on first execute so
    #: row decoding does no catalog lookups in the per-row loop
    _decoders: Optional[List[Tuple[Variable, int, Any]]] = None

    def sql(self) -> str:
        from ..sql.render import render

        return render(self.select)

    def execute(self) -> List[Solution]:
        """Run the SQL and decode rows into SPARQL solutions."""
        result = self.db.execute(self.select)
        decoders = self._site_decoders()
        post_filters = self.post_filters
        solutions: List[Solution] = []
        for row in result.rows:
            solution: Solution = {}
            for var, index, decode in decoders:
                value = row[index]
                if value is None:
                    continue  # OPTIONAL left the variable unbound
                solution[var] = decode(value)
            if all(filter_accepts(f, solution) for f in post_filters):
                solutions.append(solution)
        return solutions

    def _site_decoders(self) -> List[Tuple[Variable, int, Any]]:
        if self._decoders is None:
            decoders: List[Tuple[Variable, int, Any]] = []
            for var, site in self.sites.items():
                decoders.append(
                    (var, site.select_index, self._decoder_for(site))
                )
            self._decoders = decoders
        return self._decoders

    def _decoder_for(self, site: _BindingSite):
        if site.kind == "data":
            if site.value_pattern is not None:
                pattern = site.value_pattern
                attribute = pattern.attributes[0]
                return lambda value: pattern.format({attribute: value})
            sql_type = self.db.table(site.table.table_name).column(
                site.column
            ).sql_type
            return lambda value: literal_for_column(sql_type, value)
        # 'object' and 'subject' both mint instance URIs
        pattern = site.table.uri_pattern
        attribute = pattern.attributes[0]
        return lambda value: pattern.format({attribute: value})



def translate_pattern(
    mapping: DatabaseMapping, db: Database, pattern: alg.GroupPattern
) -> TranslatedSelect:
    """Translate a group graph pattern; raises UnsupportedPatternError."""
    return SelectTranslator(mapping, db).translate(pattern)


@dataclass
class _Node:
    """One table instance participating in the query (a future FROM/JOIN)."""

    alias: str
    table_name: str
    join_kind: str = "INNER"  # 'INNER' | 'LEFT'
    local_conditions: List[ast.Expression] = field(default_factory=list)
    #: equality links to earlier nodes: (my column, other alias, other column)
    links: List[Tuple[str, str, str]] = field(default_factory=list)


class SelectTranslator:
    """Single-use translator for one pattern."""

    def __init__(self, mapping: DatabaseMapping, db: Database) -> None:
        self.mapping = mapping
        self.db = db
        self.nodes: Dict[str, _Node] = {}
        self.node_order: List[str] = []
        self.subject_alias: Dict[Term, str] = {}
        self.subject_table: Dict[Term, TableMapping] = {}
        self.sites: Dict[Variable, _BindingSite] = {}
        self.extra_conditions: List[ast.Expression] = []
        self.post_filters: List[alg.Expr] = []
        self._alias_counter = 0

    # ------------------------------------------------------------------

    def translate(self, pattern: alg.GroupPattern) -> TranslatedSelect:
        required, optionals, filters = self._partition(pattern)
        if not required:
            raise UnsupportedPatternError("empty basic graph pattern")
        self._assign_subject_tables(required)
        for triple in required:
            self._translate_triple(triple, optional=False)
        for group in optionals:
            self._translate_optional(group)
        self._push_down_filters(filters)
        select = self._build_select()
        return TranslatedSelect(
            select=select,
            sites=self.sites,
            post_filters=tuple(self.post_filters),
            mapping=self.mapping,
            db=self.db,
        )

    # -- structure -------------------------------------------------------

    def _partition(
        self, pattern: alg.GroupPattern
    ) -> Tuple[List[Triple], List[alg.GroupPattern], List[alg.Expr]]:
        required: List[Triple] = []
        optionals: List[alg.GroupPattern] = []
        filters: List[alg.Expr] = []
        for element in pattern.elements:
            if isinstance(element, alg.TriplePattern):
                required.append(element.triple)
            elif isinstance(element, alg.Filter):
                filters.append(element.expression)
            elif isinstance(element, alg.Optional_):
                optionals.append(element.pattern)
            elif isinstance(element, alg.GroupPattern):
                sub_r, sub_o, sub_f = self._partition(element)
                required.extend(sub_r)
                optionals.extend(sub_o)
                filters.extend(sub_f)
            elif isinstance(element, alg.Union):
                raise UnsupportedPatternError(
                    "UNION is outside the SQL-translatable fragment"
                )
            else:
                raise UnsupportedPatternError(
                    f"unsupported pattern element {type(element).__name__}"
                )
        return required, optionals, filters

    def _assign_subject_tables(self, triples: List[Triple]) -> None:
        """Determine the table of every subject term (step: identifyTable)."""
        subjects: List[Term] = []
        for triple in triples:
            if triple.subject not in subjects:
                subjects.append(triple.subject)

        # candidate tables per subject
        for subject in subjects:
            candidates = self._candidate_tables(subject, triples)
            if len(candidates) != 1:
                label = subject.n3() if isinstance(subject, Term) else repr(subject)
                raise UnsupportedPatternError(
                    f"cannot uniquely determine the table of subject {label}: "
                    f"{sorted(candidates) or 'no candidates'}"
                )
            table = self.mapping.table(candidates.pop())
            alias = self._new_alias()
            self.subject_alias[subject] = alias
            self.subject_table[subject] = table
            node = _Node(alias=alias, table_name=table.table_name)
            self.nodes[alias] = node
            self.node_order.append(alias)
            self._bind_subject(subject, table, node)

    def _candidate_tables(
        self, subject: Term, triples: List[Triple]
    ) -> Set[str]:
        """Candidate table *names* for a subject (names are hashable)."""
        if isinstance(subject, URIRef):
            try:
                entity = identify_entity(self.mapping, self.db, subject)
            except TranslationError as exc:
                raise UnsupportedPatternError(str(exc)) from exc
            return {entity.table.table_name}

        candidates: Optional[Set[str]] = None

        def intersect(tables: Set[str]) -> None:
            nonlocal candidates
            candidates = tables if candidates is None else candidates & tables

        for triple in triples:
            if triple.subject != subject:
                continue
            predicate = triple.predicate
            if isinstance(predicate, Variable):
                raise UnsupportedPatternError(
                    "variable predicates are outside the translatable fragment"
                )
            if predicate == RDF.type:
                if isinstance(triple.object, URIRef):
                    table = self.mapping.table_for_class(triple.object)
                    if table is None:
                        raise UnsupportedPatternError(
                            f"class {triple.object} is not mapped"
                        )
                    intersect({table.table_name})
                continue
            link = self.mapping.link_for_property(predicate)
            if link is not None:
                intersect({link.subject_table()})
                continue
            tables = {
                t.table_name
                for t, _ in self.mapping.tables_for_property(predicate)
            }
            if not tables:
                raise UnsupportedPatternError(
                    f"property {predicate} is not mapped"
                )
            intersect(tables)
        return candidates or set()

    def _bind_subject(
        self, subject: Term, table: TableMapping, node: _Node
    ) -> None:
        schema_table = self.db.table(table.table_name)
        if len(schema_table.primary_key) != 1:
            raise UnsupportedPatternError(
                f"table {table.table_name!r} needs a single-column primary key"
            )
        pk = schema_table.primary_key[0]
        if isinstance(subject, URIRef):
            entity = identify_entity(self.mapping, self.db, subject)
            node.local_conditions.append(
                ast.BinaryOp(
                    "=",
                    ast.ColumnRef(pk, node.alias),
                    ast.Literal(entity.key_values[pk]),
                )
            )
        elif isinstance(subject, Variable):
            if subject not in self.sites:
                self.sites[subject] = _BindingSite(
                    alias=node.alias, column=pk, kind="subject", table=table
                )
        # BNodes: non-distinguished — no binding, no condition.

    # -- triples ------------------------------------------------------------

    def _translate_triple(self, triple: Triple, optional: bool) -> None:
        subject, predicate, obj = triple
        if predicate == RDF.type:
            return  # consumed during table assignment
        alias = self.subject_alias.get(subject)
        if alias is None:
            raise UnsupportedPatternError(
                f"subject {subject.n3()} appears only inside OPTIONAL"
            )
        node = self.nodes[alias]
        table = self.subject_table[subject]

        link = self.mapping.link_for_property(predicate)
        if link is not None:
            self._translate_link_triple(triple, node, link, optional)
            return

        attribute = table.attribute_for_property(predicate)
        if attribute is None:
            raise UnsupportedPatternError(
                f"property {predicate} is not mapped for table "
                f"{table.table_name!r}"
            )
        column_ref = ast.ColumnRef(attribute.attribute_name, alias)

        if isinstance(obj, Variable):
            self._bind_object_variable(
                obj, node, table, attribute, column_ref, optional
            )
        elif isinstance(obj, BNode):
            node.local_conditions.append(ast.IsNull(column_ref, negated=True))
        else:
            value = term_to_sql_value(
                self.mapping, self.db, table, attribute, obj
            )
            node.local_conditions.append(
                ast.BinaryOp("=", column_ref, ast.Literal(value))
            )

    def _bind_object_variable(
        self,
        var: Variable,
        node: _Node,
        table: TableMapping,
        attribute: AttributeMapping,
        column_ref: ast.ColumnRef,
        optional: bool,
    ) -> None:
        if var in self.subject_alias and attribute.is_object_property:
            # join: this FK must equal the other subject's primary key
            other_alias = self.subject_alias[var]
            other_table = self.subject_table[var]
            if other_table.table_name != attribute.references():
                raise UnsupportedPatternError(
                    f"variable ?{var.name} is used as an instance of "
                    f"{other_table.table_name!r} but property "
                    f"{attribute.property} references {attribute.references()!r}"
                )
            other_pk = self.db.table(other_table.table_name).primary_key[0]
            node.links.append(
                (attribute.attribute_name, other_alias, other_pk)
            )
            return

        existing = self.sites.get(var)
        if existing is not None and existing.select_index == -1:
            # variable already bound at another site: equality condition
            self.extra_conditions.append(
                ast.BinaryOp(
                    "=",
                    column_ref,
                    ast.ColumnRef(existing.column, existing.alias),
                )
            )
            if not optional:
                node.local_conditions.append(
                    ast.IsNull(column_ref, negated=True)
                )
            return

        if attribute.is_object_property:
            site = _BindingSite(
                alias=node.alias,
                column=attribute.attribute_name,
                kind="object",
                table=self.mapping.table(attribute.references()),
            )
        else:
            site = _BindingSite(
                alias=node.alias,
                column=attribute.attribute_name,
                kind="data",
                table=table,
                value_pattern=attribute.value_pattern,
            )
        self.sites[var] = site
        if not optional:
            node.local_conditions.append(ast.IsNull(column_ref, negated=True))

    def _translate_link_triple(
        self, triple: Triple, subject_node: _Node, link, optional: bool
    ) -> None:
        obj = triple.object
        link_alias = self._new_alias()
        link_node = _Node(
            alias=link_alias,
            table_name=link.table_name,
            join_kind="LEFT" if optional else "INNER",
        )
        self.nodes[link_alias] = link_node
        self.node_order.append(link_alias)

        subject_pk = self.db.table(
            self.subject_table[triple.subject].table_name
        ).primary_key[0]
        link_node.links.append(
            (link.subject_attribute.attribute_name, subject_node.alias, subject_pk)
        )

        object_attr = link.object_attribute.attribute_name
        object_table = self.mapping.table(link.object_table())
        if isinstance(obj, Variable):
            if obj in self.subject_alias:
                other_alias = self.subject_alias[obj]
                other_pk = self.db.table(
                    self.subject_table[obj].table_name
                ).primary_key[0]
                link_node.links.append((object_attr, other_alias, other_pk))
            elif obj in self.sites:
                existing = self.sites[obj]
                self.extra_conditions.append(
                    ast.BinaryOp(
                        "=",
                        ast.ColumnRef(object_attr, link_alias),
                        ast.ColumnRef(existing.column, existing.alias),
                    )
                )
            else:
                self.sites[obj] = _BindingSite(
                    alias=link_alias,
                    column=object_attr,
                    kind="object",
                    table=object_table,
                )
        elif isinstance(obj, URIRef):
            raw = object_table.uri_pattern.match(obj)
            if raw is None:
                raise UnsupportedPatternError(
                    f"object {obj.value} does not match the uriPattern of "
                    f"{link.object_table()!r}"
                )
            from .common import coerce_pattern_values

            coerced = coerce_pattern_values(self.db, object_table, raw, obj)
            pk = self.db.table(link.object_table()).primary_key[0]
            link_node.local_conditions.append(
                ast.BinaryOp(
                    "=",
                    ast.ColumnRef(object_attr, link_alias),
                    ast.Literal(coerced[pk]),
                )
            )
        else:
            raise UnsupportedPatternError(
                f"link property {link.property} with literal object"
            )

    # -- optional groups ----------------------------------------------------

    def _translate_optional(self, group: alg.GroupPattern) -> None:
        if group.filters() or group.optionals() or group.unions():
            raise UnsupportedPatternError(
                "nested FILTER/OPTIONAL/UNION inside OPTIONAL is unsupported"
            )
        for tp in group.triple_patterns():
            triple = tp.triple
            if triple.subject not in self.subject_alias:
                raise UnsupportedPatternError(
                    "OPTIONAL subjects must be bound by the required pattern"
                )
            if triple.predicate == RDF.type:
                continue
            self._translate_triple(triple, optional=True)

    # -- filters -----------------------------------------------------------------

    def _push_down_filters(self, filters: List[alg.Expr]) -> None:
        for expr in filters:
            translated = self._try_translate_filter(expr)
            if translated is not None:
                self.extra_conditions.append(translated)
            else:
                self.post_filters.append(expr)

    def _try_translate_filter(self, expr: alg.Expr) -> Optional[ast.Expression]:
        """Translate simple comparisons/conjunctions to SQL; None = keep in
        Python."""
        if isinstance(expr, alg.BoolOp) and expr.op == "&&":
            left = self._try_translate_filter(expr.left)
            right = self._try_translate_filter(expr.right)
            if left is not None and right is not None:
                return ast.BinaryOp("AND", left, right)
            # partial pushdown of a conjunction is sound: push what we can
            if left is not None:
                self.post_filters.append(expr.right)
                return left
            if right is not None:
                self.post_filters.append(expr.left)
                return right
            return None
        if isinstance(expr, alg.Comparison):
            left = self._operand_to_sql(expr.left)
            right = self._operand_to_sql(expr.right)
            if left is None or right is None:
                return None
            op = "<>" if expr.op == "!=" else expr.op
            return ast.BinaryOp(op, left, right)
        return None

    def _operand_to_sql(self, expr: alg.Expr) -> Optional[ast.Expression]:
        if isinstance(expr, alg.TermExpr):
            term = expr.term
            if isinstance(term, Variable):
                site = self.sites.get(term)
                if site is None or site.kind != "data":
                    return None
                return ast.ColumnRef(site.column, site.alias)
            if isinstance(term, Literal):
                return ast.Literal(term.to_python())
            return None
        return None

    # -- assembly ------------------------------------------------------------------

    def _new_alias(self) -> str:
        alias = f"t{self._alias_counter}"
        self._alias_counter += 1
        return alias

    def _build_select(self) -> ast.Select:
        ordered = self._order_nodes()
        first = ordered[0]
        joins: List[ast.Join] = []
        where: List[ast.Expression] = list(first.local_conditions)
        placed = {first.alias}

        for node in ordered[1:]:
            on_parts: List[ast.Expression] = []
            for my_col, other_alias, other_col in node.links:
                clause = ast.BinaryOp(
                    "=",
                    ast.ColumnRef(my_col, node.alias),
                    ast.ColumnRef(other_col, other_alias),
                )
                if other_alias in placed:
                    on_parts.append(clause)
                else:
                    where.append(clause)
            condition = _conjoin(on_parts)
            if node.join_kind == "LEFT":
                if condition is None:
                    raise UnsupportedPatternError(
                        "LEFT JOIN without a join condition"
                    )
                condition = _conjoin(
                    [condition, *node.local_conditions]
                )
                joins.append(
                    ast.Join(
                        table=ast.TableRef(node.table_name, node.alias),
                        condition=condition,
                        kind="LEFT",
                    )
                )
            else:
                if condition is None:
                    joins.append(
                        ast.Join(
                            table=ast.TableRef(node.table_name, node.alias),
                            condition=None,
                            kind="CROSS",
                        )
                    )
                else:
                    joins.append(
                        ast.Join(
                            table=ast.TableRef(node.table_name, node.alias),
                            condition=condition,
                            kind="INNER",
                        )
                    )
                where.extend(node.local_conditions)
            placed.add(node.alias)

        where.extend(self.extra_conditions)

        items: List[ast.SelectItem] = []
        for index, (var, site) in enumerate(self.sites.items()):
            site.select_index = index
            items.append(
                ast.SelectItem(
                    ast.ColumnRef(site.column, site.alias), alias=f"v{index}"
                )
            )
        if not items:
            # ASK-style pattern with no variables: select a constant
            items.append(ast.SelectItem(ast.Literal(1), alias="one"))

        return ast.Select(
            items=tuple(items),
            table=ast.TableRef(first.table_name, first.alias),
            joins=tuple(joins),
            where=_conjoin(where),
        )

    def _order_nodes(self) -> List[_Node]:
        """Order nodes so each (when possible) links to an earlier one."""
        remaining = [self.nodes[a] for a in self.node_order]
        if not remaining:
            raise UnsupportedPatternError("no tables in pattern")
        ordered = [remaining.pop(0)]
        placed = {ordered[0].alias}
        while remaining:
            progressed = False
            for i, node in enumerate(remaining):
                link_aliases = {other for _, other, _ in node.links}
                reverse_links = any(
                    any(other == node.alias for _, other, _ in candidate.links)
                    for candidate in ordered
                )
                if link_aliases & placed or reverse_links:
                    ordered.append(remaining.pop(i))
                    placed.add(node.alias)
                    progressed = True
                    break
            if not progressed:
                node = remaining.pop(0)  # disconnected: cross join
                ordered.append(node)
                placed.add(node.alias)
        return self._fix_link_direction(ordered)

    def _fix_link_direction(self, ordered: List[_Node]) -> List[_Node]:
        """Ensure every equality lives on the *later* node of its pair."""
        position = {node.alias: i for i, node in enumerate(ordered)}
        for node in ordered:
            kept: List[Tuple[str, str, str]] = []
            for my_col, other_alias, other_col in node.links:
                if position[other_alias] < position[node.alias]:
                    kept.append((my_col, other_alias, other_col))
                else:
                    other = self.nodes[other_alias]
                    other.links.append((other_col, node.alias, my_col))
            node.links = kept
        return ordered


def _conjoin(parts: Sequence[ast.Expression]) -> Optional[ast.Expression]:
    condition: Optional[ast.Expression] = None
    for part in parts:
        condition = part if condition is None else ast.BinaryOp("AND", condition, part)
    return condition
