"""OntoAccess core: SPARQL/Update → SQL DML translation (paper Sections 5–6).

Public API::

    from repro.core import OntoAccess
    from repro.core import translate_insert_data, translate_delete_data
    from repro.core import dump_database, execute_query
"""

from .backend import Backend, RelationalBackend, TripleStoreBackend
from .common import EntityRef, group_by_subject, identify_entity, literal_for_column
from .delete_data import translate_delete_data
from .dump import dump_database, dump_table
from .feedback import confirmation_graph, error_graph
from .insert_data import translate_insert_data
from .mediator import OntoAccess, OperationResult, UpdateResult
from .modify import ModifyPlan, bindings_for_pattern, plan_binding, plan_modify
from .query import QueryOutcome, execute_query
from .select_translate import TranslatedSelect, translate_pattern
from .session import PreparedQuery, PreparedUpdate, Session
from .sorting import sort_statements, topological_table_order

__all__ = [
    "Backend",
    "EntityRef",
    "ModifyPlan",
    "OntoAccess",
    "PreparedQuery",
    "PreparedUpdate",
    "RelationalBackend",
    "Session",
    "TripleStoreBackend",
    "OperationResult",
    "QueryOutcome",
    "TranslatedSelect",
    "UpdateResult",
    "bindings_for_pattern",
    "confirmation_graph",
    "dump_database",
    "dump_table",
    "error_graph",
    "execute_query",
    "group_by_subject",
    "identify_entity",
    "literal_for_column",
    "plan_binding",
    "plan_modify",
    "sort_statements",
    "topological_table_order",
    "translate_delete_data",
    "translate_insert_data",
    "translate_pattern",
]
