"""MODIFY → SQL translation (paper Section 5.2, Algorithm 2).

Steps, mirroring the paper exactly:

1. split the MODIFY into DELETE template, INSERT template, WHERE pattern;
2. build a SELECT from the WHERE pattern and translate it to SQL
   (:mod:`repro.core.select_translate`); when the pattern falls outside
   the translatable fragment, evaluate it against the RDB dump instead;
3. for each result binding, instantiate one DELETE DATA and one INSERT
   DATA operation from the templates;
4. translate and execute them via Algorithm 1, interleaved per binding in
   one shared transaction (Algorithm 2 lines 7–13).

The Section 5.2 optimization is applied per binding: when a delete triple
has a corresponding insert triple (same subject and property, different
object) and the property maps to a table attribute, the delete is omitted
and the insert translates to an ``UPDATE`` that overwrites the value
directly — "the delete would set an attribute value to NULL and the insert
sets the same attribute to a new value, therefore the delete is redundant".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import UnsupportedPatternError
from ..rdb.engine import Database
from ..rdf.namespace import RDF
from ..rdf.terms import Triple, URIRef
from ..r3m.model import DatabaseMapping
from ..sparql.algebra import Solution, evaluate_pattern, instantiate
from ..sparql.update_ast import Modify
from ..sql import ast
from .delete_data import translate_delete_data
from .insert_data import translate_insert_data
from .select_translate import translate_pattern

__all__ = ["ModifyPlan", "BindingStep", "plan_modify", "bindings_for_pattern"]


@dataclass
class BindingStep:
    """The work for one WHERE-result binding (Algorithm 2 lines 8–11)."""

    binding: Solution
    delete_statements: List[ast.Statement] = field(default_factory=list)
    insert_statements: List[ast.Statement] = field(default_factory=list)
    #: number of delete triples dropped by the redundancy optimization
    optimized_away: int = 0

    def all_statements(self) -> List[ast.Statement]:
        return [*self.delete_statements, *self.insert_statements]


@dataclass
class ModifyPlan:
    """The translated MODIFY: per-binding statement batches plus metadata."""

    steps: List[BindingStep]
    used_sql_select: bool
    select_sql: Optional[str] = None

    def all_statements(self) -> List[ast.Statement]:
        return [s for step in self.steps for s in step.all_statements()]


def bindings_for_pattern(
    mapping: DatabaseMapping,
    db: Database,
    pattern,
    force_fallback: bool = False,
) -> Tuple[List[Solution], bool, Optional[str]]:
    """Evaluate a WHERE pattern on the RDB.

    Returns (solutions, used_sql_translation, select_sql).  The fallback
    materializes the database as RDF and evaluates natively.
    """
    if not force_fallback:
        try:
            translated = translate_pattern(mapping, db, pattern)
            return translated.execute(), True, translated.sql()
        except UnsupportedPatternError:
            pass
    from .dump import dump_database

    graph = dump_database(mapping, db)
    return evaluate_pattern(graph, pattern), False, None


def plan_modify(
    mapping: DatabaseMapping,
    db: Database,
    operation: Modify,
    optimize_redundant_deletes: bool = True,
    force_fallback: bool = False,
) -> ModifyPlan:
    """Translate a MODIFY operation against the *current* database state.

    Note Algorithm 2 interleaves translation and execution per binding;
    this function translates all bindings against the current state and is
    what the mediator uses for dry-run display.  The mediator's execution
    path re-plans each binding after executing the previous one, matching
    the paper's loop exactly (see ``OntoAccess.update``).
    """
    solutions, used_sql, select_sql = bindings_for_pattern(
        mapping, db, operation.where, force_fallback=force_fallback
    )
    steps = [
        plan_binding(
            mapping,
            db,
            operation,
            solution,
            optimize_redundant_deletes=optimize_redundant_deletes,
        )
        for solution in solutions
    ]
    return ModifyPlan(steps=steps, used_sql_select=used_sql, select_sql=select_sql)


def plan_binding(
    mapping: DatabaseMapping,
    db: Database,
    operation: Modify,
    solution: Solution,
    optimize_redundant_deletes: bool = True,
) -> BindingStep:
    """Algorithm 2 lines 8–11 for one binding: build and translate the
    DELETE DATA / INSERT DATA pair."""
    delete_triples = instantiate(operation.delete_template, solution)
    insert_triples = instantiate(operation.insert_template, solution)

    step = BindingStep(binding=solution)
    if optimize_redundant_deletes:
        delete_triples, step.optimized_away = _drop_redundant_deletes(
            mapping, delete_triples, insert_triples
        )

    if delete_triples:
        step.delete_statements = translate_delete_data(
            mapping, db, tuple(delete_triples)
        )
    if insert_triples:
        step.insert_statements = translate_insert_data(
            mapping,
            db,
            tuple(insert_triples),
            # Replacement semantics: the paired delete was dropped, so the
            # insert may overwrite the existing value.
            allow_overwrite=True,
        )
    return step


def _drop_redundant_deletes(
    mapping: DatabaseMapping,
    deletes: List[Triple],
    inserts: List[Triple],
) -> Tuple[List[Triple], int]:
    """Omit delete triples whose (subject, property) also appears in the
    inserts and maps to a plain attribute (link-table pairs are keyed by
    subject *and* object, so their deletes are never redundant)."""
    insert_keys = {(t.subject, t.predicate) for t in inserts}
    kept: List[Triple] = []
    dropped = 0
    for triple in deletes:
        predicate = triple.predicate
        is_attribute = (
            predicate != RDF.type
            and mapping.link_for_property(predicate) is None
        )
        if (
            is_attribute
            and (triple.subject, predicate) in insert_keys
        ):
            dropped += 1
            continue
        kept.append(triple)
    return kept, dropped
