"""Sessions and prepared operations: the amortizing public API.

The facade path (``OntoAccess.update(sparql)``) re-parses and re-translates
the full SPARQL string on every call, so per-request cost is dominated by
the front of the pipeline.  A :class:`Session` — obtained from
:meth:`OntoAccess.session() <repro.core.mediator.OntoAccess.session>` or
built directly over any :class:`~repro.core.backend.Backend` — amortizes
that cost across repeated operations:

* :meth:`Session.prepare` parses once and returns a
  :class:`PreparedUpdate` / :class:`PreparedQuery` whose ``execute()`` can
  run many times.  On the relational backend the translated SQL is cached
  against the database's state version and *replayed* while the state is
  unchanged, and translated query patterns are cached per schema version —
  both on top of the engine's per-statement plan cache.
* Prepared templates may contain SPARQL variables as placeholders;
  ``execute(bindings={"name": ...})`` substitutes concrete terms at
  execute time (the prepared-statement idiom).
* :meth:`Session.execute_all` runs a multi-operation batch inside **one**
  database transaction — all-or-nothing, whereas the facade commits each
  operation separately per the paper's one-transaction-per-operation rule.
* The session owns transaction scope (:meth:`begin` / :meth:`commit` /
  :meth:`rollback` / :meth:`transaction`).  **Write** entry points
  serialize on the backend's write-tier lock so a threaded HTTP endpoint
  can share one session without interleaving transactions; **read** entry
  points (:meth:`query`, :meth:`query_outcome`, prepared queries) do not
  take it — they run against the backend's committed snapshot, so N
  reader threads proceed concurrently with each other and with at most
  one writer.  The prepared caches are guarded by a separate lock held
  only for dictionary access, never during execution.

Semantics never drift from the unprepared path: translation replay is
keyed on the backend's state version, so *any* state change — including
the replayed statements themselves affecting rows — forces a fresh
translation.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..deadline import deadline_scope
from ..errors import SPARQLParseError, TranslationError
from ..observability.metrics import SESSION_OPS
from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..rdf.terms import Literal, Term, Triple, Variable
from ..sparql.algebra import Solution, substitute
from ..sparql.algebra_ast import (
    Arithmetic,
    BoolOp,
    Comparison,
    Filter,
    FunctionExpr,
    GroupPattern,
    Not,
    Optional_,
    TermExpr,
    TriplePattern,
)
from ..sparql.algebra_ast import Union as PatternUnion
from ..sparql.query_ast import ConstructQuery, Query
from ..sparql.query_parser import parse_query
from ..sparql.update_ast import (
    DeleteData,
    InsertData,
    Modify,
    UpdateOperation,
    UpdateRequest,
)
from ..sparql.update_parser import parse_update
from .backend import Backend, UpdateResult
from .query import QueryOutcome

__all__ = ["PreparedQuery", "PreparedUpdate", "Session"]

Bindings = Dict[str, Any]

_QUERY_KEYWORD = re.compile(r"\b(SELECT|ASK|CONSTRUCT|DESCRIBE)\b", re.I)
_UPDATE_KEYWORD = re.compile(r"\b(INSERT|DELETE|MODIFY|CLEAR)\b", re.I)
#: IRIs and string literals may contain keyword-shaped substrings
#: (``<http://example.org/delete/>``); mask them before sniffing, then
#: mask ``#`` comments (after IRIs, whose fragments also use ``#``).
_OPAQUE_TOKEN = re.compile(r"<[^>]*>|\"[^\"]*\"|'[^']*'")
_COMMENT = re.compile(r"#[^\n]*")

_PREPARED_CACHE_SIZE = 128

# Label children resolved once: the hot paths pay a sharded add, not a
# dict lookup under the registry lock.
_OPS_QUERY = SESSION_OPS.labels("query")
_OPS_UPDATE = SESSION_OPS.labels("update")
_OPS_BATCH = SESSION_OPS.labels("batch")
_BINDING_CACHE_SIZE = 64


def _looks_like_query(text: str) -> bool:
    text = _COMMENT.sub(" ", _OPAQUE_TOKEN.sub(" ", text))
    query = _QUERY_KEYWORD.search(text)
    if query is None:
        return False
    update = _UPDATE_KEYWORD.search(text)
    return update is None or query.start() < update.start()


def _as_term(value: Any) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, (str, bool, int, float)):
        return Literal(value)
    raise TranslationError(
        f"cannot bind a {type(value).__name__} as an RDF term",
        code=TranslationError.UNSUPPORTED,
    )


def _solution(bindings: Optional[Bindings]) -> Solution:
    if not bindings:
        return {}
    resolved: Solution = {}
    for name, value in bindings.items():
        variable = name if isinstance(name, Variable) else Variable(str(name).lstrip("?"))
        resolved[variable] = _as_term(value)
    return resolved


def _bindings_key(solution: Solution) -> Tuple:
    return tuple(sorted((v.name, t.n3()) for v, t in solution.items()))


# ---------------------------------------------------------------------------
# placeholder substitution over patterns and templates
# ---------------------------------------------------------------------------

def _substitute_triples(
    triples: Tuple[Triple, ...], solution: Solution, require_concrete: bool
) -> Tuple[Triple, ...]:
    result = []
    for triple in triples:
        candidate = substitute(triple, solution) if solution else triple
        if require_concrete and not candidate.is_concrete():
            unbound = ", ".join(f"?{v.name}" for v in candidate.variables())
            raise TranslationError(
                f"unbound placeholder(s) {unbound} in prepared data block; "
                "pass bindings={...} at execute time",
                code=TranslationError.UNSUPPORTED,
            )
        result.append(candidate)
    return tuple(result)


def _substitute_expr(expr, solution: Solution):
    if isinstance(expr, TermExpr):
        term = expr.term
        if isinstance(term, Variable) and term in solution:
            return TermExpr(solution[term])
        return expr
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            _substitute_expr(expr.left, solution),
            _substitute_expr(expr.right, solution),
        )
    if isinstance(expr, BoolOp):
        return BoolOp(
            expr.op,
            _substitute_expr(expr.left, solution),
            _substitute_expr(expr.right, solution),
        )
    if isinstance(expr, Not):
        return Not(_substitute_expr(expr.operand, solution))
    if isinstance(expr, Arithmetic):
        return Arithmetic(
            expr.op,
            _substitute_expr(expr.left, solution),
            _substitute_expr(expr.right, solution),
        )
    if isinstance(expr, FunctionExpr):
        return FunctionExpr(
            expr.name,
            tuple(_substitute_expr(a, solution) for a in expr.args),
        )
    return expr


def _substitute_pattern(pattern: GroupPattern, solution: Solution) -> GroupPattern:
    if not solution:
        return pattern
    elements = []
    for element in pattern.elements:
        if isinstance(element, TriplePattern):
            elements.append(TriplePattern(substitute(element.triple, solution)))
        elif isinstance(element, Filter):
            elements.append(Filter(_substitute_expr(element.expression, solution)))
        elif isinstance(element, Optional_):
            elements.append(
                Optional_(_substitute_pattern(element.pattern, solution))
            )
        elif isinstance(element, PatternUnion):
            elements.append(
                PatternUnion(
                    tuple(
                        _substitute_pattern(branch, solution)
                        for branch in element.branches
                    )
                )
            )
        elif isinstance(element, GroupPattern):
            elements.append(_substitute_pattern(element, solution))
        else:
            elements.append(element)
    return GroupPattern(elements=tuple(elements))


def _resolve_operation(
    operation: UpdateOperation, solution: Solution
) -> UpdateOperation:
    """One operation with placeholders replaced by bound terms."""
    if isinstance(operation, InsertData):
        return InsertData(
            triples=_substitute_triples(operation.triples, solution, True)
        )
    if isinstance(operation, DeleteData):
        return DeleteData(
            triples=_substitute_triples(operation.triples, solution, True)
        )
    if isinstance(operation, Modify):
        if not solution:
            return operation
        return Modify(
            delete_template=_substitute_triples(
                operation.delete_template, solution, False
            ),
            insert_template=_substitute_triples(
                operation.insert_template, solution, False
            ),
            where=_substitute_pattern(operation.where, solution),
        )
    return operation


# ---------------------------------------------------------------------------
# prepared operations
# ---------------------------------------------------------------------------

class PreparedUpdate:
    """A parsed SPARQL/Update request, executable many times.

    Parsing happened at :meth:`Session.prepare` time; per distinct binding
    set the backend keeps a prepared handle whose translation is replayed
    while the backend state is unchanged (see
    :class:`repro.core.backend._PreparedRdbOp`).
    """

    def __init__(
        self,
        session: "Session",
        request: UpdateRequest,
        text: Optional[str] = None,
    ) -> None:
        self.session = session
        self.request = request
        self.text = text
        #: bindings-key -> one prepared handle per operation (LRU)
        self._per_binding: "OrderedDict[Tuple, List]" = OrderedDict()

    def execute(self, bindings: Optional[Bindings] = None) -> UpdateResult:
        """Execute the request; placeholders are substituted from
        ``bindings`` (variable name → RDF term or plain Python value)."""
        session = self.session
        with session._lock:
            prepared = self._prepared_for(_solution(bindings))
            return session._run_runners(
                [handle.execute for handle in prepared], atomic=False
            )

    def _prepared_for(self, solution: Solution) -> List:
        key = _bindings_key(solution)
        prepared = self._per_binding.get(key)
        if prepared is None:
            backend = self.session.backend
            prepared = [
                backend.prepare_operation(_resolve_operation(op, solution))
                for op in self.request.operations
            ]
            self._per_binding[key] = prepared
            if len(self._per_binding) > _BINDING_CACHE_SIZE:
                self._per_binding.popitem(last=False)
        else:
            self._per_binding.move_to_end(key)
        return prepared


class PreparedQuery:
    """A parsed SPARQL query, executable many times.

    On the relational backend the SPARQL→SQL pattern translation is cached
    per schema version (translation never reads row data), so repeated
    executions skip straight to the planner's compiled SELECT.
    """

    def __init__(
        self,
        session: "Session",
        query: Query,
        text: Optional[str] = None,
    ) -> None:
        self.session = session
        self.query = query
        self.text = text
        self._per_binding: "OrderedDict[Tuple, Any]" = OrderedDict()

    def execute(self, bindings: Optional[Bindings] = None):
        """Run the query; returns SelectResult / bool / Graph."""
        return self.outcome(bindings).result

    def outcome(self, bindings: Optional[Bindings] = None) -> QueryOutcome:
        # Lock-free read path: plan lookup briefly takes the cache lock,
        # execution runs against the backend's committed snapshot.
        return self._plan_for(_solution(bindings)).outcome()

    def _plan_for(self, solution: Solution):
        key = _bindings_key(solution)
        cache_lock = self.session._cache_lock
        with cache_lock:
            plan = self._per_binding.get(key)
            if plan is not None:
                self._per_binding.move_to_end(key)
                return plan
        # Build outside the lock (translation may be expensive); a racing
        # thread building the same plan is benign — last insert wins.
        query = self._resolved_query(solution)
        plan = self.session.backend.prepare_query(query)
        with cache_lock:
            self._per_binding[key] = plan
            if len(self._per_binding) > _BINDING_CACHE_SIZE:
                self._per_binding.popitem(last=False)
        return plan

    def _resolved_query(self, solution: Solution) -> Query:
        if not solution:
            return self.query
        query = replace(
            self.query, where=_substitute_pattern(self.query.where, solution)
        )
        if isinstance(query, ConstructQuery):
            query = replace(
                query,
                template=_substitute_triples(query.template, solution, False),
            )
        return query


# ---------------------------------------------------------------------------
# the session
# ---------------------------------------------------------------------------

class Session:
    """Owns transaction scope and a prepared-operation cache over a backend.

    Thread-safe with two lock tiers, both owned by the backend and shared
    by **all** sessions over it (transaction state lives in the backend,
    so two sessions on one database must never interleave — e.g. the
    facade's internal session and the HTTP endpoint's session used from
    different threads):

    * the reentrant **write-tier** lock serializes updates, batches, and
      transaction scope;
    * the **cache lock** guards the prepared-operation dictionaries and
      is held only for lookups/insertions, never across execution.

    Queries take neither lock during execution: they run against the
    backend's committed snapshot, concurrent with each other and with at
    most one writer.
    """

    def __init__(self, backend: Backend) -> None:
        self.backend = backend
        # The backend owns the locks (created in Backend.__init__), so all
        # sessions over one backend serialize on the same instances.
        self._lock = backend._session_lock
        self._cache_lock = backend._cache_lock
        self._prepared: "OrderedDict[Tuple, Union[PreparedUpdate, PreparedQuery]]" = (
            OrderedDict()
        )

    # -- preparing ------------------------------------------------------

    def prepare(
        self, sparql: str, prefixes: Optional[PrefixMap] = None
    ) -> Union[PreparedUpdate, PreparedQuery]:
        """Parse once; returns a :class:`PreparedQuery` for SELECT / ASK /
        CONSTRUCT text and a :class:`PreparedUpdate` otherwise.  Prepared
        objects are cached by text, so repeated ``prepare`` of the same
        string is a dictionary hit.

        The keyword sniff only picks which parser to try first; a parse
        failure falls through to the other parser, so keyword-shaped
        prefix labels (``PREFIX insert: <…>``) cannot misroute a request.
        """
        if _looks_like_query(sparql):
            try:
                return self.prepare_query(sparql, prefixes=prefixes)
            except SPARQLParseError:
                return self.prepare_update(sparql, prefixes=prefixes)
        try:
            return self.prepare_update(sparql, prefixes=prefixes)
        except SPARQLParseError:
            return self.prepare_query(sparql, prefixes=prefixes)

    def prepare_update(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
        allow_placeholders: bool = True,
    ) -> PreparedUpdate:
        """Parse an update once for repeated execution.

        ``allow_placeholders=False`` re-enables the submission's
        concreteness rule for data blocks — the HTTP endpoint uses it,
        since the wire protocol has no way to pass bindings.
        """
        if isinstance(request, UpdateRequest):
            return PreparedUpdate(self, request)
        kind = "update" if allow_placeholders else "update-concrete"
        cached = self._cached_prepared(kind, request, prefixes)
        if cached is not None:
            return cached
        prepared = PreparedUpdate(
            self,
            parse_update(
                request,
                prefixes=prefixes,
                allow_placeholders=allow_placeholders,
            ),
            text=request,
        )
        return self._remember(kind, request, prefixes, prepared)

    def prepare_query(
        self,
        query: Union[str, Query],
        prefixes: Optional[PrefixMap] = None,
    ) -> PreparedQuery:
        if not isinstance(query, str):
            return PreparedQuery(self, query)
        cached = self._cached_prepared("query", query, prefixes)
        if cached is not None:
            return cached
        prepared = PreparedQuery(
            self, parse_query(query, prefixes=prefixes), text=query
        )
        return self._remember("query", query, prefixes, prepared)

    def _cached_prepared(self, kind: str, text: str, prefixes):
        if prefixes is not None:
            return None
        with self._cache_lock:
            entry = self._prepared.get((kind, text))
            if entry is not None:
                self._prepared.move_to_end((kind, text))
            return entry

    def _remember(self, kind: str, text: str, prefixes, prepared):
        """Insert under the cache lock; on a racing insert of the same
        text, keep and return the first one (so all threads share one
        prepared object and its caches)."""
        if prefixes is not None:
            return prepared
        with self._cache_lock:
            existing = self._prepared.get((kind, text))
            if existing is not None:
                return existing
            self._prepared[(kind, text)] = prepared
            if len(self._prepared) > _PREPARED_CACHE_SIZE:
                self._prepared.popitem(last=False)
            return prepared

    # -- write path -----------------------------------------------------

    def execute(
        self,
        request: Union[str, UpdateRequest],
        prefixes: Optional[PrefixMap] = None,
    ) -> UpdateResult:
        """Execute a SPARQL/Update request.

        This is the one-shot path: request strings are parsed and
        translated per call (the legacy facade behaviour); use
        :meth:`prepare` to amortize parse + translation over repeated
        executions.  Outside an explicit transaction each operation runs
        in its own database transaction (the paper's atomicity rule);
        inside one, all operations join the open transaction.
        """
        _OPS_UPDATE.inc()
        with self._lock:
            if isinstance(request, str):
                request = parse_update(request, prefixes=prefixes)
            runners = [
                (lambda op=op: self.backend.execute_operation(op))
                for op in request.operations
            ]
            return self._run_runners(runners, atomic=False)

    def execute_all(
        self,
        requests: Iterable[Union[str, UpdateRequest]],
        prefixes: Optional[PrefixMap] = None,
    ) -> UpdateResult:
        """Execute a batch of requests inside **one** transaction.

        Either every operation of every request commits, or — on the
        first error — everything rolls back and the error propagates.
        """
        _OPS_BATCH.inc()
        with self._lock:
            operations: List[UpdateOperation] = []
            for request in requests:
                if isinstance(request, str):
                    request = parse_update(request, prefixes=prefixes)
                operations.extend(request.operations)
            runners = [
                (lambda op=op: self.backend.execute_operation(op))
                for op in operations
            ]
            return self._run_runners(runners, atomic=True)

    # -- read path ------------------------------------------------------

    def query(
        self,
        q: Union[str, Query],
        prefixes: Optional[PrefixMap] = None,
        timeout: Optional[float] = None,
    ):
        """Run a SPARQL query; returns SelectResult / bool / Graph.

        ``timeout`` (seconds) bounds evaluation: the executor's
        cooperative cancellation checks raise :class:`~repro.errors.
        QueryTimeout` once it passes.  An enclosing deadline (e.g. the
        endpoint's per-request budget) is never loosened — the tighter
        of the two wins.
        """
        return self.query_outcome(q, prefixes=prefixes, timeout=timeout).result

    def query_outcome(
        self,
        q: Union[str, Query],
        prefixes: Optional[PrefixMap] = None,
        timeout: Optional[float] = None,
    ) -> QueryOutcome:
        # Read tier: no session lock.  The backend evaluates against the
        # committed snapshot current at the query's start (the thread
        # owning an open transaction sees its own writes instead).
        _OPS_QUERY.inc()
        if timeout is not None:
            with deadline_scope(timeout):
                if isinstance(q, str):
                    return self.prepare_query(q, prefixes=prefixes).outcome()
                return self.backend.query_outcome(q, prefixes=prefixes)
        if isinstance(q, str):
            return self.prepare_query(q, prefixes=prefixes).outcome()
        return self.backend.query_outcome(q, prefixes=prefixes)

    def dump(self) -> Graph:
        """Materialize the backend's state as RDF.

        Read tier: both backends route their dump through the committed
        snapshot (or the working store for the transaction's own thread),
        so no lock is needed and a long-running transaction elsewhere
        never stalls a dump.
        """
        return self.backend.dump()

    # -- transactions ---------------------------------------------------

    def begin(self) -> None:
        """Open a transaction, holding the write-tier lock until
        :meth:`commit`/:meth:`rollback`.

        Transaction scope is thread-owned: exactly like the engine's
        writer lock, the thread that called ``begin`` must finish the
        transaction.  Another thread's write simply waits here (it can
        never sneak into — or deadlock against — an open transaction),
        and reads are unaffected (they use the committed snapshot).
        """
        self._lock.acquire()
        try:
            self.backend.begin()
        except BaseException:
            self._lock.release()
            raise
        self.backend._begin_holds += 1

    def _release_begin_hold(self) -> None:
        """Drop the lock acquisition made by :meth:`begin`, if any —
        also on the error paths (e.g. committing after a failed
        operation already rolled the transaction back).

        MUST be called while holding the lock: a begin-hold is itself a
        lock acquisition, so inside the lock a nonzero count can only be
        this thread's own reentrant hold — checking it anywhere else
        would race another thread's ``begin``.  The count lives on the
        backend, so a transaction begun through one session can be
        finished through another session over the same backend.
        """
        backend = self.backend
        if backend._begin_holds:
            backend._begin_holds -= 1
            self._lock.release()

    def commit(self) -> None:
        with self._lock:
            try:
                self.backend.commit()
            finally:
                self._release_begin_hold()

    def rollback(self) -> None:
        with self._lock:
            try:
                self.backend.rollback()
            finally:
                self._release_begin_hold()

    def in_transaction(self) -> bool:
        return self.backend.in_transaction()

    def health(self) -> Dict[str, Any]:
        """Backend health (ISSUE 6): durability state incl. WAL refusing
        mode and last-checkpoint age.  Read tier — no lock, so a health
        probe can never be starved by a long write."""
        return self.backend.health()

    def checkpoint(self) -> Optional[str]:
        """Force a durability checkpoint on the backend's store.

        Serializes on the write-tier lock — the snapshot cut must not
        interleave with an update or land inside an open transaction.
        Returns the checkpoint path, or None for in-memory backends.
        """
        with self._lock:
            return self.backend.checkpoint()

    @contextmanager
    def transaction(self):
        """Explicit scope: operations inside join one transaction."""
        with self._lock:
            self.backend.begin()
            try:
                yield self
            except Exception:
                if self.backend.in_transaction():
                    self.backend.rollback()
                raise
            else:
                self.backend.commit()

    # -- execution core -------------------------------------------------

    def _run_runners(self, runners: Sequence, atomic: bool) -> UpdateResult:
        """Run operation thunks with session-managed transaction scope.

        ``atomic=True`` wraps the whole batch in one transaction;
        otherwise each operation gets its own.  Inside an explicit
        transaction (``session.begin()``/``transaction()``) operations
        join it, and any error rolls the whole transaction back so no
        transaction is ever left open.
        """
        result = UpdateResult()
        backend = self.backend
        if backend.in_transaction():
            try:
                for run in runners:
                    result.operations.append(run())
            except Exception as exc:
                self._fail(exc)
            return result
        if atomic:
            backend.begin()
            try:
                for run in runners:
                    result.operations.append(run())
                backend.commit()
            except Exception as exc:
                self._fail(exc)
            return result
        for run in runners:
            backend.begin()
            try:
                result.operations.append(run())
                backend.commit()
            except Exception as exc:
                self._fail(exc)
        return result

    def _fail(self, exc: Exception) -> None:
        """Roll back any open transaction, then raise the wrapped error."""
        if self.backend.in_transaction():
            self.backend.rollback()
        wrapped = self.backend.wrap_error(exc)
        if wrapped is exc:
            raise exc
        raise wrapped from exc
