"""DELETE DATA → SQL translation (paper Section 5.1, Algorithm 1).

"If the data in the operation represents only a subset of the data in the
database, the operation is translated to a SQL UPDATE statement that sets
all mentioned attributes to NULL ... Only if the data in the request
operation equals all remaining (i.e., non-null) data in the database, the
resulting SQL statement is a DELETE that removes the complete row."

Checks performed before SQL generation:

* the entity must exist and every triple to delete must actually hold
  (value comparison after coercion, so ``"2009"`` matches the INTEGER
  2009);
* a partial delete must not NULL-out an attribute with a NOT NULL
  constraint — that is only possible by deleting the whole row;
* deleting the ``rdf:type`` triple is only valid as part of a complete
  row deletion (relationally, an entity cannot lose its class).

Link-table triples translate to ``DELETE`` on the link table restricted to
the subject/object key pair.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import TranslationError
from ..rdb.engine import Database
from ..rdf.terms import Object, Triple, URIRef
from ..r3m.model import DatabaseMapping, LinkTableMapping
from ..sql import ast
from .common import (
    EntityRef,
    SubjectGroup,
    classify_group,
    coerce_pattern_values,
    group_by_subject,
    term_to_sql_value,
)
from .sorting import sort_statements

__all__ = ["translate_delete_data"]


def translate_delete_data(
    mapping: DatabaseMapping,
    db: Database,
    triples: Tuple[Triple, ...],
) -> List[ast.Statement]:
    """Translate a DELETE DATA payload to sorted SQL statements."""
    statements: List[ast.Statement] = []
    for subject, group_triples in group_by_subject(triples):
        group = classify_group(mapping, db, subject, group_triples)
        statements.extend(_translate_group(mapping, db, group))
    return sort_statements(statements, db.schema)


def _translate_group(
    mapping: DatabaseMapping, db: Database, group: SubjectGroup
) -> List[ast.Statement]:
    entity = group.entity
    statements: List[ast.Statement] = []

    for link, obj in group.link_values:
        statements.append(_link_delete(mapping, db, link, entity, obj))

    if not group.attribute_values and not group.types:
        return statements

    current = entity.current_row(db)
    if current is None:
        raise TranslationError(
            f"entity {entity.uri.value} does not exist in table "
            f"{entity.table.table_name!r}",
            code=TranslationError.ENTITY_MISSING,
            details={
                "subject": entity.uri.value,
                "table": entity.table.table_name,
            },
        )

    deleted_attrs = _verify_triples_hold(mapping, db, group, current)

    if _covers_all_remaining_data(db, group, current, deleted_attrs):
        statements.append(
            ast.Delete(
                table=entity.table.table_name,
                where=_pk_condition(db, entity),
            )
        )
        return statements

    # Partial delete → UPDATE ... SET attr = NULL.
    if group.types:
        raise TranslationError(
            f"cannot delete the rdf:type triple of {entity.uri.value} while "
            "other data remains: a row cannot lose its table",
            code=TranslationError.CONSTRAINT_VIOLATION,
            details={
                "subject": entity.uri.value,
                "table": entity.table.table_name,
            },
        )
    schema_table = db.table(entity.table.table_name)
    assignments = []
    for name, old_value in deleted_attrs.items():
        column = schema_table.column(name)
        if column.not_null or schema_table.is_primary_key(name):
            raise TranslationError(
                f"cannot set NOT NULL attribute "
                f"{entity.table.table_name}.{name} to NULL; delete the "
                "complete entity instead",
                code=TranslationError.NOT_NULL_DELETE,
                details={
                    "subject": entity.uri.value,
                    "table": entity.table.table_name,
                    "attribute": name,
                },
            )
        assignments.append(ast.Assignment(name, ast.Null()))
    # WHERE pk AND attr = old-value, the guarded form of Listing 18.
    condition = _pk_condition(db, entity)
    for name, old_value in deleted_attrs.items():
        condition = ast.BinaryOp(
            "AND",
            condition,
            ast.BinaryOp("=", ast.ColumnRef(name), ast.Literal(old_value)),
        )
    statements.append(
        ast.Update(
            table=entity.table.table_name,
            assignments=tuple(assignments),
            where=condition,
        )
    )
    return statements


def _verify_triples_hold(
    mapping: DatabaseMapping,
    db: Database,
    group: SubjectGroup,
    current: Dict[str, Any],
) -> Dict[str, Any]:
    """Check every attribute triple is present; return {attr: old value}."""
    entity = group.entity
    deleted: Dict[str, Any] = {}
    for attribute, obj in group.attribute_values:
        value = term_to_sql_value(mapping, db, entity.table, attribute, obj)
        name = attribute.attribute_name
        existing = current.get(name)
        if existing is None or existing != value:
            raise TranslationError(
                f"triple to delete does not hold: "
                f"{entity.table.table_name}.{name} of {entity.uri.value} is "
                f"{existing!r}, not {value!r}",
                code=TranslationError.TRIPLE_MISSING,
                details={
                    "subject": entity.uri.value,
                    "table": entity.table.table_name,
                    "attribute": name,
                    "expected": value,
                    "actual": existing,
                },
            )
        deleted[name] = value
    return deleted


def _covers_all_remaining_data(
    db: Database,
    group: SubjectGroup,
    current: Dict[str, Any],
    deleted_attrs: Dict[str, Any],
) -> bool:
    """Does the request delete *all* non-null mapped data of the row?

    Key attributes carried by the URI pattern don't count (they exist as
    long as the row does), and only attributes mapped to properties can be
    expressed as triples at all.
    """
    entity = group.entity
    pattern_attrs = set(entity.table.uri_pattern.attributes)
    remaining = {
        a.attribute_name
        for a in entity.table.mapped_attributes()
        if current.get(a.attribute_name) is not None
        and a.attribute_name not in pattern_attrs
    }
    # The rdf:type triple is implied by the row's existence, so it does not
    # enter the comparison; "equals all remaining (i.e., non-null) data"
    # is plain set equality over the mapped non-key attributes.
    return remaining == set(deleted_attrs)


def _link_delete(
    mapping: DatabaseMapping,
    db: Database,
    link: LinkTableMapping,
    entity: EntityRef,
    obj: Object,
) -> ast.Delete:
    if not isinstance(obj, URIRef):
        raise TranslationError(
            f"link property {link.property} requires an instance URI object",
            code=TranslationError.TYPE_MISMATCH,
            details={"property": str(link.property)},
        )
    target = mapping.table(link.object_table())
    raw = target.uri_pattern.match(obj)
    if raw is None:
        raise TranslationError(
            f"object {obj.value} does not match the uriPattern of "
            f"{link.object_table()!r}",
            code=TranslationError.FK_TARGET_MISSING,
            details={"object": obj.value},
        )
    coerced = coerce_pattern_values(db, target, raw, obj)
    object_key = tuple(
        coerced[c] for c in db.table(link.object_table()).primary_key
    )[0]
    subject_key = entity.pk_tuple(db)[0]

    subject_attr = link.subject_attribute.attribute_name
    object_attr = link.object_attribute.attribute_name
    table_data = db.table_data(link.table_name)
    exists = any(
        table_data.rows[rowid].get(object_attr) == object_key
        for rowid in table_data.find_by_value(subject_attr, subject_key)
    )
    if not exists:
        raise TranslationError(
            f"link triple to delete does not hold: no "
            f"{link.table_name} row with {subject_attr}={subject_key}, "
            f"{object_attr}={object_key}",
            code=TranslationError.TRIPLE_MISSING,
            details={
                "table": link.table_name,
                "subject_key": subject_key,
                "object_key": object_key,
            },
        )
    return ast.Delete(
        table=link.table_name,
        where=ast.BinaryOp(
            "AND",
            ast.BinaryOp("=", ast.ColumnRef(subject_attr), ast.Literal(subject_key)),
            ast.BinaryOp("=", ast.ColumnRef(object_attr), ast.Literal(object_key)),
        ),
    )


def _pk_condition(db: Database, entity: EntityRef) -> ast.Expression:
    schema_table = db.table(entity.table.table_name)
    condition: Optional[ast.Expression] = None
    for column in schema_table.primary_key:
        clause = ast.BinaryOp(
            "=", ast.ColumnRef(column), ast.Literal(entity.key_values[column])
        )
        condition = clause if condition is None else ast.BinaryOp("AND", condition, clause)
    if condition is None:
        raise TranslationError(
            f"table {entity.table.table_name!r} has no primary key"
        )
    return condition
