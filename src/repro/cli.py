"""Command-line interface: ``python -m repro <command>``.

Subcommands

``demo``
    Run the paper's feasibility study end to end (Table 1 + listings).
``serve``
    Start the HTTP endpoint on the publication use case (or a schema file).
``update`` / ``query``
    Execute a SPARQL/Update request or SPARQL query from a file or stdin
    against a schema+data script, printing translated SQL / results.
``dump``
    Print the mapped database as Turtle.
``mapping``
    Auto-generate and print the R3M mapping for a schema (``--validate``
    checks an existing mapping document against the schema).
``checkpoint``
    Force a durability checkpoint on a ``--data-dir`` database:
    serialize the committed state, truncate the write-ahead log.

Durability: every data-bearing command accepts ``--data-dir DIR`` (plus
``--sync-mode fsync|os|none``).  The directory is recovered on open —
checkpoint plus write-ahead-log replay — and schema/data scripts are
applied only when it is empty, so repeated invocations operate on the
surviving database instead of rebuilding it.

The CLI wires files to the library; all semantics live in the packages.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .core.mediator import OntoAccess
from .errors import ReproError, TranslationError
from .rdb.engine import Database
from .rdf.graph import Graph
from .rdf.serialize import to_turtle
from .r3m.generator import generate_mapping
from .r3m.parser import parse_mapping
from .r3m.serialize import mapping_to_turtle
from .r3m.validator import validate_mapping

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OntoAccess: update relational data via SPARQL/Update",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper's feasibility study")

    serve = sub.add_parser("serve", help="start the HTTP endpoint")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8034)
    serve.add_argument(
        "--max-in-flight", type=int, default=32, metavar="N",
        help="admission control: requests executing concurrently before "
        "new ones queue (default: 32)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="admission control: queued requests beyond which the server "
        "sheds immediately with 503 (default: 64)",
    )
    serve.add_argument(
        "--queue-timeout", type=float, default=0.25, metavar="SECONDS",
        help="longest a request waits for an admission slot before being "
        "shed with 503 + Retry-After (default: 0.25)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="server-wide request deadline; clients may tighten it via "
        "?timeout= or X-Request-Deadline but never loosen it "
        "(default: 30, 0 = unlimited)",
    )
    serve.add_argument(
        "--max-connections", type=int, default=128, metavar="N",
        help="hard cap on live connections (= handler threads); excess "
        "connections get an immediate 503 (default: 128)",
    )
    serve.add_argument(
        "--max-body-bytes", type=int, default=8 * 1024 * 1024, metavar="N",
        help="largest accepted request body; bigger ones get 413 "
        "(default: 8 MiB)",
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="Retry-After hint sent with 503/408 responses (default: 1)",
    )
    serve.add_argument(
        "--replication-port", type=int, default=None, metavar="PORT",
        help="also start a WAL log shipper on this port (0 = ephemeral) "
        "so replicas can follow; requires --data-dir",
    )
    serve.add_argument(
        "--replica-of", metavar="HOST:PORT",
        help="serve as a read replica of the primary whose log shipper "
        "listens at HOST:PORT (writes answer 403 until promoted); with "
        "--data-dir the replica journals what it applies so it can be "
        "promoted durably or rejoin after a restart",
    )
    serve.add_argument(
        "--promote-on-primary-loss", action="store_true",
        help="replica only: promote to primary automatically once the "
        "primary's heartbeat lease has been silent for "
        "--primary-loss-timeout seconds",
    )
    serve.add_argument(
        "--primary-loss-timeout", type=float, default=3.0, metavar="SECONDS",
        help="heartbeat silence after which --promote-on-primary-loss "
        "fires (default: 3)",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=0.2, metavar="SECONDS",
        help="primary: interval between shipper heartbeats — the lease "
        "renewal rate replicas judge liveness by (default: 0.2)",
    )
    serve.add_argument(
        "--heartbeat-grace", type=float, default=1.0, metavar="SECONDS",
        help="replica: heartbeat silence tolerated before the connection "
        "is considered dead and redialed (default: 1)",
    )
    serve.add_argument(
        "--sync-replicas", type=int, default=0, metavar="N",
        help="primary: commits block until N replicas acknowledged the "
        "frame (semi-sync replication; default: 0 = asynchronous)",
    )
    serve.add_argument(
        "--ack-timeout", type=float, default=5.0, metavar="SECONDS",
        help="primary: longest a commit waits for --sync-replicas "
        "acknowledgements before answering 503 (default: 5)",
    )
    serve.add_argument(
        "--max-replica-lag", type=float, default=5.0, metavar="SECONDS",
        help="staleness bound on a replica: reads past this lag answer "
        "503 so clients fall back to the primary (default: 5)",
    )
    serve.add_argument(
        "--bootstrap-timeout", type=float, default=60.0, metavar="SECONDS",
        help="longest to wait for a replica's bootstrap replay to catch "
        "up before giving up (default: 60)",
    )
    serve.add_argument(
        "--slow-query-threshold", type=float, default=1.0, metavar="SECONDS",
        help="requests slower than this land in the ring-buffered "
        "slow-query log served at GET /admin/slow-queries; 0 records "
        "everything (default: 1)",
    )
    serve.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append one JSON line per work request (id, op, status, "
        "phase timings) to this file; '-' = stderr (default: off)",
    )
    serve.add_argument(
        "--service-latency", type=float, default=None, metavar="SECONDS",
        help="inject this much latency into every row scan (benchmark "
        "aid: pins per-process capacity so replica fan-out is measurable "
        "on any machine)",
    )
    _add_schema_args(serve)

    update = sub.add_parser("update", help="execute a SPARQL/Update request")
    update.add_argument(
        "request", nargs="?", help="file with the request ('-' or omitted = stdin)"
    )
    update.add_argument(
        "--dry-run", action="store_true",
        help="translate only; print SQL without executing",
    )
    _add_schema_args(update)

    query = sub.add_parser("query", help="execute a SPARQL query")
    query.add_argument(
        "query", nargs="?", help="file with the query ('-' or omitted = stdin)"
    )
    _add_schema_args(query)

    dump = sub.add_parser("dump", help="dump the mapped database as Turtle")
    _add_schema_args(dump)

    mapping = sub.add_parser(
        "mapping", help="generate or validate an R3M mapping"
    )
    mapping.add_argument(
        "--validate", metavar="MAPPING.TTL",
        help="validate this mapping document against the schema",
    )
    _add_schema_args(mapping)

    checkpoint = sub.add_parser(
        "checkpoint",
        help="serialize a --data-dir database and truncate its WAL",
    )
    checkpoint.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="durable database directory to checkpoint",
    )
    checkpoint.add_argument(
        "--sync-mode", default="fsync", choices=("fsync", "os", "none"),
        help="durability mode for the recovery replay (default: fsync)",
    )
    return parser


def _add_schema_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--schema", metavar="SCHEMA.SQL",
        help="SQL script creating the schema (default: the paper's "
        "publication use case)",
    )
    parser.add_argument(
        "--data", metavar="DATA.SQL",
        help="SQL script loading initial data",
    )
    parser.add_argument(
        "--mapping", metavar="MAPPING.TTL", dest="mapping_file",
        help="R3M mapping document (default: auto-generated / the paper's "
        "Table 1 mapping for the default schema)",
    )
    parser.add_argument(
        "--data-dir", metavar="DIR",
        help="durable database directory (write-ahead log + checkpoints); "
        "recovered on open, schema/data scripts apply only when empty",
    )
    parser.add_argument(
        "--sync-mode", default="fsync", choices=("fsync", "os", "none"),
        help="commit durability: fsync (device flush), os (page cache), "
        "none (process buffer); default fsync",
    )


def _read(path: Optional[str]) -> str:
    if path is None or path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _open_database(args) -> Database:
    """A Database honoring ``--data-dir`` (recovered) and ``--schema``.

    Schema/data scripts initialize a durable directory only on its first
    open; afterwards the recovered tables win (re-running the scripts
    would duplicate rows or collide with the surviving DDL).
    """
    db = Database(
        data_dir=getattr(args, "data_dir", None),
        sync_mode=getattr(args, "sync_mode", "fsync"),
    )
    if db.schema.table_names():  # recovered a surviving database
        return db
    if args.schema:
        db.execute_script(_read(args.schema))
    else:
        from .workloads.publication import PUBLICATION_DDL

        db.execute_script(PUBLICATION_DDL)
    if getattr(args, "data", None):
        db.execute_script(_read(args.data))
    return db


def _select_mapping(args, db: Database):
    """The R3M mapping for this invocation: an explicit document, a
    reflected one (explicit schema, or a recovered data dir holding
    something other than the default use case), or the paper's Table 1
    mapping for the default publication schema."""
    if args.mapping_file:
        return parse_mapping(_read(args.mapping_file))
    if args.schema or not db.schema.has_table("publication"):
        return generate_mapping(db)
    from .workloads.publication import build_mapping

    return build_mapping(db)


def _build_mediator(args) -> OntoAccess:
    db = _open_database(args)
    return OntoAccess(db, _select_mapping(args, db))


def main(argv: Optional[List[str]] = None, stdout=None) -> int:
    out = stdout or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args, out) -> int:
    return {
        "demo": _cmd_demo,
        "serve": _cmd_serve,
        "update": _cmd_update,
        "query": _cmd_query,
        "dump": _cmd_dump,
        "mapping": _cmd_mapping,
        "checkpoint": _cmd_checkpoint,
    }[args.command](args, out)


def _cmd_demo(args, out) -> int:
    from .workloads.publication import (
        build_database,
        build_mapping,
        table1_rows,
    )

    db = build_database()
    mediator = OntoAccess(db, build_mapping(db))
    print("Table 1: use case mapping overview", file=out)
    for left, right in table1_rows(mediator.mapping):
        print(f"  {left:<32} {right}", file=out)
    from .workloads.operations import (
        PREFIXES,
        insert_full_publication_op,
    )

    request = insert_full_publication_op(12, 6, 5, 4, 3)
    print("\nListing-15-style request:", file=out)
    result = mediator.update(request)
    print("translated SQL:", file=out)
    for line in result.sql():
        print("  " + line, file=out)
    print(f"\n{len(mediator.dump())} triples in the mediated graph", file=out)
    return 0


def _parse_address(text: str) -> tuple:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(
            f"invalid address {text!r}: expected HOST:PORT"
        )
    return host, int(port)


def _cmd_serve(args, out) -> int:
    from .server.endpoint import OntoAccessEndpoint

    if args.service_latency:
        from .faults import INJECTOR

        INJECTOR.inject("executor:scan", latency=args.service_latency)

    replica = None
    shipper = None
    detector = None
    promoter = None
    promoted_shippers: list = []  # at most one; a cell the closure can fill
    endpoint_cell: list = []  # filled once the endpoint exists (below)
    if args.replica_of:
        from .replication import PrimaryLossDetector, Replica

        db = None
        if getattr(args, "data_dir", None):
            # A durable replica journals what it applies: it can be
            # promoted without losing its prefix, and a deposed primary
            # restarted with the same --data-dir rejoins here — its
            # divergent tail is truncated against the new primary.
            db = Database(data_dir=args.data_dir, sync_mode=args.sync_mode)
        replica = Replica(
            _parse_address(args.replica_of),
            db=db,
            heartbeat_grace=args.heartbeat_grace,
        ).start()
        if not replica.wait_ready(args.bootstrap_timeout):
            replica.close()
            raise ReproError(
                f"replica did not catch up to {args.replica_of} within "
                f"{args.bootstrap_timeout:g}s"
            )
        db = replica.db
        mediator = OntoAccess(db, _select_mapping(args, db))

        def promote_now() -> dict:
            # Shared by POST /admin/promote and the primary-loss
            # detector; Replica.promote is idempotent under its own
            # lock, so a race between the two is harmless.
            record = replica.promote(
                data_dir=getattr(args, "data_dir", None),
                sync_mode=args.sync_mode,
            )
            print(
                f"promoted to primary at epoch {record['epoch']}", file=out
            )
            if args.replication_port is not None and not promoted_shippers:
                from .replication import LogShipper

                promoted = LogShipper(
                    replica.db,
                    host=args.host,
                    port=args.replication_port,
                    heartbeat_interval=args.heartbeat_interval,
                    min_sync_replicas=args.sync_replicas,
                    ack_timeout=args.ack_timeout,
                ).start()
                promoted_shippers.append(promoted)
                if endpoint_cell:
                    # /metrics follows the role change: the promoted
                    # shipper's counters replace the (absent) old ones.
                    endpoint_cell[0].shipper = promoted
                ship_host, ship_port = promoted.address
                print(
                    f"replication log shipper at {ship_host}:{ship_port}",
                    file=out,
                )
            out.flush()
            return record

        promoter = promote_now
        if args.promote_on_primary_loss:
            detector = PrimaryLossDetector(
                replica, args.primary_loss_timeout, promote_now
            ).start()
    else:
        mediator = _build_mediator(args)
        if args.replication_port is not None:
            from .replication import LogShipper

            def _deposed(epoch: int) -> None:
                # Fenced by a promoted replica: refuse writes from here
                # on so no client can split-brain this lineage.
                mediator.db.read_only = True
                print(
                    f"fenced by replication epoch {epoch}: "
                    "this primary is now read-only",
                    file=out,
                )
                out.flush()

            shipper = LogShipper(
                mediator.db,
                host=args.host,
                port=args.replication_port,
                heartbeat_interval=args.heartbeat_interval,
                min_sync_replicas=args.sync_replicas,
                ack_timeout=args.ack_timeout,
                on_deposed=_deposed,
            ).start()

    access_log_file = None
    if args.access_log == "-":
        access_log = sys.stderr
    elif args.access_log:
        access_log_file = open(args.access_log, "a", encoding="utf-8")
        access_log = access_log_file
    else:
        access_log = None

    endpoint = OntoAccessEndpoint(
        mediator,
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        queue_timeout=args.queue_timeout,
        default_timeout=args.request_timeout or None,
        max_connections=args.max_connections,
        max_body_bytes=args.max_body_bytes,
        retry_after=args.retry_after,
        replica=replica,
        max_replica_lag=args.max_replica_lag if replica is not None else None,
        promoter=promoter,
        shipper=shipper,
        slow_query_threshold=args.slow_query_threshold,
        access_log=access_log,
    )
    endpoint_cell.append(endpoint)
    if promoted_shippers:
        # Promotion raced endpoint construction (primary-loss detector
        # fired during bootstrap): attach the shipper now.
        endpoint.shipper = promoted_shippers[0]
    endpoint.start()
    print(f"OntoAccess endpoint at {endpoint.url}", file=out)
    if shipper is not None:
        host, port = shipper.address
        print(f"replication log shipper at {host}:{port}", file=out)
    if replica is not None:
        print(
            f"read replica of {args.replica_of} "
            f"(max lag {args.max_replica_lag:g}s)",
            file=out,
        )
        if args.promote_on_primary_loss:
            print(
                "auto-promote after "
                f"{args.primary_loss_timeout:g}s of primary silence",
                file=out,
            )
    print(
        "POST /update, POST /query, GET /dump, GET /mapping, GET /health, "
        "GET /metrics",
        file=out,
    )
    out.flush()  # a parent process may be parsing the announced ports
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        if detector is not None:
            detector.stop()
        endpoint.stop()
        if shipper is not None:
            shipper.stop()
        for promoted in promoted_shippers:
            promoted.stop()
        if replica is not None:
            replica.close()
        else:
            mediator.db.close()
        if access_log_file is not None:
            access_log_file.close()
    return 0


def _cmd_update(args, out) -> int:
    mediator = _build_mediator(args)
    try:
        request = _read(args.request)
        if args.dry_run:
            for line in mediator.translate_sql(request):
                print(line, file=out)
            return 0
        try:
            result = mediator.update(request)
        except TranslationError as exc:
            from .core.feedback import error_graph

            print(to_turtle(error_graph(exc)), file=out)
            return 1
        for line in result.sql():
            print(line, file=out)
        print(
            f"-- {result.statements_executed()} statement(s) executed", file=out
        )
        return 0
    finally:
        mediator.db.close()


def _cmd_query(args, out) -> int:
    mediator = _build_mediator(args)
    try:
        result = mediator.query(_read(args.query))
        if isinstance(result, bool):
            print("true" if result else "false", file=out)
        elif isinstance(result, Graph):
            print(to_turtle(result), file=out)
        else:
            from .server.protocol import render_select_result

            print(render_select_result(result), end="", file=out)
        return 0
    finally:
        mediator.db.close()


def _cmd_dump(args, out) -> int:
    mediator = _build_mediator(args)
    try:
        print(to_turtle(mediator.dump()), file=out)
        return 0
    finally:
        mediator.db.close()


def _cmd_checkpoint(args, out) -> int:
    db = Database(data_dir=args.data_dir, sync_mode=args.sync_mode)
    try:
        path = db.checkpoint()
        print(f"checkpoint written: {path}", file=out)
        tables = ", ".join(
            f"{name}({db.row_count(name)})" for name in db.schema.table_names()
        ) or "no tables"
        print(f"-- {tables}", file=out)
        return 0
    finally:
        db.close()


def _cmd_mapping(args, out) -> int:
    db = _open_database(args)
    try:
        return _cmd_mapping_body(args, db, out)
    finally:
        db.close()


def _cmd_mapping_body(args, db, out) -> int:
    if args.validate:
        mapping = parse_mapping(_read(args.validate))
        problems = validate_mapping(mapping, db, raise_on_error=False)
        if problems:
            for problem in problems:
                print(f"PROBLEM: {problem}", file=out)
            return 1
        print("mapping is consistent with the schema", file=out)
        return 0
    print(mapping_to_turtle(_select_mapping(args, db)), file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
