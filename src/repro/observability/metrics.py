"""Process-wide metrics registry with Prometheus text exposition (ISSUE 10).

Three primitives, all engineered so the *hot path* (incrementing) never
takes a lock:

* :class:`Counter` — monotonically increasing, per-thread sharded the
  same way the endpoint's request counters are: each thread owns a cell
  it alone mutates (``cell[0] += n`` under the GIL), a lock is taken only
  once per (metric, thread) to register the cell, and cells of dead
  threads are folded into a base value at read time.
* :class:`Gauge` — a point-in-time value.  Either set explicitly
  (last-write-wins, no lock) or backed by a callback evaluated at scrape
  time — the export path for state that already lives elsewhere
  (admission-gate depth, WAL status, replica lag) without double
  bookkeeping on the hot path.
* :class:`Histogram` — pre-bucketed: bucket bounds are fixed at
  construction, ``observe`` is a bisect plus one sharded-cell increment.

Labelled children are created once (under a lock) and cached; steady
state is a dict hit.  Rendering walks the registry and produces the
Prometheus text format (``# HELP`` / ``# TYPE`` / samples), which
:func:`lint_exposition` can check — the same linter CI runs against a
live ``/metrics`` scrape.

The scrape itself fires the ``obs:export`` fault-injection site so the
chaos suite can prove a failing or slow exporter never stalls or poisons
the serving path (the endpoint maps the failure to a plain 503).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..faults import INJECTOR

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "LATENCY_BUCKETS",
    "lint_exposition",
    "render_exposition",
]

#: Default latency buckets (seconds): 100us .. 10s, roughly 1-2.5-5 per
#: decade — wide enough for point queries and slow scans alike.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _labels_text(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _ShardedCells:
    """Per-thread mutable cells with dead-thread folding.

    Each thread gets one list of floats it alone mutates; ``total``
    folds cells whose owning thread has exited into a base vector so
    short-lived handler threads never leak cells.
    """

    __slots__ = ("_lock", "_local", "_cells", "_base", "_width")

    def __init__(self, width: int) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        #: thread -> cell; registration is the only locked operation.
        self._cells: Dict[threading.Thread, List[float]] = {}
        self._base = [0.0] * width
        self._width = width

    def cell(self) -> List[float]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = [0.0] * self._width
            self._local.cell = cell
            with self._lock:
                self._cells[threading.current_thread()] = cell
        return cell

    def total(self) -> List[float]:
        with self._lock:
            dead = [t for t in self._cells if not t.is_alive()]
            for thread in dead:
                cell = self._cells.pop(thread)
                for i, v in enumerate(cell):
                    self._base[i] += v
            out = list(self._base)
            for cell in self._cells.values():
                for i, v in enumerate(cell):
                    out[i] += v
            return out


class _Metric:
    """Shared child-management for labelled metrics."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "_Metric"] = {}

    def labels(self, *values) -> "_Metric":
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"value(s), got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self) -> "_Metric":
        raise NotImplementedError

    def _sample_groups(self) -> Iterable[Tuple[Tuple[str, ...], "_Metric"]]:
        if self.labelnames:
            with self._lock:
                return list(self._children.items())
        return [((), self)]

    def samples(self) -> List[Tuple[str, Sequence[str], Sequence[str], float]]:
        """(sample name, label names, label values, value) tuples."""
        raise NotImplementedError


class Counter(_Metric):
    """Monotonic counter; per-thread sharded, lock-free to increment."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._cells = _ShardedCells(1) if not labelnames else None

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name}: labelled counter needs .labels()")
        self._cells.cell()[0] += amount

    def value(self) -> float:
        return self._cells.total()[0]

    def samples(self):
        out = []
        for key, child in self._sample_groups():
            out.append((self.name, self.labelnames, key, child.value()))
        return out


class Gauge(_Metric):
    """Point-in-time value: set explicitly or computed at scrape time."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> "Gauge":
        """Back this gauge by ``fn``, evaluated at every scrape."""
        self._fn = fn
        return self

    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def samples(self):
        out = []
        for key, child in self._sample_groups():
            out.append((self.name, self.labelnames, key, child.value()))
        return out


class Histogram(_Metric):
    """Pre-bucketed histogram; observe = bisect + sharded increment."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        # cells: one count per finite bucket, +Inf count, then the sum.
        self._cells = (
            _ShardedCells(len(self.buckets) + 2) if not labelnames else None
        )

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name}: labelled histogram needs .labels()")
        cell = self._cells.cell()
        cell[bisect_left(self.buckets, value)] += 1.0
        cell[-1] += value

    def samples(self):
        out = []
        for key, child in self._sample_groups():
            totals = child._cells.total()
            cumulative = 0.0
            names = self.labelnames + ("le",)
            for bound, count in zip(child.buckets, totals):
                cumulative += count
                out.append(
                    (self.name + "_bucket", names,
                     key + (_format_value(bound),), cumulative)
                )
            cumulative += totals[len(child.buckets)]
            out.append((self.name + "_bucket", names, key + ("+Inf",), cumulative))
            out.append((self.name + "_count", self.labelnames, key, cumulative))
            out.append((self.name + "_sum", self.labelnames, key, totals[-1]))
        return out


class MetricsRegistry:
    """An ordered collection of metrics with a text exposition renderer.

    The module-level :data:`REGISTRY` holds the process-wide hot-path
    metrics (request counts, latency histograms, executor row counters);
    components with per-instance state (the endpoint, a replica) build a
    private registry of callback gauges and render both together via
    :func:`render_exposition`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered "
                        f"as {existing.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help, labelnames))  # type: ignore[return-value]

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self.register(Gauge(name, help, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self.register(Histogram(name, help, labelnames, buckets))  # type: ignore[return-value]

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def render(self) -> str:
        return render_exposition([self])


def render_exposition(registries: Sequence[MetricsRegistry]) -> str:
    """Prometheus text format over one or more registries.

    Fires the ``obs:export`` fault site first: an armed error rule makes
    the whole scrape fail *here*, before any state is touched, so the
    endpoint can prove export failures are isolated from serving.
    """
    if INJECTOR.armed:
        INJECTOR.fire("obs:export")
    lines: List[str] = []
    for registry in registries:
        for metric in registry.metrics():
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for name, labelnames, labelvalues, value in metric.samples():
                lines.append(
                    f"{name}{_labels_text(labelnames, labelvalues)} "
                    f"{_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)( [0-9]+)?$"
)


def lint_exposition(text: str) -> List[str]:
    """Minimal Prometheus text-format checker; returns problems found.

    Checks what a scraper would choke on: sample lines must parse, every
    sample must follow a ``# TYPE`` for its family, values must be
    numbers, and ``_bucket`` samples need an ``le`` label.  Used by the
    unit tests and by the CI step that scrapes a live server.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_OK.match(parts[2]):
                problems.append(f"line {lineno}: malformed TYPE line")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_count", "_sum"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
        if family not in typed:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(f"line {lineno}: bad value {value!r}")
        if name.endswith("_bucket") and typed.get(family) == "histogram":
            labels = match.group("labels") or ""
            if 'le="' not in labels:
                problems.append(f"line {lineno}: bucket without le label")
    return problems


#: The process-wide registry for hot-path metrics.
REGISTRY = MetricsRegistry()

# -- the shared metric families, defined once at import -----------------

#: HTTP requests completed, by operation and status code.
REQUESTS = REGISTRY.counter(
    "repro_requests_total",
    "HTTP requests completed, by operation and final status code.",
    ("op", "status"),
)

#: End-to-end request latency (admission wait through serialization).
REQUEST_SECONDS = REGISTRY.histogram(
    "repro_request_seconds",
    "End-to-end request latency in seconds, by operation.",
    ("op",),
)

#: Time a request spent waiting for an admission slot.
QUEUE_WAIT_SECONDS = REGISTRY.histogram(
    "repro_queue_wait_seconds",
    "Admission-queue wait in seconds for admitted requests.",
)

#: Rows flowing out of the executor, by statement kind.
EXECUTOR_ROWS = REGISTRY.counter(
    "repro_executor_rows_total",
    "Rows produced or affected by executor statements, by kind.",
    ("op",),
)

#: Rows the planner's base access considered (batched per statement).
ROWS_SCANNED = REGISTRY.counter(
    "repro_executor_rows_scanned_total",
    "Candidate rows examined by plan base accesses.",
)

#: Session-level operations, by kind (query/update/batch).
SESSION_OPS = REGISTRY.counter(
    "repro_session_operations_total",
    "Operations executed through the Session API, by kind.",
    ("kind",),
)

#: Requests that crossed the slow-query threshold.
SLOW_QUERIES = REGISTRY.counter(
    "repro_slow_queries_total",
    "Requests recorded in the slow-query log.",
)
