"""Unified observability layer (ISSUE 10).

One subsystem, three concerns, threaded through every layer of the
engine:

* :mod:`repro.observability.metrics` — lock-cheap Counter / Gauge /
  Histogram primitives (per-thread sharding, pre-bucketed latency
  histograms) behind a registry with Prometheus text exposition; the
  endpoint serves it at ``GET /metrics``.
* :mod:`repro.observability.tracing` — thread-local request ids
  (``X-Request-Id``), per-request trace records for the structured
  access log, and the EXPLAIN ANALYZE probe that collects per-operator
  elapsed/rows/loops inside compiled plans.
* :mod:`repro.observability.querylog` — the ring-buffered slow-query
  log behind ``GET /admin/slow-queries``.

Everything is engineered to cost nothing when disarmed: incrementing a
counter is one thread-local cell update, trace/probe checks are a
single thread-local read per statement, and instance state (WAL status,
replica lag, admission depth) is exported through scrape-time callbacks
instead of hot-path double bookkeeping.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    REGISTRY,
    lint_exposition,
    render_exposition,
)
from .querylog import QueryLog
from .tracing import (
    AnalyzeProbe,
    analyze_scope,
    annotate,
    current_probe,
    current_request_id,
    current_trace,
    new_request_id,
    request_scope,
    trace_scope,
)

__all__ = [
    "AnalyzeProbe",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "QueryLog",
    "REGISTRY",
    "analyze_scope",
    "annotate",
    "current_probe",
    "current_request_id",
    "current_trace",
    "lint_exposition",
    "new_request_id",
    "render_exposition",
    "request_scope",
    "trace_scope",
]
