"""Ring-buffered slow-query log (ISSUE 10).

Every request produces one structured record (assembled by the endpoint
from its trace scope); records whose total latency crosses the
configured threshold are teed into a bounded ring buffer served at
``GET /admin/slow-queries``.  The buffer is a ``deque(maxlen=...)``
under a lock — O(1) appends, the capacity evicts oldest-first, and a
snapshot returns newest-first so the most recent offender is the first
thing an operator sees.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .metrics import SLOW_QUERIES

__all__ = ["QueryLog"]


class QueryLog:
    """Bounded, threshold-gated record of the slowest requests."""

    def __init__(
        self, capacity: int = 128, threshold: Optional[float] = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        #: Seconds of total request latency above which a record is
        #: kept; None disables the log entirely.
        self.threshold = threshold
        self._lock = threading.Lock()
        self._entries: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, entry: Dict[str, Any]) -> bool:
        """Keep ``entry`` if it crosses the threshold; True when kept.

        The comparison key is ``entry["total_s"]`` (missing = 0, never
        kept unless the threshold is 0).
        """
        threshold = self.threshold
        if threshold is None:
            return False
        if float(entry.get("total_s") or 0.0) < threshold:
            return False
        with self._lock:
            self._entries.append(entry)
            self.recorded += 1
        SLOW_QUERIES.inc()
        return True

    def snapshot(self) -> List[Dict[str, Any]]:
        """Current entries, newest first."""
        with self._lock:
            return list(reversed(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def status(self) -> Dict[str, Any]:
        with self._lock:
            count = len(self._entries)
        return {
            "threshold_s": self.threshold,
            "capacity": self.capacity,
            "recorded_total": self.recorded,
            "count": count,
        }
