"""Request tracing and operator-level plan instrumentation (ISSUE 10).

Three thread-local contexts, all following the :mod:`repro.deadline`
pattern — installed by a context manager at the serving boundary, read
by cheap accessor functions deep in the stack, and costing one
``getattr`` on a thread-local when inactive:

* **Request id** — :func:`request_scope` carries the ``X-Request-Id``
  (caller-supplied or :func:`new_request_id`) through
  Session → executor → error responses, so one id joins the client's
  retries, the server's access-log line, and the slow-query entry.
* **Trace record** — :func:`trace_scope` opens a mutable dict that any
  layer may :func:`annotate` (rows, used_sql, backend); the endpoint
  turns it into the structured JSON access-log line.  ``annotate`` is a
  no-op (one thread-local read) when no trace is active.
* **Analyze probe** — :func:`analyze_scope` arms per-operator
  timing/row/loop collection inside the planner's compiled plans (the
  EXPLAIN ANALYZE machinery).  Disarmed, plans pay a single
  :func:`current_probe` check per *statement*, never per row.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "AnalyzeProbe",
    "OperatorStats",
    "analyze_scope",
    "annotate",
    "current_probe",
    "current_request_id",
    "current_trace",
    "new_request_id",
    "request_scope",
    "trace_scope",
]

_local = threading.local()


# ---------------------------------------------------------------------------
# request ids
# ---------------------------------------------------------------------------

def new_request_id() -> str:
    """A fresh 16-hex-char request id."""
    return uuid.uuid4().hex[:16]


def current_request_id() -> Optional[str]:
    """The request id governing the current thread, or None."""
    return getattr(_local, "request_id", None)


def sanitize_request_id(raw: Optional[str]) -> Optional[str]:
    """A header-safe version of a caller-supplied id, or None.

    Ids are echoed into response headers and log lines, so control
    characters are stripped and length is capped.
    """
    if not raw:
        return None
    cleaned = "".join(ch for ch in raw if 32 <= ord(ch) < 127)[:128].strip()
    return cleaned or None


@contextmanager
def request_scope(request_id: Optional[str] = None) -> Iterator[str]:
    """Install a request id for the ``with`` block (generated if None).

    Nested scopes keep the outer id: a client helper that opens a scope
    around a logical operation keeps one id across retries and failover.
    """
    outer = current_request_id()
    inner = outer or request_id or new_request_id()
    _local.request_id = inner
    try:
        yield inner
    finally:
        _local.request_id = outer


# ---------------------------------------------------------------------------
# per-request trace records
# ---------------------------------------------------------------------------

def current_trace() -> Optional[Dict[str, Any]]:
    return getattr(_local, "trace", None)


def annotate(**fields: Any) -> None:
    """Merge fields into the active trace record (no-op without one)."""
    trace = getattr(_local, "trace", None)
    if trace is not None:
        trace.update(fields)


@contextmanager
def trace_scope(**initial: Any) -> Iterator[Dict[str, Any]]:
    """Open a mutable trace record for the ``with`` block."""
    outer = current_trace()
    trace: Dict[str, Any] = dict(initial)
    _local.trace = trace
    try:
        yield trace
    finally:
        _local.trace = outer


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE probe
# ---------------------------------------------------------------------------

class OperatorStats:
    """Timing and cardinality for one plan operator.

    ``elapsed_s`` is *inclusive* pipeline time: how long callers spent
    pulling rows out of this operator, including everything beneath it —
    the same convention EXPLAIN ANALYZE uses elsewhere.  ``loops``
    counts how many times the operator was (re)opened.
    """

    __slots__ = ("describe", "elapsed_s", "rows", "loops")

    def __init__(self, describe: str) -> None:
        self.describe = describe
        self.elapsed_s = 0.0
        self.rows = 0
        self.loops = 0

    def report(self) -> Dict[str, Any]:
        return {
            "operator": self.describe,
            "elapsed_us": round(self.elapsed_s * 1e6, 3),
            "rows": self.rows,
            "loops": self.loops,
        }


class AnalyzeProbe:
    """Collects per-operator stats for the statements run under it."""

    def __init__(self) -> None:
        self._stats: Dict[Any, OperatorStats] = {}
        self._order: List[OperatorStats] = []
        self._plans_seen: Dict[int, bool] = {}
        self.plan: List[str] = []
        self.elapsed_s = 0.0
        self.rows = 0

    def operator(self, key: Any, describe: str) -> OperatorStats:
        """The stats cell for one operator, keyed by identity, so a
        re-executed plan accumulates loops instead of duplicating."""
        stats = self._stats.get(key)
        if stats is None:
            stats = OperatorStats(describe)
            self._stats[key] = stats
            self._order.append(stats)
        return stats

    def note_plan(self, plan: Any, lines: List[str]) -> None:
        """Record a plan's EXPLAIN tree once, even when re-executed."""
        if id(plan) not in self._plans_seen:
            self._plans_seen[id(plan)] = True
            self.plan.extend(lines)

    def timed(self, iterator: Iterator, stats: OperatorStats) -> Iterator:
        """Wrap an operator's output iterator with timing/row counting."""
        stats.loops += 1
        clock = time.perf_counter
        while True:
            start = clock()
            try:
                item = next(iterator)
            except StopIteration:
                stats.elapsed_s += clock() - start
                return
            stats.elapsed_s += clock() - start
            stats.rows += 1
            yield item

    def operators(self) -> List[Dict[str, Any]]:
        return [stats.report() for stats in self._order]

    def report(self) -> Dict[str, Any]:
        return {
            "plan": list(self.plan),
            "operators": self.operators(),
            "rows": self.rows,
            "elapsed_us": round(self.elapsed_s * 1e6, 3),
        }


def current_probe() -> Optional[AnalyzeProbe]:
    """The analyze probe armed for this thread, or None (the fast path)."""
    return getattr(_local, "probe", None)


@contextmanager
def analyze_scope() -> Iterator[AnalyzeProbe]:
    """Arm operator-level instrumentation for the ``with`` block."""
    outer = current_probe()
    probe = AnalyzeProbe()
    _local.probe = probe
    try:
        yield probe
    finally:
        _local.probe = outer
