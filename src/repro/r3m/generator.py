"""Automatic mapping generation from a database schema.

Paper, end of Section 4: "A basic R3M mapping can be generated
automatically from the database schema if it explicitly provides
information about foreign key relationships.  The only part of the mapping
definition that cannot easily be automated is the assignment of domain
ontology terms."

:func:`generate_mapping` reflects the schema and emits a complete mapping:

* each non-link table maps to a class (auto-minted in a vocabulary
  namespace, or supplied via ``class_overrides``);
* each attribute maps to a data property, FK attributes to object
  properties (auto-minted, or supplied via ``property_overrides``);
* tables shaped like link tables (exactly two FKs plus an optional
  surrogate key) become ``LinkTableMap``s;
* the four constraint kinds are carried over from the catalog.

The feasibility-study mapping (Table 1) is produced by calling this with
the FOAF/DC/ONT overrides — see :mod:`repro.workloads.publication`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..rdf.namespace import Namespace
from ..rdf.terms import URIRef
from ..rdb.engine import Database
from ..rdb.introspect import TableInfo, reflect
from .model import (
    DEFAULT,
    FOREIGN_KEY,
    NOT_NULL,
    PRIMARY_KEY,
    AttributeMapping,
    Constraint,
    DatabaseMapping,
    LinkTableMapping,
    TableMapping,
)
from .uripattern import URIPattern

__all__ = ["generate_mapping"]

#: Default vocabulary namespace for auto-minted classes and properties.
AUTO_VOCAB = Namespace("http://example.org/vocab#")


def generate_mapping(
    db: Database,
    uri_prefix: str = "http://example.org/db/",
    vocab: Namespace = AUTO_VOCAB,
    class_overrides: Optional[Dict[str, URIRef]] = None,
    property_overrides: Optional[Dict[Tuple[str, str], URIRef]] = None,
    link_property_overrides: Optional[Dict[str, URIRef]] = None,
    value_pattern_overrides: Optional[Dict[Tuple[str, str], str]] = None,
    uri_pattern_overrides: Optional[Dict[str, str]] = None,
    detect_link_tables: bool = True,
) -> DatabaseMapping:
    """Generate a basic R3M mapping for every table in ``db``.

    ``class_overrides`` maps table names to ontology classes;
    ``property_overrides`` maps (table, attribute) pairs to properties;
    ``link_property_overrides`` maps link-table names to object properties;
    ``value_pattern_overrides`` maps (table, attribute) pairs to value
    patterns like ``"mailto:%%email%%"`` (URI-valued data attributes);
    ``uri_pattern_overrides`` maps table names to uriPattern texts (the
    paper abbreviates the publication pattern to ``pub%%id%%``).
    """
    class_overrides = class_overrides or {}
    property_overrides = property_overrides or {}
    link_property_overrides = link_property_overrides or {}
    value_pattern_overrides = value_pattern_overrides or {}
    uri_pattern_overrides = uri_pattern_overrides or {}

    mapping = DatabaseMapping(
        uri_prefix=uri_prefix,
        jdbc_url="python:repro.rdb",
        jdbc_driver="repro.rdb.Database",
    )
    infos = reflect(db)
    for info in infos:
        if detect_link_tables and info.is_link_table():
            mapping.add_link_table(
                _link_table_mapping(info, vocab, link_property_overrides)
            )
        else:
            mapping.add_table(
                _table_mapping(
                    info,
                    uri_prefix,
                    vocab,
                    class_overrides,
                    property_overrides,
                    value_pattern_overrides,
                    uri_pattern_overrides,
                )
            )
    return mapping


def _table_mapping(
    info: TableInfo,
    uri_prefix: str,
    vocab: Namespace,
    class_overrides: Dict[str, URIRef],
    property_overrides: Dict[Tuple[str, str], URIRef],
    value_pattern_overrides: Dict[Tuple[str, str], str],
    uri_pattern_overrides: Dict[str, str],
) -> TableMapping:
    cls = class_overrides.get(info.name, vocab[_camel(info.name)])
    attributes = []
    for column in info.columns:
        constraints = _constraints(column)
        # PK attributes that appear in the URI pattern are typically not
        # mapped to a property of their own (the URI carries them), matching
        # the paper's use case where `id` has no ontology property.
        prop: Optional[URIRef]
        if column.is_primary_key and column.name in _pattern_attributes(info):
            prop = None
            is_object = False
        else:
            prop = property_overrides.get(
                (info.name, column.name), vocab[f"{info.name}_{column.name}"]
            )
            is_object = column.references is not None
        pattern_text = value_pattern_overrides.get((info.name, column.name))
        attributes.append(
            AttributeMapping(
                attribute_name=column.name,
                property=prop,
                is_object_property=is_object,
                constraints=constraints,
                value_pattern=(
                    URIPattern(pattern_text) if pattern_text else None
                ),
            )
        )
    pattern = uri_pattern_overrides.get(info.name, _pattern_text(info))
    return TableMapping(
        table_name=info.name,
        maps_to_class=cls,
        uri_pattern=URIPattern(pattern, prefix=uri_prefix),
        attributes=attributes,
        checks=tuple(info.checks),
    )


def _link_table_mapping(
    info: TableInfo,
    vocab: Namespace,
    link_property_overrides: Dict[str, URIRef],
) -> LinkTableMapping:
    fks = info.foreign_key_columns()
    subject_col, object_col = fks[0], fks[1]
    prop = link_property_overrides.get(
        info.name, vocab[_camel(info.name, lower_first=True)]
    )
    return LinkTableMapping(
        table_name=info.name,
        property=prop,
        subject_attribute=AttributeMapping(
            attribute_name=subject_col.name,
            constraints=(Constraint(FOREIGN_KEY, references=subject_col.references),),
        ),
        object_attribute=AttributeMapping(
            attribute_name=object_col.name,
            constraints=(Constraint(FOREIGN_KEY, references=object_col.references),),
        ),
    )


def _constraints(column) -> Tuple[Constraint, ...]:
    constraints = []
    if column.is_primary_key:
        constraints.append(Constraint(PRIMARY_KEY))
    if column.references is not None:
        constraints.append(Constraint(FOREIGN_KEY, references=column.references))
    if column.is_not_null:
        constraints.append(Constraint(NOT_NULL))
    if column.has_default:
        constraints.append(Constraint(DEFAULT, value=column.default))
    return tuple(constraints)


def _pattern_text(info: TableInfo) -> str:
    """``author%%id%%``-style pattern over the primary key columns."""
    pk = info.primary_key or (info.columns[0].name,)
    placeholders = "_".join(f"%%{col}%%" for col in pk)
    return f"{info.name}{placeholders}"


def _pattern_attributes(info: TableInfo) -> set:
    return set(info.primary_key or (info.columns[0].name,))


def _camel(name: str, lower_first: bool = False) -> str:
    parts = [p for p in name.split("_") if p]
    text = "".join(p.capitalize() for p in parts)
    if lower_first and text:
        text = text[0].lower() + text[1:]
    return text
