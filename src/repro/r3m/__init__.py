"""R3M: the update-aware RDB-to-RDF mapping language (paper Section 4).

Public API::

    from repro.r3m import (
        DatabaseMapping, TableMapping, AttributeMapping, LinkTableMapping,
        Constraint, URIPattern,
        parse_mapping, mapping_to_turtle, generate_mapping, validate_mapping,
    )
"""

from . import vocabulary
from .generator import generate_mapping
from .model import (
    DEFAULT,
    FOREIGN_KEY,
    NOT_NULL,
    PRIMARY_KEY,
    AttributeMapping,
    Constraint,
    DatabaseMapping,
    LinkTableMapping,
    TableMapping,
)
from .parser import parse_mapping, parse_mapping_graph
from .serialize import MAP, mapping_to_graph, mapping_to_turtle
from .uripattern import URIPattern
from .validator import validate_mapping

__all__ = [
    "AttributeMapping",
    "Constraint",
    "DEFAULT",
    "DatabaseMapping",
    "FOREIGN_KEY",
    "LinkTableMapping",
    "MAP",
    "NOT_NULL",
    "PRIMARY_KEY",
    "TableMapping",
    "URIPattern",
    "generate_mapping",
    "mapping_to_graph",
    "mapping_to_turtle",
    "parse_mapping",
    "parse_mapping_graph",
    "validate_mapping",
    "vocabulary",
]
