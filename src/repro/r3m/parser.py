"""Parse an R3M mapping from its RDF (Turtle) representation.

The mapping language "is expressed in RDF and uses the R3M ontology"
(Section 4); this module reads the RDF form shown in Listings 1–5 into the
:mod:`repro.r3m.model` structures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..errors import MappingParseError
from ..rdf.graph import Graph
from ..rdf.namespace import RDF
from ..rdf.terms import BNode, Literal, Term, URIRef
from ..rdf.turtle import parse_turtle
from . import vocabulary as voc
from .model import (
    DEFAULT,
    FOREIGN_KEY,
    NOT_NULL,
    PRIMARY_KEY,
    AttributeMapping,
    Constraint,
    DatabaseMapping,
    LinkTableMapping,
    TableMapping,
)
from .uripattern import URIPattern

__all__ = ["parse_mapping", "parse_mapping_graph"]


def parse_mapping(turtle_text: str) -> DatabaseMapping:
    """Parse an R3M mapping document (Turtle text)."""
    return parse_mapping_graph(parse_turtle(turtle_text))


def parse_mapping_graph(graph: Graph) -> DatabaseMapping:
    """Extract the R3M mapping from an RDF graph."""
    roots = list(graph.subjects(RDF.type, voc.DATABASE_MAP))
    if not roots:
        raise MappingParseError("no r3m:DatabaseMap found")
    if len(roots) > 1:
        raise MappingParseError("multiple r3m:DatabaseMap nodes found")
    root = roots[0]

    mapping = DatabaseMapping(
        uri_prefix=_string(graph, root, voc.URI_PREFIX, default=""),
        jdbc_driver=_string(graph, root, voc.JDBC_DRIVER, default=""),
        jdbc_url=_string(graph, root, voc.JDBC_URL, default=""),
        username=_string(graph, root, voc.USERNAME, default=""),
        password=_string(graph, root, voc.PASSWORD, default=""),
    )

    # The referenced-table names of FK constraints point at *map nodes*;
    # resolve them to table names in a second pass.
    node_to_table_name: Dict[Term, str] = {}
    table_nodes = list(graph.objects(root, voc.HAS_TABLE))
    if not table_nodes:
        raise MappingParseError("DatabaseMap lists no tables (r3m:hasTable)")
    for node in table_nodes:
        name = _string(graph, node, voc.HAS_TABLE_NAME)
        if name is None:
            raise MappingParseError(
                f"table map {node} lacks r3m:hasTableName"
            )
        node_to_table_name[node] = name

    for node in table_nodes:
        node_type = graph.value(node, RDF.type, None)
        if node_type == voc.LINK_TABLE_MAP:
            mapping.add_link_table(
                _parse_link_table(graph, node, node_to_table_name)
            )
        elif node_type == voc.TABLE_MAP:
            mapping.add_table(
                _parse_table(graph, node, mapping.uri_prefix, node_to_table_name)
            )
        else:
            raise MappingParseError(
                f"table map {node} has unknown type {node_type}"
            )
    return mapping


def _parse_table(
    graph: Graph,
    node: Term,
    uri_prefix: str,
    node_to_table_name: Dict[Term, str],
) -> TableMapping:
    table_name = node_to_table_name[node]
    cls = graph.value(node, voc.MAPS_TO_CLASS, None)
    if not isinstance(cls, URIRef):
        raise MappingParseError(
            f"table map for {table_name!r} lacks r3m:mapsToClass"
        )
    pattern_text = _string(graph, node, voc.URI_PATTERN)
    if pattern_text is None:
        raise MappingParseError(
            f"table map for {table_name!r} lacks r3m:uriPattern"
        )
    attributes = [
        _parse_attribute(graph, attr_node, node_to_table_name)
        for attr_node in graph.objects(node, voc.HAS_ATTRIBUTE)
    ]
    attributes.sort(key=lambda a: a.attribute_name)
    checks = []
    for constraint_node in graph.objects(node, voc.HAS_CONSTRAINT):
        if graph.value(constraint_node, RDF.type, None) == voc.CHECK:
            text = _string(graph, constraint_node, voc.HAS_EXPRESSION)
            if text:
                checks.append(text)
    return TableMapping(
        table_name=table_name,
        maps_to_class=cls,
        uri_pattern=URIPattern(pattern_text, prefix=uri_prefix),
        attributes=attributes,
        checks=tuple(sorted(checks)),
    )


def _parse_link_table(
    graph: Graph, node: Term, node_to_table_name: Dict[Term, str]
) -> LinkTableMapping:
    table_name = node_to_table_name[node]
    prop = graph.value(node, voc.MAPS_TO_OBJECT_PROPERTY, None)
    if not isinstance(prop, URIRef):
        raise MappingParseError(
            f"link table map for {table_name!r} lacks r3m:mapsToObjectProperty"
        )
    subject_node = graph.value(node, voc.HAS_SUBJECT_ATTRIBUTE, None)
    object_node = graph.value(node, voc.HAS_OBJECT_ATTRIBUTE, None)
    if subject_node is None or object_node is None:
        raise MappingParseError(
            f"link table map for {table_name!r} needs both "
            "r3m:hasSubjectAttribute and r3m:hasObjectAttribute"
        )
    return LinkTableMapping(
        table_name=table_name,
        property=prop,
        subject_attribute=_parse_attribute(graph, subject_node, node_to_table_name),
        object_attribute=_parse_attribute(graph, object_node, node_to_table_name),
    )


def _parse_attribute(
    graph: Graph, node: Term, node_to_table_name: Dict[Term, str]
) -> AttributeMapping:
    name = _string(graph, node, voc.HAS_ATTRIBUTE_NAME)
    if name is None:
        raise MappingParseError(f"attribute map {node} lacks r3m:hasAttributeName")

    object_property = graph.value(node, voc.MAPS_TO_OBJECT_PROPERTY, None)
    data_property = graph.value(node, voc.MAPS_TO_DATA_PROPERTY, None)
    if object_property is not None and data_property is not None:
        raise MappingParseError(
            f"attribute {name!r} maps to both an object and a data property"
        )
    prop: Optional[URIRef] = None
    is_object = False
    if isinstance(object_property, URIRef):
        prop = object_property
        is_object = True
    elif isinstance(data_property, URIRef):
        prop = data_property

    constraints: List[Constraint] = []
    for constraint_node in graph.objects(node, voc.HAS_CONSTRAINT):
        constraints.append(
            _parse_constraint(graph, constraint_node, name, node_to_table_name)
        )
    value_pattern_text = _string(graph, node, voc.VALUE_PATTERN)
    return AttributeMapping(
        attribute_name=name,
        property=prop,
        is_object_property=is_object,
        constraints=tuple(constraints),
        value_pattern=(
            URIPattern(value_pattern_text) if value_pattern_text else None
        ),
    )


def _parse_constraint(
    graph: Graph,
    node: Term,
    attribute_name: str,
    node_to_table_name: Dict[Term, str],
) -> Constraint:
    kind = graph.value(node, RDF.type, None)
    if kind == voc.PRIMARY_KEY:
        return Constraint(PRIMARY_KEY)
    if kind == voc.NOT_NULL:
        return Constraint(NOT_NULL)
    if kind == voc.DEFAULT:
        value = graph.value(node, voc.HAS_VALUE, None)
        return Constraint(
            DEFAULT,
            value=value.to_python() if isinstance(value, Literal) else None,
        )
    if kind == voc.FOREIGN_KEY:
        target = graph.value(node, voc.REFERENCES, None)
        if target is None:
            raise MappingParseError(
                f"foreign key on {attribute_name!r} lacks r3m:references"
            )
        # The paper's listings reference the *map node* (map:team); accept a
        # plain string table name as well for hand-written mappings.
        if isinstance(target, Literal):
            table_name = target.lexical
        elif target in node_to_table_name:
            table_name = node_to_table_name[target]
        elif isinstance(target, URIRef):
            table_name = target.local_name()
        else:
            raise MappingParseError(
                f"cannot resolve foreign key target {target} on {attribute_name!r}"
            )
        return Constraint(FOREIGN_KEY, references=table_name)
    raise MappingParseError(
        f"unknown constraint type {kind} on attribute {attribute_name!r}"
    )


def _string(
    graph: Graph, subject: Term, predicate: URIRef, default: Optional[str] = None
) -> Optional[str]:
    value = graph.value(subject, predicate, None)
    if value is None:
        return default
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, URIRef):
        return value.value
    return default
