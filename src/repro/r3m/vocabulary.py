"""The R3M vocabulary (paper Section 4).

Every term the paper's listings use: the three map classes
(``DatabaseMap``, ``TableMap``, ``LinkTableMap``), ``AttributeMap``, the
connection/URI properties, and the four constraint classes
(``PrimaryKey``, ``ForeignKey``, ``NotNull``, ``Default``).
"""

from __future__ import annotations

from ..rdf.namespace import R3M

__all__ = [
    "DATABASE_MAP",
    "TABLE_MAP",
    "LINK_TABLE_MAP",
    "ATTRIBUTE_MAP",
    "JDBC_DRIVER",
    "JDBC_URL",
    "USERNAME",
    "PASSWORD",
    "URI_PREFIX",
    "HAS_TABLE",
    "HAS_TABLE_NAME",
    "MAPS_TO_CLASS",
    "URI_PATTERN",
    "HAS_ATTRIBUTE",
    "HAS_ATTRIBUTE_NAME",
    "MAPS_TO_OBJECT_PROPERTY",
    "MAPS_TO_DATA_PROPERTY",
    "HAS_CONSTRAINT",
    "HAS_SUBJECT_ATTRIBUTE",
    "HAS_OBJECT_ATTRIBUTE",
    "PRIMARY_KEY",
    "FOREIGN_KEY",
    "NOT_NULL",
    "DEFAULT",
    "REFERENCES",
    "HAS_VALUE",
    "VALUE_PATTERN",
    "CHECK",
    "HAS_EXPRESSION",
]

# map node classes
DATABASE_MAP = R3M.DatabaseMap
TABLE_MAP = R3M.TableMap
LINK_TABLE_MAP = R3M.LinkTableMap
ATTRIBUTE_MAP = R3M.AttributeMap

# DatabaseMap properties (Listing 1)
JDBC_DRIVER = R3M.jdbcDriver
JDBC_URL = R3M.jdbcUrl
USERNAME = R3M.username
PASSWORD = R3M.password
URI_PREFIX = R3M.uriPrefix
HAS_TABLE = R3M.hasTable

# TableMap properties (Listing 2)
HAS_TABLE_NAME = R3M.hasTableName
MAPS_TO_CLASS = R3M.mapsToClass
URI_PATTERN = R3M.uriPattern
HAS_ATTRIBUTE = R3M.hasAttribute

# AttributeMap properties (Listing 3)
HAS_ATTRIBUTE_NAME = R3M.hasAttributeName
MAPS_TO_OBJECT_PROPERTY = R3M.mapsToObjectProperty
MAPS_TO_DATA_PROPERTY = R3M.mapsToDataProperty
HAS_CONSTRAINT = R3M.hasConstraint

# LinkTableMap properties (Listing 4)
HAS_SUBJECT_ATTRIBUTE = R3M.hasSubjectAttribute
HAS_OBJECT_ATTRIBUTE = R3M.hasObjectAttribute

# constraint classes and their properties (Listing 3)
PRIMARY_KEY = R3M.PrimaryKey
FOREIGN_KEY = R3M.ForeignKey
NOT_NULL = R3M.NotNull
DEFAULT = R3M.Default
REFERENCES = R3M.references
HAS_VALUE = R3M.hasValue  # the default value carried by a Default constraint

#: Extension: lexical transform for URI-valued data attributes
#: (e.g. "mailto:%%email%%" on the email attribute mapped to foaf:mbox).
VALUE_PATTERN = R3M.valuePattern

#: Extension: per-row CHECK constraints (paper Section 8 future work).
CHECK = R3M.Check
HAS_EXPRESSION = R3M.hasExpression
