"""In-memory model of an R3M mapping (paper Section 4).

The model mirrors the four node kinds of the mapping language:

* :class:`DatabaseMapping` — the root ``r3m:DatabaseMap``: connection
  information, mapping-wide URI prefix, and the table maps.
* :class:`TableMapping` — ``r3m:TableMap``: a table mapped to an ontology
  class, with a URI pattern and attribute maps.
* :class:`AttributeMapping` — ``r3m:AttributeMap``: an attribute mapped to
  a data or object property, carrying its constraints.
* :class:`LinkTableMapping` — ``r3m:LinkTableMap``: an N:M link table
  mapped to an object property via subject/object attributes.

The model is the translator's working representation; it prebuilds lookup
indexes (property → attribute, class → table, URI pattern matching) that
Algorithm 1 consults on every operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import MappingError
from ..rdf.terms import URIRef
from .uripattern import URIPattern

__all__ = [
    "Constraint",
    "AttributeMapping",
    "TableMapping",
    "LinkTableMapping",
    "DatabaseMapping",
    "PRIMARY_KEY",
    "FOREIGN_KEY",
    "NOT_NULL",
    "DEFAULT",
    "CHECK",
]

PRIMARY_KEY = "primary-key"
FOREIGN_KEY = "foreign-key"
NOT_NULL = "not-null"
DEFAULT = "default"
#: Extension beyond the paper's four kinds: per-row CHECK constraints
#: (Section 8 names further constraints like assertions as future work).
CHECK = "check"

_KINDS = (PRIMARY_KEY, FOREIGN_KEY, NOT_NULL, DEFAULT, CHECK)


@dataclass(frozen=True)
class Constraint:
    """One constraint recorded on an attribute map.

    ``references`` names the referenced *table* for foreign keys;
    ``value`` carries the default for DEFAULT constraints.
    """

    kind: str
    references: Optional[str] = None
    value: Any = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise MappingError(f"unknown constraint kind: {self.kind!r}")
        if self.kind == FOREIGN_KEY and not self.references:
            raise MappingError("foreign-key constraint requires a referenced table")


@dataclass
class AttributeMapping:
    """An attribute mapped to an ontology property (or unmapped, for link
    table attributes per Listing 5).

    ``value_pattern`` is a lexical transform for data attributes whose RDF
    representation is a URI rather than a literal: the paper's feasibility
    study maps the ``email`` column to ``foaf:mbox`` whose values are
    ``mailto:`` URIs, yet Listing 10 stores the bare address
    (``'hert@ifi.uzh.ch'``).  A pattern like ``mailto:%%email%%`` captures
    exactly that transform in both directions (store: match the URI and
    extract the value; dump: mint the URI from the stored value).
    """

    attribute_name: str
    property: Optional[URIRef] = None
    is_object_property: bool = False
    constraints: Tuple[Constraint, ...] = ()
    value_pattern: Optional["URIPattern"] = None

    # -- constraint accessors --------------------------------------------------

    def is_primary_key(self) -> bool:
        return any(c.kind == PRIMARY_KEY for c in self.constraints)

    def is_not_null(self) -> bool:
        return any(c.kind == NOT_NULL for c in self.constraints)

    def foreign_key(self) -> Optional[Constraint]:
        for constraint in self.constraints:
            if constraint.kind == FOREIGN_KEY:
                return constraint
        return None

    def references(self) -> Optional[str]:
        fk = self.foreign_key()
        return fk.references if fk else None

    def default(self) -> Optional[Constraint]:
        for constraint in self.constraints:
            if constraint.kind == DEFAULT:
                return constraint
        return None

    def has_default(self) -> bool:
        return self.default() is not None

    def is_required_on_insert(self) -> bool:
        """NOT NULL without DEFAULT → the client must supply a triple
        (paper Section 5.1, step 3)."""
        return self.is_not_null() and not self.has_default()


@dataclass
class TableMapping:
    """A table mapped to an ontology class."""

    table_name: str
    maps_to_class: URIRef
    uri_pattern: URIPattern
    attributes: List[AttributeMapping] = field(default_factory=list)
    #: table-level CHECK constraint expressions (SQL text), recorded so
    #: rejected updates can explain which business rule failed
    checks: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self._by_property: Dict[URIRef, AttributeMapping] = {}
        self._by_name: Dict[str, AttributeMapping] = {}
        for attribute in self.attributes:
            self._by_name[attribute.attribute_name] = attribute
            if attribute.property is not None:
                if attribute.property in self._by_property:
                    raise MappingError(
                        f"table {self.table_name!r}: property "
                        f"{attribute.property} mapped to multiple attributes"
                    )
                self._by_property[attribute.property] = attribute

    def attribute_for_property(self, prop: URIRef) -> Optional[AttributeMapping]:
        return self._by_property.get(prop)

    def attribute_by_name(self, name: str) -> Optional[AttributeMapping]:
        return self._by_name.get(name)

    def mapped_attributes(self) -> List[AttributeMapping]:
        """Attributes that carry a property (appear as triples)."""
        return [a for a in self.attributes if a.property is not None]

    def primary_key_attributes(self) -> List[AttributeMapping]:
        return [a for a in self.attributes if a.is_primary_key()]

    def required_attributes(self) -> List[AttributeMapping]:
        """Attributes a valid INSERT must provide (NOT NULL, no default,
        not supplied by the URI pattern)."""
        pattern_attrs = set(self.uri_pattern.attributes)
        return [
            a
            for a in self.attributes
            if a.is_required_on_insert()
            and a.attribute_name not in pattern_attrs
            and a.property is not None
        ]

    def properties(self) -> List[URIRef]:
        return list(self._by_property)


@dataclass
class LinkTableMapping:
    """An N:M link table mapped to an object property (Listing 4)."""

    table_name: str
    property: URIRef
    subject_attribute: AttributeMapping
    object_attribute: AttributeMapping

    def __post_init__(self) -> None:
        if self.subject_attribute.references() is None:
            raise MappingError(
                f"link table {self.table_name!r}: subject attribute must be a "
                "foreign key"
            )
        if self.object_attribute.references() is None:
            raise MappingError(
                f"link table {self.table_name!r}: object attribute must be a "
                "foreign key"
            )

    def subject_table(self) -> str:
        return self.subject_attribute.references()

    def object_table(self) -> str:
        return self.object_attribute.references()


class DatabaseMapping:
    """The root of an R3M mapping: connection info + all table maps."""

    def __init__(
        self,
        uri_prefix: str = "",
        jdbc_driver: str = "",
        jdbc_url: str = "",
        username: str = "",
        password: str = "",
    ) -> None:
        self.uri_prefix = uri_prefix
        self.jdbc_driver = jdbc_driver
        self.jdbc_url = jdbc_url
        self.username = username
        self.password = password
        self.tables: Dict[str, TableMapping] = {}
        self.link_tables: Dict[str, LinkTableMapping] = {}
        self._class_index: Dict[URIRef, TableMapping] = {}
        self._link_property_index: Dict[URIRef, LinkTableMapping] = {}

    # -- construction ------------------------------------------------------------

    def add_table(self, table: TableMapping) -> None:
        if table.table_name in self.tables or table.table_name in self.link_tables:
            raise MappingError(f"duplicate table map for {table.table_name!r}")
        self.tables[table.table_name] = table
        if table.maps_to_class in self._class_index:
            raise MappingError(
                f"class {table.maps_to_class} mapped by multiple tables — R3M "
                "requires bijective table/class mappings for updatability"
            )
        self._class_index[table.maps_to_class] = table

    def add_link_table(self, link: LinkTableMapping) -> None:
        if link.table_name in self.tables or link.table_name in self.link_tables:
            raise MappingError(f"duplicate table map for {link.table_name!r}")
        if link.property in self._link_property_index:
            raise MappingError(
                f"object property {link.property} mapped by multiple link tables"
            )
        self.link_tables[link.table_name] = link
        self._link_property_index[link.property] = link

    # -- lookups -------------------------------------------------------------------

    def table(self, name: str) -> TableMapping:
        try:
            return self.tables[name]
        except KeyError:
            raise MappingError(f"no table map for {name!r}") from None

    def table_for_class(self, cls: URIRef) -> Optional[TableMapping]:
        return self._class_index.get(cls)

    def link_for_property(self, prop: URIRef) -> Optional[LinkTableMapping]:
        return self._link_property_index.get(prop)

    def identify_candidates(
        self, uri: URIRef
    ) -> List[Tuple[TableMapping, Dict[str, str]]]:
        """All (table, extracted values) pairs whose uriPattern matches,
        most specific (longest pattern) first.

        The paper's own use case overlaps textually (``ex:pub12`` vs
        ``ex:pubtype4`` both start with ``pub``); specificity plus the
        caller's type-coercibility filtering resolves such overlaps.
        """
        candidates: List[Tuple[TableMapping, Dict[str, str]]] = []
        for table in self.tables.values():
            values = table.uri_pattern.match(uri)
            if values is not None:
                candidates.append((table, values))
        candidates.sort(
            key=lambda pair: len(pair[0].uri_pattern.pattern), reverse=True
        )
        return candidates

    def identify_table(
        self, uri: URIRef
    ) -> Optional[Tuple[TableMapping, Dict[str, str]]]:
        """Algorithm 1 step 2: match a subject URI against every table's
        URI pattern; returns the most specific match or None."""
        candidates = self.identify_candidates(uri)
        return candidates[0] if candidates else None

    def tables_for_property(
        self, prop: URIRef
    ) -> List[Tuple[TableMapping, AttributeMapping]]:
        """Every (table, attribute) pair a property could belong to.

        Vocabulary reuse means one property may appear in several tables
        (e.g. ``foaf:name`` on both team and publisher would be ambiguous
        without the subject URI); the translator disambiguates via the
        subject's table.
        """
        result = []
        for table in self.tables.values():
            attribute = table.attribute_for_property(prop)
            if attribute is not None:
                result.append((table, attribute))
        return result

    def all_table_names(self) -> List[str]:
        return [*self.tables, *self.link_tables]

    def __repr__(self) -> str:
        return (
            f"<DatabaseMapping tables={list(self.tables)} "
            f"link_tables={list(self.link_tables)}>"
        )
