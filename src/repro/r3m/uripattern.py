"""URI patterns: minting and reverse-matching instance URIs.

The paper (Section 4) generates instance URIs from a mapping-wide
``uriPrefix`` plus a per-table ``uriPattern`` containing attribute
placeholders between double percent signs, e.g. ``author%%id%%``.  A
pattern that itself forms a valid absolute URI (starts with ``http://``,
``mailto:``, …) overrides the prefix.

Translation needs both directions:

* :meth:`URIPattern.format` — row values → instance URI (used by the
  RDB→RDF dump and feedback);
* :meth:`URIPattern.match` — subject URI → attribute values (Algorithm 1
  step 2: "the table affected by this group of triples is identified
  through the URI of their subject ... we can extract the value 1 for the
  primary key attribute id").
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from ..errors import MappingError
from ..rdf.terms import URIRef

__all__ = ["URIPattern"]

_PLACEHOLDER_RE = re.compile(r"%%([A-Za-z_][A-Za-z0-9_]*)%%")
_ABSOLUTE_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.\-]*:")


class URIPattern:
    """A compiled URI pattern bound to a mapping-wide prefix."""

    def __init__(self, pattern: str, prefix: str = "") -> None:
        if not pattern:
            raise MappingError("empty URI pattern")
        self.pattern = pattern
        self.prefix = prefix
        #: attribute names appearing as placeholders, in order
        self.attributes: List[str] = _PLACEHOLDER_RE.findall(pattern)
        if not self.attributes:
            raise MappingError(
                f"URI pattern {pattern!r} contains no %%attribute%% placeholder"
            )
        self._template = self._full_pattern()
        self._regex = self._compile_regex()

    def _full_pattern(self) -> str:
        # "overrides it if the pattern itself forms a valid URI"
        if _ABSOLUTE_RE.match(self.pattern):
            return self.pattern
        return self.prefix + self.pattern

    def _compile_regex(self) -> "re.Pattern[str]":
        parts: List[str] = []
        last = 0
        for m in _PLACEHOLDER_RE.finditer(self._template):
            parts.append(re.escape(self._template[last: m.start()]))
            # Attribute values must not contain '/' so patterns stay
            # unambiguous within one URI hierarchy level.
            parts.append(f"(?P<{m.group(1)}>[^/]+?)")
            last = m.end()
        parts.append(re.escape(self._template[last:]))
        return re.compile("^" + "".join(parts) + "$")

    # -- forward: values -> URI ------------------------------------------------

    def format(self, values: Dict[str, Any]) -> URIRef:
        """Mint the instance URI for a row (a dict of attribute values)."""

        def replace(m: "re.Match[str]") -> str:
            name = m.group(1)
            if name not in values or values[name] is None:
                raise MappingError(
                    f"missing value for URI pattern attribute {name!r}"
                )
            return str(values[name])

        return URIRef(_PLACEHOLDER_RE.sub(replace, self._template))

    # -- reverse: URI -> values ----------------------------------------------------

    def match(self, uri: URIRef) -> Optional[Dict[str, str]]:
        """Extract attribute values from an instance URI, or None.

        Values come back as strings; the caller coerces them with the
        column's SQL type (e.g. ``"1"`` → 1 for the INTEGER id).
        """
        m = self._regex.match(uri.value)
        if m is None:
            return None
        return m.groupdict()

    def matches(self, uri: URIRef) -> bool:
        return self._regex.match(uri.value) is not None

    def __repr__(self) -> str:
        return f"URIPattern({self._template!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, URIPattern)
            and other.pattern == self.pattern
            and other.prefix == self.prefix
        )

    def __hash__(self) -> int:
        return hash((self.pattern, self.prefix))
