"""Validate an R3M mapping against the actual database schema.

View-update research (paper Section 2) shows update requirements must be
considered in the view-definition language itself; R3M's updatability
hinges on the mapping being *consistent* with the schema.  The validator
checks:

* every mapped table/attribute exists in the schema;
* constraint records in the mapping match the catalog (PK, FK target,
  NOT NULL, DEFAULT);
* URI patterns cover the primary key (so instance URIs identify rows
  bijectively — the condition for unambiguous update propagation);
* URI patterns of different tables do not shadow each other;
* link table maps reference existing tables and FK columns.

Returns a list of human-readable problem strings; ``raise_on_error=True``
turns them into :class:`~repro.errors.MappingValidationError`.
"""

from __future__ import annotations

from typing import List

from ..errors import MappingValidationError
from ..rdb.engine import Database
from .model import DatabaseMapping, TableMapping

__all__ = ["validate_mapping"]


def validate_mapping(
    mapping: DatabaseMapping, db: Database, raise_on_error: bool = True
) -> List[str]:
    problems: List[str] = []

    for table_map in mapping.tables.values():
        problems.extend(_check_table(table_map, db))
    for link in mapping.link_tables.values():
        problems.extend(_check_link_table(link, mapping, db))
    problems.extend(_check_pattern_collisions(mapping, db))

    if problems and raise_on_error:
        raise MappingValidationError(
            "mapping validation failed:\n  - " + "\n  - ".join(problems)
        )
    return problems


def _check_table(table_map: TableMapping, db: Database) -> List[str]:
    problems: List[str] = []
    name = table_map.table_name
    if not db.schema.has_table(name):
        return [f"mapped table {name!r} does not exist in the schema"]
    table = db.schema.table(name)

    for attribute in table_map.attributes:
        attr = attribute.attribute_name
        if not table.has_column(attr):
            problems.append(f"{name}.{attr}: column does not exist")
            continue
        column = table.column(attr)

        if attribute.is_primary_key() != table.is_primary_key(attr):
            problems.append(
                f"{name}.{attr}: primary-key flag disagrees with the schema"
            )
        mapped_fk = attribute.references()
        actual_fk = table.foreign_key_for(attr)
        if mapped_fk is not None:
            if actual_fk is None:
                problems.append(
                    f"{name}.{attr}: mapping declares a foreign key the "
                    "schema does not have"
                )
            elif actual_fk.ref_table != mapped_fk:
                problems.append(
                    f"{name}.{attr}: foreign key references {mapped_fk!r} in "
                    f"the mapping but {actual_fk.ref_table!r} in the schema"
                )
        elif actual_fk is not None and attribute.property is not None:
            problems.append(
                f"{name}.{attr}: schema has a foreign key the mapping omits "
                "(updates could dangle)"
            )
        if attribute.is_not_null() and not (
            column.not_null or table.is_primary_key(attr)
        ):
            problems.append(
                f"{name}.{attr}: mapping declares NOT NULL but the schema "
                "allows NULL"
            )
        if not attribute.is_not_null() and column.not_null and attribute.property:
            problems.append(
                f"{name}.{attr}: schema declares NOT NULL the mapping omits "
                "(invalid inserts would reach the database)"
            )
        if attribute.is_object_property and actual_fk is None:
            problems.append(
                f"{name}.{attr}: mapped to an object property but is not a "
                "foreign key"
            )

    # URI pattern must cover the primary key for bijective row identity.
    pattern_attrs = set(table_map.uri_pattern.attributes)
    for attr in pattern_attrs:
        if not table.has_column(attr):
            problems.append(
                f"{name}: URI pattern references unknown attribute {attr!r}"
            )
    missing_pk = set(table.primary_key) - pattern_attrs
    if table.primary_key and missing_pk:
        problems.append(
            f"{name}: URI pattern does not include primary key "
            f"column(s) {sorted(missing_pk)} — instance URIs would not "
            "identify rows uniquely"
        )
    return problems


def _check_link_table(link, mapping: DatabaseMapping, db: Database) -> List[str]:
    problems: List[str] = []
    name = link.table_name
    if not db.schema.has_table(name):
        return [f"mapped link table {name!r} does not exist in the schema"]
    table = db.schema.table(name)
    for role, attribute in (
        ("subject", link.subject_attribute),
        ("object", link.object_attribute),
    ):
        attr = attribute.attribute_name
        if not table.has_column(attr):
            problems.append(f"{name}.{attr}: {role} column does not exist")
            continue
        fk = table.foreign_key_for(attr)
        if fk is None:
            problems.append(
                f"{name}.{attr}: {role} attribute is not a foreign key in "
                "the schema"
            )
        elif fk.ref_table != attribute.references():
            problems.append(
                f"{name}.{attr}: {role} attribute references "
                f"{attribute.references()!r} in the mapping but "
                f"{fk.ref_table!r} in the schema"
            )
        referenced = attribute.references()
        if referenced is not None and referenced not in mapping.tables:
            problems.append(
                f"{name}.{attr}: referenced table {referenced!r} has no "
                "TableMap — link triples could not be expressed"
            )
    return problems


def _check_pattern_collisions(mapping: DatabaseMapping, db: Database) -> List[str]:
    """Detect URI patterns that make instance URIs genuinely ambiguous.

    Textual overlap alone is fine — the paper's own URIs overlap
    (``ex:pub12`` also matches nothing but ``pub%%id%%``, while
    ``ex:pubtype4`` matches both ``pubtype%%id%%`` and ``pub%%id%%``) and
    is resolved by pattern specificity plus type coercion.  A real problem
    exists only when an example URI minted by a table is *type-validly*
    matched by another table's pattern as well.
    """
    problems: List[str] = []
    for left in mapping.tables.values():
        example = _example_uri(left)
        if example is None:
            continue
        valid_matches = []
        for right in mapping.tables.values():
            values = right.uri_pattern.match(example)
            if values is None:
                continue
            if _values_coercible(db, right, values):
                valid_matches.append(right.table_name)
        if len(valid_matches) > 1:
            problems.append(
                f"URI {example.value!r} of table {left.table_name!r} is "
                f"ambiguous: it validly matches {sorted(valid_matches)}"
            )
    return problems


def _example_uri(table_map: TableMapping):
    # Use a multi-digit key so prefix collisions like author/author2 are
    # caught ("author21" is both author 21 and author2's row 1).
    try:
        return table_map.uri_pattern.format(
            {attr: "21" for attr in table_map.uri_pattern.attributes}
        )
    except Exception:
        return None


def _values_coercible(db: Database, table_map: TableMapping, values) -> bool:
    if not db.schema.has_table(table_map.table_name):
        return False
    table = db.schema.table(table_map.table_name)
    for attr, raw in values.items():
        if not table.has_column(attr):
            return False
        try:
            table.column(attr).sql_type.coerce(raw, attr)
        except Exception:
            return False
    return True
