"""Serialize an R3M mapping model back to RDF (Turtle).

Produces documents in the shape of the paper's Listings 1–5: one
``map:<table>`` node per table, ``map:<table>_<attribute>`` nodes per
attribute, and blank nodes for constraints.  Round-trips with
:mod:`repro.r3m.parser`.
"""

from __future__ import annotations

from ..rdf.graph import Graph
from ..rdf.namespace import Namespace, PrefixMap, DEFAULT_PREFIXES, RDF
from ..rdf.serialize import to_turtle
from ..rdf.terms import BNode, Literal, Triple, URIRef
from . import vocabulary as voc
from .model import (
    DEFAULT,
    FOREIGN_KEY,
    NOT_NULL,
    PRIMARY_KEY,
    AttributeMapping,
    DatabaseMapping,
)

__all__ = ["mapping_to_graph", "mapping_to_turtle", "MAP"]

#: Namespace for the mapping's own node identifiers (``map:`` in the paper).
MAP = Namespace("http://example.org/map#")


def mapping_to_turtle(mapping: DatabaseMapping) -> str:
    """Render the mapping as Turtle text."""
    prefixes = PrefixMap.with_defaults()
    prefixes.bind("map", MAP.uri)
    return to_turtle(mapping_to_graph(mapping), prefixes=prefixes)


def mapping_to_graph(mapping: DatabaseMapping) -> Graph:
    """Encode the mapping model as an RDF graph using the R3M vocabulary."""
    g = Graph()
    root = MAP.database
    g.add(Triple(root, RDF.type, voc.DATABASE_MAP))
    if mapping.jdbc_driver:
        g.add(Triple(root, voc.JDBC_DRIVER, Literal(mapping.jdbc_driver)))
    if mapping.jdbc_url:
        g.add(Triple(root, voc.JDBC_URL, Literal(mapping.jdbc_url)))
    if mapping.username:
        g.add(Triple(root, voc.USERNAME, Literal(mapping.username)))
    if mapping.password:
        g.add(Triple(root, voc.PASSWORD, Literal(mapping.password)))
    if mapping.uri_prefix:
        g.add(Triple(root, voc.URI_PREFIX, Literal(mapping.uri_prefix)))

    for table in mapping.tables.values():
        node = MAP[table.table_name]
        g.add(Triple(root, voc.HAS_TABLE, node))
        g.add(Triple(node, RDF.type, voc.TABLE_MAP))
        g.add(Triple(node, voc.HAS_TABLE_NAME, Literal(table.table_name)))
        g.add(Triple(node, voc.MAPS_TO_CLASS, table.maps_to_class))
        g.add(Triple(node, voc.URI_PATTERN, Literal(table.uri_pattern.pattern)))
        for check_text in table.checks:
            c_node = BNode()
            g.add(Triple(node, voc.HAS_CONSTRAINT, c_node))
            g.add(Triple(c_node, RDF.type, voc.CHECK))
            g.add(Triple(c_node, voc.HAS_EXPRESSION, Literal(check_text)))
        for attribute in table.attributes:
            attr_node = MAP[f"{table.table_name}_{attribute.attribute_name}"]
            g.add(Triple(node, voc.HAS_ATTRIBUTE, attr_node))
            _add_attribute(g, attr_node, attribute)

    for link in mapping.link_tables.values():
        node = MAP[link.table_name]
        g.add(Triple(root, voc.HAS_TABLE, node))
        g.add(Triple(node, RDF.type, voc.LINK_TABLE_MAP))
        g.add(Triple(node, voc.HAS_TABLE_NAME, Literal(link.table_name)))
        g.add(Triple(node, voc.MAPS_TO_OBJECT_PROPERTY, link.property))
        subject_node = MAP[f"{link.table_name}_subject"]
        object_node = MAP[f"{link.table_name}_object"]
        g.add(Triple(node, voc.HAS_SUBJECT_ATTRIBUTE, subject_node))
        g.add(Triple(node, voc.HAS_OBJECT_ATTRIBUTE, object_node))
        _add_attribute(g, subject_node, link.subject_attribute)
        _add_attribute(g, object_node, link.object_attribute)
    return g


def _add_attribute(g: Graph, node: URIRef, attribute: AttributeMapping) -> None:
    g.add(Triple(node, RDF.type, voc.ATTRIBUTE_MAP))
    g.add(Triple(node, voc.HAS_ATTRIBUTE_NAME, Literal(attribute.attribute_name)))
    if attribute.property is not None:
        predicate = (
            voc.MAPS_TO_OBJECT_PROPERTY
            if attribute.is_object_property
            else voc.MAPS_TO_DATA_PROPERTY
        )
        g.add(Triple(node, predicate, attribute.property))
    if attribute.value_pattern is not None:
        g.add(
            Triple(
                node,
                voc.VALUE_PATTERN,
                Literal(attribute.value_pattern.pattern),
            )
        )
    for constraint in attribute.constraints:
        c_node = BNode()
        g.add(Triple(node, voc.HAS_CONSTRAINT, c_node))
        if constraint.kind == PRIMARY_KEY:
            g.add(Triple(c_node, RDF.type, voc.PRIMARY_KEY))
        elif constraint.kind == NOT_NULL:
            g.add(Triple(c_node, RDF.type, voc.NOT_NULL))
        elif constraint.kind == FOREIGN_KEY:
            g.add(Triple(c_node, RDF.type, voc.FOREIGN_KEY))
            g.add(Triple(c_node, voc.REFERENCES, MAP[constraint.references]))
        elif constraint.kind == DEFAULT:
            g.add(Triple(c_node, RDF.type, voc.DEFAULT))
            if constraint.value is not None:
                g.add(Triple(c_node, voc.HAS_VALUE, Literal(constraint.value)))
