"""Reusable fault injection at named sites (ISSUE 6).

PR 5 proved the kill-point discipline inside the durability layer: the
``DurabilityManager._crash_hook`` seam lets crash-recovery tests die at
byte-precise moments.  This module generalizes that pattern to the whole
request path.  A :class:`FaultInjector` maps *site names* to rules that
inject latency, raise errors, or stall on an event; production code
calls ``INJECTOR.fire("site")`` (usually via the guards in
:mod:`repro.deadline`) at interesting points, which is a no-op unless a
test armed a rule.

Known sites:

* ``executor:scan``   — the planner's row-scan pipeline (per ~256 rows)
* ``executor:dml``    — executor insert/update/delete loops
* ``endpoint:stream`` — between chunks of a streamed HTTP response
* ``wal:pre-append``, ``wal:mid-append``, ``wal:pre-sync``,
  ``checkpoint:pre-rename``, ``checkpoint:post-rename`` — the existing
  durability kill points: an injector instance is itself a valid
  ``_crash_hook`` (``__call__`` aliases :meth:`fire`), so the same rule
  table drives WAL/checkpoint chaos.
* ``repl:ship``    — log shipper, before sending each WAL frame
* ``repl:connect`` — replica supervisor, before each connect attempt
* ``repl:apply``   — replica applier, before applying a snapshot/frame
* ``repl:lease``   — primary-loss detector, at each lease check
* ``repl:promote`` — replica promotion, before any state changes
* ``obs:export``   — metrics exposition, before rendering ``/metrics``

Rules are consumed-per-fire with an optional ``times`` budget, and the
``armed`` flag keeps the disarmed fast path to one attribute read.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from .errors import FaultError

__all__ = ["FaultInjector", "FaultRule", "INJECTOR"]


class FaultRule:
    """One injection rule: what happens when its site fires."""

    __slots__ = ("site", "latency", "error", "stall", "call", "times", "fired")

    def __init__(
        self,
        site: str,
        latency: float = 0.0,
        error: Optional[BaseException] = None,
        stall: Optional[threading.Event] = None,
        call: Optional[Callable[[str], None]] = None,
        times: Optional[int] = None,
    ) -> None:
        self.site = site
        self.latency = latency
        self.error = error
        self.stall = stall
        self.call = call
        self.times = times
        self.fired = 0


#: Upper bound on a stall rule's wait: a chaos test that forgets to set
#: its release event must not hang the suite forever.
_STALL_CAP_SECONDS = 30.0


class FaultInjector:
    """Injects latency, errors, or stalls at named sites.

    Thread-safe: rules are installed/cleared under a lock; the fire path
    reads a snapshot.  The module-level :data:`INJECTOR` is the instance
    production code consults; tests install rules against it and must
    :meth:`clear` in teardown (the chaos suite uses a fixture for this).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rules: Dict[str, FaultRule] = {}
        #: Fast-path flag: False means fire() is a no-op and callers may
        #: skip it entirely (one attribute read on hot loops).
        self.armed = False

    def inject(
        self,
        site: str,
        *,
        latency: float = 0.0,
        error: Optional[BaseException] = None,
        stall: Optional[threading.Event] = None,
        call: Optional[Callable[[str], None]] = None,
        times: Optional[int] = None,
        fail: bool = False,
    ) -> FaultRule:
        """Arm ``site``.  ``latency`` sleeps, ``error`` raises (``fail=True``
        raises a default :class:`FaultError`), ``stall`` blocks until the
        event is set, ``call`` runs an arbitrary callback, ``times`` caps
        how often the rule fires before going inert."""
        if fail and error is None:
            error = FaultError(f"injected fault at {site}")
        rule = FaultRule(
            site, latency=latency, error=error, stall=stall, call=call, times=times
        )
        with self._lock:
            self._rules[site] = rule
            self.armed = True
        return rule

    def clear(self, site: Optional[str] = None) -> None:
        """Remove one site's rule, or all rules when ``site`` is None."""
        with self._lock:
            if site is None:
                self._rules.clear()
            else:
                self._rules.pop(site, None)
            self.armed = bool(self._rules)

    def fired(self, site: str) -> int:
        """How many times ``site``'s current rule has fired."""
        with self._lock:
            rule = self._rules.get(site)
            return rule.fired if rule is not None else 0

    def fire(self, site: str) -> None:
        """Trigger ``site``: no-op unless a rule is armed for it."""
        if not self.armed:
            return
        with self._lock:
            rule = self._rules.get(site)
            if rule is None:
                return
            if rule.times is not None and rule.fired >= rule.times:
                return
            rule.fired += 1
        # Act outside the lock: latency/stall must not serialize other sites.
        if rule.call is not None:
            rule.call(site)
        if rule.latency > 0.0:
            time.sleep(rule.latency)
        if rule.stall is not None:
            rule.stall.wait(timeout=_STALL_CAP_SECONDS)
        if rule.error is not None:
            raise rule.error

    # An injector is a drop-in ``DurabilityManager._crash_hook``: the
    # durability layer calls ``hook("wal:pre-append")`` etc.
    __call__ = fire


#: The process-wide injector consulted by production code.
INJECTOR = FaultInjector()
