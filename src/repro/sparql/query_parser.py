"""Parser for SPARQL queries (SELECT / ASK / CONSTRUCT).

Covers the fragment needed by the paper plus what realistic clients send:
prologue, projection (``*`` or variable list), WHERE with basic graph
patterns, FILTER, OPTIONAL, UNION, and the DISTINCT / ORDER BY / LIMIT /
OFFSET solution modifiers.
"""

from __future__ import annotations

from typing import List, Optional

from ..rdf.namespace import PrefixMap
from ..rdf.terms import Triple, Variable
from .algebra_ast import GroupPattern
from .parse_base import SPARQLParserBase
from .query_ast import AskQuery, ConstructQuery, OrderCondition, Query, SelectQuery

__all__ = ["parse_query", "QueryParser"]


def parse_query(text: str, prefixes: Optional[PrefixMap] = None) -> Query:
    """Parse one SPARQL query string."""
    return QueryParser(text, prefixes=prefixes).query()


class QueryParser(SPARQLParserBase):
    def query(self) -> Query:
        self.parse_prologue()
        self.skip_ws()
        if self.at_keyword("SELECT"):
            result = self._select()
        elif self.at_keyword("ASK"):
            result = self._ask()
        elif self.at_keyword("CONSTRUCT"):
            result = self._construct()
        else:
            raise self.error("expected SELECT, ASK, or CONSTRUCT")
        self.expect_end()
        return result

    def _select(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        self.accept_keyword("REDUCED")  # treated like DISTINCT-less
        variables: List[Variable] = []
        self.skip_ws()
        if self.accept("*"):
            pass
        else:
            var = self.try_parse_variable()
            if var is None:
                raise self.error("expected '*' or variables after SELECT")
            while var is not None:
                variables.append(var)
                var = self.try_parse_variable()
        self.accept_keyword("WHERE")
        where = self.parse_group_graph_pattern()
        order_by, limit, offset = self._solution_modifiers()
        return SelectQuery(
            variables=tuple(variables),
            where=where,
            distinct=distinct,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
        )

    def _ask(self) -> AskQuery:
        self.expect_keyword("ASK")
        self.accept_keyword("WHERE")
        return AskQuery(where=self.parse_group_graph_pattern())

    def _construct(self) -> ConstructQuery:
        self.expect_keyword("CONSTRUCT")
        self.expect("{")
        template = self.parse_triples_block(allow_variables=True)
        self.expect("}")
        self.expect_keyword("WHERE")
        where = self.parse_group_graph_pattern()
        # CONSTRUCT allows LIMIT etc. too, but they are rare; accept and
        # ignore ordering for the template-instantiation semantics.
        self._solution_modifiers()
        return ConstructQuery(template=tuple(template), where=where)

    def _solution_modifiers(self):
        order_by: List[OrderCondition] = []
        limit: Optional[int] = None
        offset: Optional[int] = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                self.skip_ws()
                if self.accept_keyword("DESC"):
                    order_by.append(
                        OrderCondition(self.parse_bracketted_expression(), True)
                    )
                elif self.accept_keyword("ASC"):
                    order_by.append(
                        OrderCondition(self.parse_bracketted_expression(), False)
                    )
                else:
                    var = self.try_parse_variable()
                    if var is None:
                        break
                    from .algebra_ast import TermExpr

                    order_by.append(OrderCondition(TermExpr(var), False))
            if not order_by:
                raise self.error("expected order condition after ORDER BY")
        while True:
            if self.accept_keyword("LIMIT"):
                limit = self._parse_int()
            elif self.accept_keyword("OFFSET"):
                offset = self._parse_int()
            else:
                break
        return order_by, limit, offset

    def _parse_int(self) -> int:
        self.skip_ws()
        start = self.pos
        while self.pos < self.length and self.text[self.pos].isdigit():
            self.pos += 1
        if start == self.pos:
            raise self.error("expected integer")
        return int(self.text[start: self.pos])
