"""AST for SPARQL query forms: SELECT, ASK, CONSTRUCT."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..rdf.terms import Triple, Variable
from .algebra_ast import Expr, GroupPattern

__all__ = ["SelectQuery", "AskQuery", "ConstructQuery", "OrderCondition", "Query"]


@dataclass(frozen=True)
class OrderCondition:
    expression: Expr
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """``SELECT [DISTINCT] ?v ... WHERE { ... }`` with solution modifiers.

    ``variables`` empty means ``SELECT *`` (all pattern variables).
    """

    variables: Tuple[Variable, ...]
    where: GroupPattern
    distinct: bool = False
    order_by: Tuple[OrderCondition, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None

    def projected(self) -> Tuple[Variable, ...]:
        if self.variables:
            return self.variables
        return tuple(sorted(self.where.all_variables(), key=lambda v: v.name))


@dataclass(frozen=True)
class AskQuery:
    where: GroupPattern


@dataclass(frozen=True)
class ConstructQuery:
    template: Tuple[Triple, ...]
    where: GroupPattern


Query = Union[SelectQuery, AskQuery, ConstructQuery]
