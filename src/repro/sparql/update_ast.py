"""AST for SPARQL/Update operations (2008 W3C member submission).

The paper translates three operations (Section 5):

* ``INSERT DATA { triples }``   — :class:`InsertData`
* ``DELETE DATA { triples }``   — :class:`DeleteData`
* ``MODIFY DELETE {t} INSERT {t} WHERE {p}`` — :class:`Modify`

The submission (and SPARQL 1.1 later) also allows the DELETE-only and
INSERT-only template forms ``DELETE {t} WHERE {p}`` / ``INSERT {t} WHERE
{p}``; these parse to :class:`Modify` with an empty counterpart template.
``CLEAR`` is supported as the graph-management extension the submission
defines (useful in tests and examples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from ..rdf.terms import Triple
from .algebra_ast import GroupPattern

__all__ = ["InsertData", "DeleteData", "Modify", "Clear", "UpdateOperation", "UpdateRequest"]


@dataclass(frozen=True)
class InsertData:
    """Insert a set of concrete triples."""

    triples: Tuple[Triple, ...]


@dataclass(frozen=True)
class DeleteData:
    """Remove a set of concrete triples."""

    triples: Tuple[Triple, ...]


@dataclass(frozen=True)
class Modify:
    """Atomic delete+insert driven by a WHERE pattern (paper Listing 8)."""

    delete_template: Tuple[Triple, ...]
    insert_template: Tuple[Triple, ...]
    where: GroupPattern


@dataclass(frozen=True)
class Clear:
    """Remove all triples (graph-management extension)."""


UpdateOperation = Union[InsertData, DeleteData, Modify, Clear]


@dataclass(frozen=True)
class UpdateRequest:
    """One request: a sequence of operations sharing a prologue.

    The member submission allows several operations per request; the paper
    executes each operation in its own transaction, which the mediator
    mirrors.
    """

    operations: Tuple[UpdateOperation, ...]
