"""Shared scanning machinery for the SPARQL query and update parsers.

SPARQL reuses Turtle's term syntax (the paper notes that SPARQL/Update
reuses the SPARQL grammar), so this base parser provides: prologue handling
(PREFIX/BASE), term parsing including variables, and group-graph-pattern
parsing used both by query WHERE clauses and by the MODIFY operation's
clauses.  Patterns are represented with the AST nodes of
:mod:`repro.sparql.algebra_ast`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from ..errors import SPARQLParseError
from ..rdf.namespace import RDF, PrefixMap
from ..rdf.terms import (
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    BNode,
    Literal,
    Term,
    Triple,
    URIRef,
    Variable,
)
from . import algebra_ast as alg

_IRIREF_RE = re.compile(r"<([^<>\"{}|^`\\\x00-\x20]*)>")
_PREFIX_DECL_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_.\-]*)?:")
_VAR_RE = re.compile(r"[?$]([A-Za-z_][A-Za-z0-9_]*)")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9_][A-Za-z0-9_.\-]*)")
_NUMBER_RE = re.compile(r"[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)")
_LANGTAG_RE = re.compile(r"@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)")
_NAME_CHAR = re.compile(r"[A-Za-z0-9_\-.]")

__all__ = ["SPARQLParserBase"]


class SPARQLParserBase:
    """Scanner + shared productions; query/update parsers subclass this."""

    def __init__(self, text: str, prefixes: Optional[PrefixMap] = None) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)
        self.base = ""
        self.prefixes = prefixes.copy() if prefixes is not None else PrefixMap()
        self._anon_counter = 0

    # -- scanning ------------------------------------------------------------

    def error(self, message: str) -> SPARQLParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        column = self.pos - self.text.rfind("\n", 0, self.pos)
        return SPARQLParseError(message, line=line, column=column)

    def skip_ws(self) -> None:
        while self.pos < self.length:
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif ch == "#":
                nl = self.text.find("\n", self.pos)
                self.pos = self.length if nl == -1 else nl + 1
            else:
                return

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def at_keyword(self, keyword: str) -> bool:
        """Case-insensitive keyword lookahead with a word boundary."""
        end = self.pos + len(keyword)
        if self.text[self.pos:end].upper() != keyword.upper():
            return False
        if end < self.length and (self.text[end].isalnum() or self.text[end] == "_"):
            return False
        return True

    def accept_keyword(self, keyword: str) -> bool:
        self.skip_ws()
        if self.at_keyword(keyword):
            self.pos += len(keyword)
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise self.error(f"expected keyword {keyword}")

    def accept(self, token: str) -> bool:
        self.skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.accept(token):
            raise self.error(f"expected {token!r}")

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= self.length

    def expect_end(self) -> None:
        self.skip_ws()
        if self.pos < self.length:
            raise self.error("unexpected trailing input")

    # -- prologue ------------------------------------------------------------

    def parse_prologue(self) -> None:
        while True:
            self.skip_ws()
            if self.at_keyword("PREFIX"):
                self.pos += len("PREFIX")
                self.skip_ws()
                m = _PREFIX_DECL_RE.match(self.text, self.pos)
                if not m:
                    raise self.error("expected prefix name")
                self.pos = m.end()
                self.skip_ws()
                uri = self._parse_iriref()
                self.prefixes.bind(m.group(1) or "", uri.value)
            elif self.at_keyword("BASE"):
                self.pos += len("BASE")
                self.skip_ws()
                self.base = self._parse_iriref().value
            else:
                return

    # -- terms ---------------------------------------------------------------

    def _parse_iriref(self) -> URIRef:
        self.skip_ws()
        m = _IRIREF_RE.match(self.text, self.pos)
        if not m:
            raise self.error("malformed IRI reference")
        self.pos = m.end()
        value = m.group(1)
        if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.\-]*:", value):
            value = self.base.rstrip("/") + "/" + value.lstrip("/")
        return URIRef(value)

    def try_parse_variable(self) -> Optional[Variable]:
        self.skip_ws()
        m = _VAR_RE.match(self.text, self.pos)
        if not m:
            return None
        self.pos = m.end()
        return Variable(m.group(1))

    def parse_variable(self) -> Variable:
        var = self.try_parse_variable()
        if var is None:
            raise self.error("expected variable")
        return var

    def _try_parse_qname(self) -> Optional[URIRef]:
        self.skip_ws()
        m = _PREFIX_DECL_RE.match(self.text, self.pos)
        if not m:
            return None
        prefix = m.group(1) or ""
        namespace = self.prefixes.resolve(prefix)
        if namespace is None:
            raise self.error(f"unbound prefix: {prefix!r}")
        scan = m.end()
        chars: List[str] = []
        while scan < self.length:
            ch = self.text[scan]
            if ch.isalnum() or ch in "_-" or (
                ch == "." and scan + 1 < self.length and _NAME_CHAR.match(self.text[scan + 1])
            ):
                chars.append(ch)
                scan += 1
            else:
                break
        self.pos = scan
        return URIRef(namespace + "".join(chars))

    def parse_term(self, allow_variables: bool = True) -> Term:
        """Parse any RDF term (and optionally variables)."""
        self.skip_ws()
        ch = self.peek()
        if allow_variables:
            var = self.try_parse_variable()
            if var is not None:
                return var
        if ch == "<":
            return self._parse_iriref()
        if self.text.startswith("_:", self.pos):
            m = _BNODE_RE.match(self.text, self.pos)
            if not m:
                raise self.error("malformed blank node label")
            self.pos = m.end()
            return BNode(m.group(1))
        if ch == "[":
            # anonymous bnode []; property lists are not supported in
            # patterns (rarely used, and absent from the paper's examples)
            start = self.pos
            self.pos += 1
            self.skip_ws()
            if self.peek() == "]":
                self.pos += 1
                self._anon_counter += 1
                return BNode(f"anon{self._anon_counter}")
            self.pos = start
            raise self.error("blank node property lists are not supported here")
        if ch in "\"'":
            return self._parse_literal()
        if ch.isdigit() or (ch in "+-." and _NUMBER_RE.match(self.text, self.pos)):
            return self._parse_number()
        if self.at_keyword("true"):
            self.pos += 4
            return Literal("true", datatype=XSD_BOOLEAN)
        if self.at_keyword("false"):
            self.pos += 5
            return Literal("false", datatype=XSD_BOOLEAN)
        if ch == "a" and not _NAME_CHAR.match(self.text[self.pos + 1: self.pos + 2] or " "):
            self.pos += 1
            return RDF.type
        qname = self._try_parse_qname()
        if qname is not None:
            return qname
        raise self.error("expected RDF term")

    def _parse_literal(self) -> Literal:
        lexical = self._parse_string()
        m = _LANGTAG_RE.match(self.text, self.pos)
        if m:
            self.pos = m.end()
            return Literal(lexical, language=m.group(1))
        if self.text.startswith("^^", self.pos):
            self.pos += 2
            self.skip_ws()
            if self.peek() == "<":
                datatype = self._parse_iriref()
            else:
                datatype = self._try_parse_qname()
                if datatype is None:
                    raise self.error("expected datatype IRI")
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def _parse_string(self) -> str:
        quote = self.peek()
        if quote not in "\"'":
            raise self.error("expected string literal")
        long_delim = quote * 3
        if self.text.startswith(long_delim, self.pos):
            self.pos += 3
            end = self.text.find(long_delim, self.pos)
            if end == -1:
                raise self.error("unterminated long string")
            raw = self.text[self.pos:end]
            self.pos = end + 3
            return _unescape(raw, self.error)
        self.pos += 1
        chars: List[str] = []
        while True:
            if self.pos >= self.length:
                raise self.error("unterminated string literal")
            ch = self.text[self.pos]
            if ch == quote:
                self.pos += 1
                return _unescape("".join(chars), self.error)
            if ch in "\n\r":
                raise self.error("newline in string literal")
            if ch == "\\":
                chars.append(self.text[self.pos: self.pos + 2])
                self.pos += 2
                continue
            chars.append(ch)
            self.pos += 1

    def _parse_number(self) -> Literal:
        m = _NUMBER_RE.match(self.text, self.pos)
        if not m:
            raise self.error("malformed number")
        self.pos = m.end()
        lexical = m.group(0)
        if lexical.endswith(".") and "e" not in lexical.lower():
            lexical = lexical[:-1]
            self.pos -= 1
        if "e" in lexical.lower():
            datatype = XSD_DOUBLE
        elif "." in lexical:
            datatype = XSD_DECIMAL
        else:
            datatype = XSD_INTEGER
        return Literal(lexical, datatype=datatype)

    # -- triple blocks ---------------------------------------------------------

    def parse_triples_block(
        self, allow_variables: bool = True
    ) -> List[Triple]:
        """Parse triples with ``;`` and ``,`` shorthand until a delimiter.

        Used for INSERT/DELETE DATA payloads, CONSTRUCT/MODIFY templates,
        and the triple-pattern part of group graph patterns.
        """
        triples: List[Triple] = []
        while True:
            self.skip_ws()
            if self.peek() in ("}", "") or self._at_pattern_keyword():
                return triples
            subject = self.parse_term(allow_variables)
            self.skip_ws()
            while True:
                predicate = self.parse_term(allow_variables)
                if isinstance(predicate, (Literal, BNode)):
                    raise self.error("predicate must be an IRI or variable")
                while True:
                    obj = self.parse_term(allow_variables)
                    triples.append(Triple(subject, predicate, obj))
                    if not self.accept(","):
                        break
                if self.accept(";"):
                    self.skip_ws()
                    if self.peek() in ("}", ".", "") or self._at_pattern_keyword():
                        break
                    continue
                break
            self.skip_ws()
            if not self.accept("."):
                self.skip_ws()
                if self.peek() in ("}", "") or self._at_pattern_keyword():
                    return triples
                raise self.error("expected '.' between triples")

    def _at_pattern_keyword(self) -> bool:
        return any(
            self.at_keyword(k) for k in ("FILTER", "OPTIONAL", "UNION")
        )

    # -- group graph patterns -----------------------------------------------------

    def parse_group_graph_pattern(self) -> alg.GroupPattern:
        """Parse ``{ ... }`` with triple patterns, FILTER, OPTIONAL, UNION."""
        self.expect("{")
        elements: List[alg.PatternElement] = []
        while True:
            self.skip_ws()
            if self.accept("}"):
                return alg.GroupPattern(tuple(elements))
            if self.accept_keyword("FILTER"):
                elements.append(alg.Filter(self.parse_bracketted_expression()))
                self.accept(".")
                continue
            if self.accept_keyword("OPTIONAL"):
                elements.append(alg.Optional_(self.parse_group_graph_pattern()))
                self.accept(".")
                continue
            if self.peek() == "{":
                left = self.parse_group_graph_pattern()
                self.skip_ws()
                if self.accept_keyword("UNION"):
                    branches = [left, self.parse_group_graph_pattern()]
                    while self.accept_keyword("UNION"):
                        branches.append(self.parse_group_graph_pattern())
                    elements.append(alg.Union(tuple(branches)))
                else:
                    elements.append(left)
                self.accept(".")
                continue
            triples = self.parse_triples_block(allow_variables=True)
            if not triples:
                raise self.error("expected graph pattern element")
            elements.extend(alg.TriplePattern(t) for t in triples)

    # -- filter expressions ----------------------------------------------------------

    def parse_bracketted_expression(self) -> alg.Expr:
        self.expect("(")
        expr = self.parse_expression()
        self.expect(")")
        return expr

    def parse_expression(self) -> alg.Expr:
        return self._or_expression()

    def _or_expression(self) -> alg.Expr:
        left = self._and_expression()
        while self.accept("||"):
            left = alg.BoolOp("||", left, self._and_expression())
        return left

    def _and_expression(self) -> alg.Expr:
        left = self._relational_expression()
        while self.accept("&&"):
            left = alg.BoolOp("&&", left, self._relational_expression())
        return left

    def _relational_expression(self) -> alg.Expr:
        left = self._additive_expression()
        self.skip_ws()
        for op in ("<=", ">=", "!=", "=", "<", ">"):
            if self.text.startswith(op, self.pos):
                # Avoid consuming '<' of an IRI: require the char after '<'
                # not start an IRI when op is '<'.
                if op == "<" and re.match(
                    r"<[^ =<>]*>", self.text[self.pos:]
                ):
                    break
                self.pos += len(op)
                return alg.Comparison(op, left, self._additive_expression())
        return left

    def _additive_expression(self) -> alg.Expr:
        left = self._multiplicative_expression()
        while True:
            self.skip_ws()
            if self.peek() == "+":
                self.pos += 1
                left = alg.Arithmetic("+", left, self._multiplicative_expression())
            elif self.peek() == "-" and not _NUMBER_RE.match(self.text, self.pos):
                self.pos += 1
                left = alg.Arithmetic("-", left, self._multiplicative_expression())
            else:
                return left

    def _multiplicative_expression(self) -> alg.Expr:
        left = self._unary_expression()
        while True:
            self.skip_ws()
            if self.peek() == "*":
                self.pos += 1
                left = alg.Arithmetic("*", left, self._unary_expression())
            elif self.peek() == "/":
                self.pos += 1
                left = alg.Arithmetic("/", left, self._unary_expression())
            else:
                return left

    def _unary_expression(self) -> alg.Expr:
        self.skip_ws()
        if self.peek() == "!" and not self.text.startswith("!=", self.pos):
            self.pos += 1
            return alg.Not(self._unary_expression())
        return self._primary_expression()

    _FUNCTIONS = (
        "BOUND",
        "ISIRI",
        "ISURI",
        "ISBLANK",
        "ISLITERAL",
        "STR",
        "LANG",
        "DATATYPE",
        "REGEX",
        "SAMETERM",
        "LANGMATCHES",
    )

    def _primary_expression(self) -> alg.Expr:
        self.skip_ws()
        if self.peek() == "(":
            return self.parse_bracketted_expression()
        for name in self._FUNCTIONS:
            if self.at_keyword(name):
                self.pos += len(name)
                self.expect("(")
                args = [self.parse_expression()]
                while self.accept(","):
                    args.append(self.parse_expression())
                self.expect(")")
                return alg.FunctionExpr(name.upper(), tuple(args))
        term = self.parse_term(allow_variables=True)
        return alg.TermExpr(term)


_ESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


def _unescape(raw: str, error) -> str:
    if "\\" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        esc = raw[i + 1]
        if esc in _ESCAPES:
            out.append(_ESCAPES[esc])
            i += 2
        elif esc == "u":
            out.append(chr(int(raw[i + 2: i + 6], 16)))
            i += 6
        elif esc == "U":
            out.append(chr(int(raw[i + 2: i + 10], 16)))
            i += 10
        else:
            raise error(f"unknown escape \\{esc}")
    return "".join(out)
