"""SPARQL query and update execution over a native Graph.

This module is the "native triple store" role in the paper's narrative: it
executes SPARQL queries and applies SPARQL/Update operations directly to an
in-memory graph — no relational mediation.  The OntoAccess mediator is
benchmarked against this baseline, and the equivalence property tests use
it as the semantic oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..rdf.terms import Term, Triple, Variable
from .algebra import Solution, evaluate_pattern, instantiate
from .expressions import EvalError, evaluate_expr
from .query_ast import AskQuery, ConstructQuery, Query, SelectQuery
from .query_parser import parse_query
from .update_ast import Clear, DeleteData, InsertData, Modify, UpdateRequest
from .update_parser import parse_update

__all__ = ["SelectResult", "query", "update", "apply_operation", "apply_select_modifiers"]


@dataclass
class SelectResult:
    """Bindings table produced by a SELECT query."""

    variables: Tuple[Variable, ...]
    solutions: List[Solution] = field(default_factory=list)

    def rows(self) -> List[Tuple[Optional[Term], ...]]:
        return [
            tuple(solution.get(var) for var in self.variables)
            for solution in self.solutions
        ]

    def column(self, name: str) -> List[Optional[Term]]:
        var = Variable(name)
        return [solution.get(var) for solution in self.solutions]

    def __len__(self) -> int:
        return len(self.solutions)

    def __iter__(self):
        return iter(self.solutions)


def query(
    graph: Graph,
    q: Union[str, Query],
    prefixes: Optional[PrefixMap] = None,
) -> Union[SelectResult, bool, Graph]:
    """Execute a SPARQL query against ``graph``.

    Returns a :class:`SelectResult` for SELECT, ``bool`` for ASK, and a new
    :class:`Graph` for CONSTRUCT.
    """
    if isinstance(q, str):
        q = parse_query(q, prefixes=prefixes)
    if isinstance(q, SelectQuery):
        return _select(graph, q)
    if isinstance(q, AskQuery):
        return bool(evaluate_pattern(graph, q.where))
    if isinstance(q, ConstructQuery):
        result = Graph()
        for solution in evaluate_pattern(graph, q.where):
            result.add_all(instantiate(q.template, solution))
        return result
    raise TypeError(f"unknown query type {type(q).__name__}")


def _select(graph: Graph, q: SelectQuery) -> SelectResult:
    return apply_select_modifiers(q, evaluate_pattern(graph, q.where))


def apply_select_modifiers(q: SelectQuery, solutions: List[Solution]) -> SelectResult:
    """Apply projection, DISTINCT, ORDER BY, LIMIT/OFFSET to raw solutions.

    Shared between the native evaluator and the RDB-mediated query path
    (which produces its solutions from translated SQL).
    """
    solutions = list(solutions)
    variables = q.projected()

    if q.order_by:
        for condition in reversed(q.order_by):
            solutions.sort(
                key=lambda s: _order_key(condition.expression, s),
                reverse=condition.descending,
            )

    projected = [
        {var: s[var] for var in variables if var in s} for s in solutions
    ]
    if q.distinct:
        seen = set()
        unique: List[Solution] = []
        for solution in projected:
            key = tuple(sorted((v.name, t.n3()) for v, t in solution.items()))
            if key not in seen:
                seen.add(key)
                unique.append(solution)
        projected = unique
    if q.offset is not None:
        projected = projected[q.offset:]
    if q.limit is not None:
        projected = projected[: q.limit]
    return SelectResult(variables=variables, solutions=projected)


def _order_key(expr, solution: Solution):
    try:
        value = evaluate_expr(expr, solution)
    except EvalError:
        return (0, "", "")
    if isinstance(value, bool):
        return (1, "bool", str(value))
    if isinstance(value, (int, float)):
        return (2, "", value)
    if isinstance(value, str):
        return (3, "", value)
    from ..rdf.terms import Literal, URIRef

    if isinstance(value, Literal):
        if value.is_numeric():
            try:
                return (2, "", value.to_python())
            except ValueError:
                pass
        return (3, "", value.lexical)
    if isinstance(value, URIRef):
        return (4, "", value.value)
    return (5, "", str(value))


def update(
    graph: Graph,
    request: Union[str, UpdateRequest],
    prefixes: Optional[PrefixMap] = None,
) -> Dict[str, int]:
    """Apply a SPARQL/Update request to ``graph`` (native semantics).

    Returns counters: ``{"added": n, "removed": m}``.
    """
    if isinstance(request, str):
        request = parse_update(request, prefixes=prefixes)
    added = removed = 0
    for operation in request.operations:
        a, r = apply_operation(graph, operation)
        added += a
        removed += r
    return {"added": added, "removed": removed}


def apply_operation(graph: Graph, operation) -> Tuple[int, int]:
    """Apply one update operation; returns (added, removed)."""
    if isinstance(operation, InsertData):
        return graph.add_all(operation.triples), 0
    if isinstance(operation, DeleteData):
        return 0, graph.remove_all(operation.triples)
    if isinstance(operation, Modify):
        solutions = evaluate_pattern(graph, operation.where)
        to_remove: List[Triple] = []
        to_add: List[Triple] = []
        for solution in solutions:
            to_remove.extend(instantiate(operation.delete_template, solution))
            to_add.extend(instantiate(operation.insert_template, solution))
        removed = graph.remove_all(to_remove)
        added = graph.add_all(to_add)
        return added, removed
    if isinstance(operation, Clear):
        removed = len(graph)
        graph.clear()
        return 0, removed
    raise TypeError(f"unknown update operation {type(operation).__name__}")
