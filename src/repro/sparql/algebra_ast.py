"""AST nodes for SPARQL graph patterns and filter expressions.

These nodes are shared between the query parser (WHERE clauses), the
update parser (MODIFY's WHERE clause), the native-graph evaluator
(:mod:`repro.sparql.algebra`), and the SPARQL→SQL translator
(:mod:`repro.core.select_translate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from ..rdf.terms import Term, Triple, Variable

__all__ = [
    "Expr",
    "TermExpr",
    "Comparison",
    "BoolOp",
    "Not",
    "Arithmetic",
    "FunctionExpr",
    "TriplePattern",
    "Filter",
    "Optional_",
    "Union",
    "GroupPattern",
    "PatternElement",
]


# -- filter expressions -------------------------------------------------------

class Expr:
    """Marker base class for filter expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class TermExpr(Expr):
    """A term (variable, IRI, or literal) used as an expression."""

    term: Term


@dataclass(frozen=True)
class Comparison(Expr):
    op: str  # '=', '!=', '<', '<=', '>', '>='
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    op: str  # '&&' | '||'
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class Arithmetic(Expr):
    op: str  # '+', '-', '*', '/'
    left: Expr
    right: Expr


@dataclass(frozen=True)
class FunctionExpr(Expr):
    """Built-in call: BOUND, STR, LANG, DATATYPE, REGEX, isIRI, ..."""

    name: str  # normalized upper case
    args: Tuple[Expr, ...]


# -- graph patterns ------------------------------------------------------------

@dataclass(frozen=True)
class TriplePattern:
    """One triple pattern within a group."""

    triple: Triple

    def variables(self) -> Iterator[Variable]:
        return self.triple.variables()


@dataclass(frozen=True)
class Filter:
    expression: Expr


@dataclass(frozen=True)
class Optional_:
    pattern: "GroupPattern"


@dataclass(frozen=True)
class Union:
    branches: Tuple["GroupPattern", ...]


PatternElement = Union  # forward placeholder, replaced below


@dataclass(frozen=True)
class GroupPattern:
    """A ``{ ... }`` group: ordered pattern elements."""

    elements: Tuple["PatternElement", ...]

    def triple_patterns(self) -> Tuple[TriplePattern, ...]:
        return tuple(e for e in self.elements if isinstance(e, TriplePattern))

    def filters(self) -> Tuple[Filter, ...]:
        return tuple(e for e in self.elements if isinstance(e, Filter))

    def optionals(self) -> Tuple[Optional_, ...]:
        return tuple(e for e in self.elements if isinstance(e, Optional_))

    def unions(self) -> Tuple[Union, ...]:
        return tuple(e for e in self.elements if isinstance(e, Union))

    def subgroups(self) -> Tuple["GroupPattern", ...]:
        return tuple(e for e in self.elements if isinstance(e, GroupPattern))

    def all_variables(self) -> set:
        found = set()
        for element in self.elements:
            if isinstance(element, TriplePattern):
                found.update(element.variables())
            elif isinstance(element, Optional_):
                found.update(element.pattern.all_variables())
            elif isinstance(element, Union):
                for branch in element.branches:
                    found.update(branch.all_variables())
            elif isinstance(element, GroupPattern):
                found.update(element.all_variables())
        return found


# Resolve the PatternElement union properly now that all classes exist.
from typing import Union as _TypingUnion  # noqa: E402

PatternElement = _TypingUnion[TriplePattern, Filter, Optional_, Union, GroupPattern]
