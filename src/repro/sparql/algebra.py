"""Evaluation of SPARQL graph patterns over an in-memory Graph.

This is the "native triple store" query path: basic graph pattern matching
with index-backed candidate lookup, plus FILTER, OPTIONAL (left join), and
UNION.  Solutions are dictionaries mapping :class:`Variable` to concrete
terms.

Blank nodes appearing in a *pattern* act as non-distinguished variables
(standard SPARQL semantics), implemented by renaming them to fresh
variables before matching.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import BNode, Term, Triple, Variable
from . import algebra_ast as alg
from .expressions import filter_accepts

__all__ = ["Solution", "evaluate_pattern", "match_bgp", "instantiate", "substitute"]

Solution = Dict[Variable, Term]


def evaluate_pattern(graph: Graph, pattern: alg.GroupPattern) -> List[Solution]:
    """Evaluate a group graph pattern; returns all solutions."""
    pattern = _rename_bnodes(pattern)
    solutions: List[Solution] = [{}]

    # Group semantics: join all triple patterns and subgroups/unions/
    # optionals in order, then apply filters over the whole group.
    for element in pattern.elements:
        if isinstance(element, alg.TriplePattern):
            solutions = _join_triple(graph, solutions, element.triple)
        elif isinstance(element, alg.GroupPattern):
            solutions = _join_solutions(
                solutions, evaluate_pattern(graph, element)
            )
        elif isinstance(element, alg.Union):
            branch_solutions: List[Solution] = []
            for branch in element.branches:
                branch_solutions.extend(evaluate_pattern(graph, branch))
            solutions = _join_solutions(solutions, branch_solutions)
        elif isinstance(element, alg.Optional_):
            solutions = _left_join(graph, solutions, element.pattern)
        elif isinstance(element, alg.Filter):
            pass  # applied below, after the group is complete
        else:
            raise TypeError(f"unknown pattern element {type(element).__name__}")

    for filt in pattern.filters():
        solutions = [s for s in solutions if filter_accepts(filt.expression, s)]
    return solutions


def match_bgp(graph: Graph, triples: Tuple[Triple, ...]) -> List[Solution]:
    """Match a bare basic graph pattern (no filters/optionals)."""
    solutions: List[Solution] = [{}]
    for triple in triples:
        solutions = _join_triple(graph, solutions, triple)
    return solutions


def substitute(triple: Triple, solution: Solution) -> Triple:
    """Replace bound variables in a triple pattern."""

    def sub(term: Term) -> Term:
        if isinstance(term, Variable):
            return solution.get(term, term)
        return term

    return Triple(sub(triple.subject), sub(triple.predicate), sub(triple.object))


def instantiate(
    template: Tuple[Triple, ...], solution: Solution
) -> List[Triple]:
    """Instantiate a CONSTRUCT/MODIFY template against one solution.

    Triples left non-concrete (an unbound variable survived) are skipped,
    per SPARQL semantics.  Blank nodes in the template are renamed fresh
    per solution.
    """
    bnode_map: Dict[BNode, BNode] = {}
    result: List[Triple] = []
    for triple in template:
        candidate = substitute(triple, solution)
        s, p, o = candidate
        s = _fresh_bnode(s, bnode_map)
        o = _fresh_bnode(o, bnode_map)
        candidate = Triple(s, p, o)
        if candidate.is_concrete():
            result.append(candidate)
    return result


def _fresh_bnode(term: Term, mapping: Dict[BNode, BNode]) -> Term:
    if isinstance(term, BNode):
        if term not in mapping:
            mapping[term] = BNode()
        return mapping[term]
    return term


# ---------------------------------------------------------------------------

def _join_triple(
    graph: Graph, solutions: List[Solution], pattern: Triple
) -> List[Solution]:
    result: List[Solution] = []
    for solution in solutions:
        bound = substitute(pattern, solution)
        s = bound.subject if bound.subject.is_concrete() else None
        p = bound.predicate if bound.predicate.is_concrete() else None
        o = bound.object if bound.object.is_concrete() else None
        for match in graph.triples(s, p, o):
            extended = _unify(bound, match, solution)
            if extended is not None:
                result.append(extended)
    return result


def _unify(
    pattern: Triple, match: Triple, solution: Solution
) -> Optional[Solution]:
    extended = dict(solution)
    for pattern_term, matched_term in zip(pattern, match):
        if isinstance(pattern_term, Variable):
            existing = extended.get(pattern_term)
            if existing is not None and existing != matched_term:
                return None
            extended[pattern_term] = matched_term
        elif pattern_term != matched_term:
            return None
    return extended


def _compatible(left: Solution, right: Solution) -> Optional[Solution]:
    merged = dict(left)
    for var, term in right.items():
        existing = merged.get(var)
        if existing is not None and existing != term:
            return None
        merged[var] = term
    return merged


def _join_solutions(
    left: List[Solution], right: List[Solution]
) -> List[Solution]:
    result = []
    for l in left:
        for r in right:
            merged = _compatible(l, r)
            if merged is not None:
                result.append(merged)
    return result


def _left_join(
    graph: Graph, solutions: List[Solution], optional: alg.GroupPattern
) -> List[Solution]:
    optional_solutions = evaluate_pattern(graph, optional)
    result = []
    for solution in solutions:
        matched = False
        for opt in optional_solutions:
            merged = _compatible(solution, opt)
            if merged is not None:
                result.append(merged)
                matched = True
        if not matched:
            result.append(solution)
    return result


def _rename_bnodes(pattern: alg.GroupPattern) -> alg.GroupPattern:
    """Replace blank nodes in triple patterns with fresh variables."""
    mapping: Dict[BNode, Variable] = {}
    counter = [0]

    def rename_term(term: Term) -> Term:
        if isinstance(term, BNode):
            if term not in mapping:
                counter[0] += 1
                mapping[term] = Variable(f"__bnode_{term.label}_{counter[0]}")
            return mapping[term]
        return term

    def rename_element(element: alg.PatternElement) -> alg.PatternElement:
        if isinstance(element, alg.TriplePattern):
            s, p, o = element.triple
            return alg.TriplePattern(
                Triple(rename_term(s), rename_term(p), rename_term(o))
            )
        if isinstance(element, alg.GroupPattern):
            return alg.GroupPattern(
                tuple(rename_element(e) for e in element.elements)
            )
        if isinstance(element, alg.Optional_):
            return alg.Optional_(rename_element(element.pattern))
        if isinstance(element, alg.Union):
            return alg.Union(
                tuple(rename_element(b) for b in element.branches)
            )
        return element

    if not any(
        isinstance(t, BNode)
        for tp in _all_triple_patterns(pattern)
        for t in tp.triple
    ):
        return pattern
    return rename_element(pattern)


def _all_triple_patterns(
    pattern: alg.GroupPattern,
) -> Iterator[alg.TriplePattern]:
    for element in pattern.elements:
        if isinstance(element, alg.TriplePattern):
            yield element
        elif isinstance(element, alg.GroupPattern):
            yield from _all_triple_patterns(element)
        elif isinstance(element, alg.Optional_):
            yield from _all_triple_patterns(element.pattern)
        elif isinstance(element, alg.Union):
            for branch in element.branches:
                yield from _all_triple_patterns(branch)
