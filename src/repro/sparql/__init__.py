"""SPARQL substrate: query + update parsing and native-graph evaluation.

Public API::

    from repro.sparql import parse_query, parse_update, query, update
"""

from . import algebra_ast
from .algebra import Solution, evaluate_pattern, instantiate, match_bgp, substitute
from .engine import SelectResult, apply_operation, query, update
from .expressions import effective_boolean_value, evaluate_expr, filter_accepts
from .query_ast import AskQuery, ConstructQuery, OrderCondition, Query, SelectQuery
from .query_parser import parse_query
from .update_ast import (
    Clear,
    DeleteData,
    InsertData,
    Modify,
    UpdateOperation,
    UpdateRequest,
)
from .update_parser import parse_update

__all__ = [
    "AskQuery",
    "Clear",
    "ConstructQuery",
    "DeleteData",
    "InsertData",
    "Modify",
    "OrderCondition",
    "Query",
    "SelectQuery",
    "SelectResult",
    "Solution",
    "UpdateOperation",
    "UpdateRequest",
    "algebra_ast",
    "apply_operation",
    "effective_boolean_value",
    "evaluate_expr",
    "evaluate_pattern",
    "filter_accepts",
    "instantiate",
    "match_bgp",
    "parse_query",
    "parse_update",
    "query",
    "substitute",
    "update",
]
