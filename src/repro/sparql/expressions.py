"""SPARQL filter-expression evaluation.

Implements the SPARQL 1.0 operator semantics the paper-era engines used:
effective boolean value (EBV), type errors propagating as errors that make
a FILTER reject the solution, numeric promotion across XSD numeric types,
and the core built-ins (BOUND, STR, LANG, DATATYPE, REGEX, isIRI/isBlank/
isLiteral, sameTerm, langMatches).
"""

from __future__ import annotations

import re
from typing import Any, Dict, Union

from ..errors import SPARQLEvalError
from ..rdf.terms import BNode, Literal, Term, URIRef, Variable, XSD_BOOLEAN, XSD_STRING
from . import algebra_ast as alg

__all__ = ["EvalError", "evaluate_expr", "effective_boolean_value", "filter_accepts"]

Bindings = Dict[Variable, Term]


class EvalError(SPARQLEvalError):
    """A SPARQL expression type error (silently fails the FILTER)."""


def filter_accepts(expr: alg.Expr, bindings: Bindings) -> bool:
    """True when the FILTER expression evaluates to EBV true.

    Evaluation errors reject the solution (SPARQL semantics) instead of
    propagating.
    """
    try:
        return effective_boolean_value(evaluate_expr(expr, bindings))
    except EvalError:
        return False


def evaluate_expr(expr: alg.Expr, bindings: Bindings) -> Union[Term, bool, int, float, str]:
    """Evaluate an expression to a term or plain Python value."""
    if isinstance(expr, alg.TermExpr):
        term = expr.term
        if isinstance(term, Variable):
            value = bindings.get(term)
            if value is None:
                raise EvalError(f"unbound variable ?{term.name}")
            return value
        return term
    if isinstance(expr, alg.BoolOp):
        return _bool_op(expr, bindings)
    if isinstance(expr, alg.Not):
        return not effective_boolean_value(evaluate_expr(expr.operand, bindings))
    if isinstance(expr, alg.Comparison):
        return _comparison(expr, bindings)
    if isinstance(expr, alg.Arithmetic):
        return _arithmetic(expr, bindings)
    if isinstance(expr, alg.FunctionExpr):
        return _function(expr, bindings)
    raise EvalError(f"cannot evaluate {type(expr).__name__}")


def effective_boolean_value(value: Any) -> bool:
    """SPARQL EBV rules."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, Literal):
        if value.datatype == XSD_BOOLEAN:
            return value.lexical.strip() in ("true", "1")
        if value.is_numeric():
            try:
                return float(value.lexical) != 0
            except ValueError:
                raise EvalError(f"invalid numeric literal {value.lexical!r}")
        if value.datatype is None or value.datatype == XSD_STRING:
            return len(value.lexical) > 0
        raise EvalError(f"no EBV for datatype {value.datatype}")
    raise EvalError(f"no EBV for {value!r}")


# ---------------------------------------------------------------------------

def _bool_op(expr: alg.BoolOp, bindings: Bindings) -> bool:
    # SPARQL || / && have error-tolerant semantics: if one side errors but
    # the other determines the result, the result stands.
    def side(e: alg.Expr):
        try:
            return effective_boolean_value(evaluate_expr(e, bindings))
        except EvalError:
            return None

    left = side(expr.left)
    right = side(expr.right)
    if expr.op == "||":
        if left is True or right is True:
            return True
        if left is False and right is False:
            return False
        raise EvalError("|| over errors")
    if left is False or right is False:
        return False
    if left is True and right is True:
        return True
    raise EvalError("&& over errors")


def _comparison(expr: alg.Comparison, bindings: Bindings) -> bool:
    left = evaluate_expr(expr.left, bindings)
    right = evaluate_expr(expr.right, bindings)
    op = expr.op
    if op in ("=", "!="):
        equal = _term_equal(left, right)
        return equal if op == "=" else not equal
    lv, rv = _comparable_pair(left, right)
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    return lv >= rv


def _term_equal(left: Any, right: Any) -> bool:
    lnum = _try_numeric(left)
    rnum = _try_numeric(right)
    if lnum is not None and rnum is not None:
        return lnum == rnum
    lval = _plain_value(left)
    rval = _plain_value(right)
    if lval is not None and rval is not None:
        return lval == rval
    if isinstance(left, Term) and isinstance(right, Term):
        return left == right
    return left == right


def _comparable_pair(left: Any, right: Any):
    lnum = _try_numeric(left)
    rnum = _try_numeric(right)
    if lnum is not None and rnum is not None:
        return lnum, rnum
    lstr = _plain_value(left)
    rstr = _plain_value(right)
    if isinstance(lstr, str) and isinstance(rstr, str):
        return lstr, rstr
    raise EvalError(f"cannot order {left!r} and {right!r}")


def _try_numeric(value: Any):
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Literal) and value.is_numeric():
        try:
            py = value.to_python()
            return py
        except ValueError:
            raise EvalError(f"invalid numeric literal {value.lexical!r}")
    return None


def _plain_value(value: Any):
    if isinstance(value, str):
        return value
    if isinstance(value, Literal):
        if value.datatype is None or value.datatype == XSD_STRING:
            if value.language is None:
                return value.lexical
        return None
    return None


def _arithmetic(expr: alg.Arithmetic, bindings: Bindings):
    left = _require_numeric(evaluate_expr(expr.left, bindings))
    right = _require_numeric(evaluate_expr(expr.right, bindings))
    if expr.op == "+":
        return left + right
    if expr.op == "-":
        return left - right
    if expr.op == "*":
        return left * right
    if right == 0:
        raise EvalError("division by zero")
    return left / right


def _require_numeric(value: Any):
    number = _try_numeric(value)
    if number is None:
        raise EvalError(f"expected a number, got {value!r}")
    return number


def _function(expr: alg.FunctionExpr, bindings: Bindings):
    name = expr.name
    if name == "BOUND":
        arg = expr.args[0]
        if not (isinstance(arg, alg.TermExpr) and isinstance(arg.term, Variable)):
            raise EvalError("BOUND requires a variable")
        return arg.term in bindings

    args = [evaluate_expr(a, bindings) for a in expr.args]
    if name in ("ISIRI", "ISURI"):
        return isinstance(args[0], URIRef)
    if name == "ISBLANK":
        return isinstance(args[0], BNode)
    if name == "ISLITERAL":
        return isinstance(args[0], (Literal, str, int, float, bool))
    if name == "STR":
        value = args[0]
        if isinstance(value, URIRef):
            return value.value
        if isinstance(value, Literal):
            return value.lexical
        if isinstance(value, (str, int, float)):
            return str(value)
        raise EvalError(f"STR not defined for {value!r}")
    if name == "LANG":
        value = args[0]
        if isinstance(value, Literal):
            return value.language or ""
        if isinstance(value, str):
            return ""
        raise EvalError("LANG requires a literal")
    if name == "DATATYPE":
        value = args[0]
        if isinstance(value, Literal):
            if value.language is not None:
                raise EvalError("DATATYPE of language-tagged literal")
            return URIRef(value.datatype or XSD_STRING)
        raise EvalError("DATATYPE requires a literal")
    if name == "REGEX":
        text = _string_arg(args[0])
        pattern = _string_arg(args[1])
        flags = 0
        if len(args) > 2:
            flag_text = _string_arg(args[2])
            if "i" in flag_text:
                flags |= re.IGNORECASE
            if "s" in flag_text:
                flags |= re.DOTALL
            if "m" in flag_text:
                flags |= re.MULTILINE
        try:
            return re.search(pattern, text, flags) is not None
        except re.error as exc:
            raise EvalError(f"invalid regex: {exc}") from None
    if name == "SAMETERM":
        return args[0] == args[1]
    if name == "LANGMATCHES":
        tag = _string_arg(args[0]).lower()
        pattern = _string_arg(args[1]).lower()
        if pattern == "*":
            return tag != ""
        return tag == pattern or tag.startswith(pattern + "-")
    raise EvalError(f"unknown function {name}")


def _string_arg(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, Literal):
        return value.lexical
    raise EvalError(f"expected a string, got {value!r}")
