"""Parser for SPARQL/Update requests.

Grammar (after the shared prologue), following the 2008 member submission
the paper builds on, plus the SPARQL 1.1-style ``DELETE/INSERT ... WHERE``
that the submission's MODIFY generalizes:

    Update      := Prologue Operation ( ';'? Operation )*
    Operation   := InsertData | DeleteData | Modify | DeleteWhere
                 | InsertWhere | Clear
    InsertData  := 'INSERT' 'DATA' QuadData
    DeleteData  := 'DELETE' 'DATA' QuadData
    Modify      := 'MODIFY' ('DELETE' Template)? ('INSERT' Template)?
                   'WHERE' GroupGraphPattern
    DeleteWhere := 'DELETE' Template ('INSERT' Template)? 'WHERE' GGP
    InsertWhere := 'INSERT' Template 'WHERE' GGP
    Clear       := 'CLEAR'

INSERT DATA / DELETE DATA payloads must be concrete (no variables) — the
parser enforces this, matching the submission.  Prepared operations
(:mod:`repro.core.session`) relax the rule: with ``allow_placeholders``
the data blocks may contain variables that are bound to concrete terms at
execute time, mirroring SQL prepared-statement parameters.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..rdf.namespace import PrefixMap
from ..rdf.terms import Triple
from .parse_base import SPARQLParserBase
from .update_ast import (
    Clear,
    DeleteData,
    InsertData,
    Modify,
    UpdateOperation,
    UpdateRequest,
)

__all__ = ["parse_update", "UpdateParser"]


def parse_update(
    text: str,
    prefixes: Optional[PrefixMap] = None,
    allow_placeholders: bool = False,
) -> UpdateRequest:
    """Parse a SPARQL/Update request string.

    ``allow_placeholders`` permits variables inside INSERT DATA / DELETE
    DATA blocks (prepared-operation templates); by default the submission's
    concreteness rule is enforced.
    """
    parser = UpdateParser(text, prefixes=prefixes)
    parser.allow_placeholders = allow_placeholders
    return parser.request()


class UpdateParser(SPARQLParserBase):
    #: When True, data blocks may contain variables (prepared templates).
    allow_placeholders = False

    def request(self) -> UpdateRequest:
        self.parse_prologue()
        operations: List[UpdateOperation] = [self._operation()]
        while True:
            self.accept(";")
            self.skip_ws()
            if self.at_end():
                break
            operations.append(self._operation())
        return UpdateRequest(operations=tuple(operations))

    def _operation(self) -> UpdateOperation:
        self.skip_ws()
        if self.at_keyword("INSERT"):
            self.pos += len("INSERT")
            if self.accept_keyword("DATA"):
                return InsertData(triples=self._concrete_triples("INSERT DATA"))
            # INSERT {template} WHERE {pattern}
            insert_template = self._template()
            self.expect_keyword("WHERE")
            where = self.parse_group_graph_pattern()
            return Modify(
                delete_template=(), insert_template=insert_template, where=where
            )
        if self.at_keyword("DELETE"):
            self.pos += len("DELETE")
            if self.accept_keyword("DATA"):
                return DeleteData(triples=self._concrete_triples("DELETE DATA"))
            delete_template = self._template()
            insert_template: Tuple[Triple, ...] = ()
            if self.accept_keyword("INSERT"):
                insert_template = self._template()
            self.expect_keyword("WHERE")
            where = self.parse_group_graph_pattern()
            return Modify(
                delete_template=delete_template,
                insert_template=insert_template,
                where=where,
            )
        if self.accept_keyword("MODIFY"):
            # An optional graph IRI may follow MODIFY in the submission;
            # the mediator has a single graph, so accept and ignore it.
            self.skip_ws()
            if self.peek() == "<":
                self._parse_iriref()
            delete_template = ()
            insert_template = ()
            if self.accept_keyword("DELETE"):
                delete_template = self._template()
            if self.accept_keyword("INSERT"):
                insert_template = self._template()
            if not delete_template and not insert_template:
                raise self.error("MODIFY requires a DELETE and/or INSERT clause")
            self.expect_keyword("WHERE")
            where = self.parse_group_graph_pattern()
            return Modify(
                delete_template=delete_template,
                insert_template=insert_template,
                where=where,
            )
        if self.accept_keyword("CLEAR"):
            return Clear()
        raise self.error("expected INSERT, DELETE, MODIFY, or CLEAR")

    def _template(self) -> Tuple[Triple, ...]:
        self.expect("{")
        triples = self.parse_triples_block(allow_variables=True)
        self.expect("}")
        return tuple(triples)

    def _concrete_triples(self, operation: str) -> Tuple[Triple, ...]:
        self.expect("{")
        triples = self.parse_triples_block(allow_variables=True)
        self.expect("}")
        if not self.allow_placeholders:
            for triple in triples:
                if not triple.is_concrete():
                    raise self.error(
                        f"{operation} must not contain variables: {triple.n3()}"
                    )
        return tuple(triples)
