#!/usr/bin/env python3
"""Enterprise data-exchange scenario (paper Section 1's motivation).

Two departments run *different relational schemas* for the same domain.
Because both expose their data through OntoAccess with mappings onto the
same shared ontology (FOAF/DC/ONT), they can exchange updates purely on
the semantic level: department A exports entities as RDF, department B
imports them via SPARQL/Update — "RDF and a shared ontology can be used to
exchange data even if the individual relational schemata do not match."

Run:  python examples/enterprise_sync.py
"""

from repro import Database, OntoAccess, generate_mapping
from repro.rdf import DC, FOAF, Namespace, ONT
from repro.sparql.update_ast import InsertData, UpdateRequest
from repro.workloads.publication import build_database, build_mapping

PREFIXES = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
"""


def department_a() -> OntoAccess:
    """Department A: the paper's publication schema."""
    db = build_database()
    mediator = OntoAccess(db, build_mapping(db))
    mediator.update(
        PREFIXES
        + """INSERT DATA {
            ex:team1 foaf:name "Software Engineering" ; ont:teamCode "SEAL" .
            ex:author1 foaf:firstName "Matthias" ;
                       foaf:family_name "Hert" ;
                       foaf:mbox <mailto:hert@ifi.uzh.ch> ;
                       ont:team ex:team1 .
            ex:author2 foaf:firstName "Gerald" ;
                       foaf:family_name "Reif" ;
                       ont:team ex:team1 .
        }"""
    )
    return mediator


def department_b() -> OntoAccess:
    """Department B: a *different* schema for the same domain — people and
    groups, with other table/column names — mapped onto the same ontology."""
    db = Database()
    db.execute_script(
        """
        CREATE TABLE research_group (
            gid INTEGER PRIMARY KEY,
            label VARCHAR(200),
            short_code VARCHAR(20)
        );
        CREATE TABLE person (
            pid INTEGER PRIMARY KEY,
            given_name VARCHAR(100),
            surname VARCHAR(100) NOT NULL,
            mail VARCHAR(200),
            grp INTEGER REFERENCES research_group(gid)
        );
        """
    )
    mapping = generate_mapping(
        db,
        uri_prefix="http://example.org/db/",
        class_overrides={
            "person": FOAF.Person,
            "research_group": FOAF.Group,
        },
        property_overrides={
            ("person", "given_name"): FOAF.firstName,
            ("person", "surname"): FOAF.family_name,
            ("person", "mail"): FOAF.mbox,
            ("person", "grp"): ONT.team,
            ("research_group", "label"): FOAF.name,
            ("research_group", "short_code"): ONT.teamCode,
        },
        value_pattern_overrides={("person", "mail"): "mailto:%%mail%%"},
        uri_pattern_overrides={
            # Shared instance URIs: both departments agree on the URI scheme
            # even though table names differ.
            "person": "author%%pid%%",
            "research_group": "team%%gid%%",
        },
    )
    return OntoAccess(db, mapping)


def main() -> None:
    dept_a = department_a()
    dept_b = department_b()

    print("Department A (publication schema):")
    print(f"   tables: {dept_a.db.schema.table_names()}")
    print("Department B (HR schema):")
    print(f"   tables: {dept_b.db.schema.table_names()}")

    # A exports its people/groups as RDF on the shared ontology.
    exported = dept_a.dump()
    print(f"\nA exports {len(exported)} triples")

    # B imports the exchanged graph through a session: the whole import is
    # one atomic batch (one database transaction — either every exported
    # entity lands in B's schema or none does), and the same triples land
    # in completely different tables/columns.
    request = UpdateRequest(operations=(InsertData(tuple(exported)),))
    result = dept_b.session().execute_all([request])
    print(f"B translated the import into {result.statements_executed()} SQL "
          "statements (one transaction):")
    for line in result.sql():
        print("   " + line)

    # Verify on the relational level that the data arrived in B's schema.
    rows = dept_b.db.query(
        "SELECT p.surname, g.label FROM person p "
        "JOIN research_group g ON p.grp = g.gid ORDER BY p.surname"
    )
    print("\nB's relational view of the imported data:")
    for surname, label in rows:
        print(f"   {surname:>6} works in {label}")

    # And on the semantic level both stores now answer the same query —
    # prepared once per session, reusable for continuous sync monitoring.
    query = (
        PREFIXES
        + "SELECT ?n WHERE { ?x foaf:family_name ?n . } ORDER BY ?n"
    )
    prepared_a = dept_a.session().prepare(query)
    prepared_b = dept_b.session().prepare(query)
    names_a = [r[0].lexical for r in prepared_a.execute().rows()]
    names_b = [r[0].lexical for r in prepared_b.execute().rows()]
    print(f"\nsame SPARQL query on A: {names_a}")
    print(f"same SPARQL query on B: {names_b}")
    assert names_a == names_b
    print("departments agree ✓")


if __name__ == "__main__":
    main()
