#!/usr/bin/env python3
"""Quickstart: update a relational database through SPARQL/Update.

Builds the paper's publication database (Figure 1), auto-generates the R3M
mapping with the paper's vocabulary (Table 1), and walks the core write
path: INSERT DATA → SQL INSERT, incremental INSERT DATA → SQL UPDATE,
DELETE DATA → SQL UPDATE/DELETE, plus a query over the mediated data.

Run:  python examples/quickstart.py
"""

from repro import OntoAccess
from repro.workloads.publication import build_database, build_mapping

PREFIXES = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
"""


def show(title, sql_lines):
    print(f"\n== {title}")
    for line in sql_lines:
        print("   " + line)


def main() -> None:
    db = build_database()
    mediator = OntoAccess(db, build_mapping(db))

    # 1. INSERT DATA about a new team (paper Listing 13 -> Listing 14).
    insert_team = PREFIXES + """
    INSERT DATA {
        ex:team4 foaf:name "Database Technology" ;
                 ont:teamCode "DBTG" .
    }
    """
    result = mediator.update(insert_team)
    show("INSERT DATA (new team) translated to", result.sql())

    # 2. Incremental data entry: first only the mandatory last name ...
    result = mediator.update(
        PREFIXES + 'INSERT DATA { ex:author1 foaf:family_name "Hert" . }'
    )
    show("INSERT DATA (minimal author) translated to", result.sql())

    # ... then more triples about the same entity become an SQL UPDATE.
    result = mediator.update(
        PREFIXES
        + """INSERT DATA {
            ex:author1 foaf:firstName "Matthias" ;
                       foaf:mbox <mailto:hert@ifi.uzh.ch> ;
                       ont:team ex:team4 .
        }"""
    )
    show("second INSERT DATA (same author) translated to", result.sql())

    # 3. DELETE DATA of one attribute → UPDATE ... SET email = NULL.
    result = mediator.update(
        PREFIXES
        + "DELETE DATA { ex:author1 foaf:mbox <mailto:hert@ifi.uzh.ch> . }"
    )
    show("DELETE DATA (one attribute) translated to", result.sql())

    # 4. Query the relational data with SPARQL (translated to SQL).
    outcome = mediator.query_outcome(
        PREFIXES
        + """SELECT ?name ?team WHERE {
            ?a foaf:family_name ?name ;
               ont:team ?t .
            ?t foaf:name ?team .
        }"""
    )
    print("\n== SPARQL SELECT evaluated via SQL:")
    print("   " + (outcome.select_sql or "(fallback)"))
    for row in outcome.result.rows():
        print("   result:", ", ".join(term.n3() for term in row))

    # 5. The database state, dumped as RDF.
    print(f"\n== final state: {len(mediator.dump())} triples, "
          f"{db.row_count('author')} author row(s), "
          f"{db.row_count('team')} team row(s)")


if __name__ == "__main__":
    main()
