#!/usr/bin/env python3
"""Quickstart: update a relational database through SPARQL/Update.

Builds the paper's publication database (Figure 1), auto-generates the R3M
mapping with the paper's vocabulary (Table 1), and walks the core write
path through the Session API: prepared operations (parse + translate once,
execute many times, placeholder bindings), an atomic batch, a query, and —
for back-compat — the legacy ``OntoAccess.update`` facade.

Run:  python examples/quickstart.py
"""

from repro import OntoAccess
from repro.workloads.publication import build_database, build_mapping

PREFIXES = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
"""


def show(title, sql_lines):
    print(f"\n== {title}")
    for line in sql_lines:
        print("   " + line)


def main() -> None:
    db = build_database()
    mediator = OntoAccess(db, build_mapping(db))
    session = mediator.session()

    # 1. One-shot execute (paper Listing 13 -> Listing 14).
    result = session.execute(PREFIXES + """
    INSERT DATA {
        ex:team4 foaf:name "Database Technology" ;
                 ont:teamCode "DBTG" .
    }
    """)
    show("INSERT DATA (new team) translated to", result.sql())

    # 2. Prepared operation with placeholders: parsed once, executed with
    #    different bindings — the SQL prepared-statement idiom for SPARQL.
    insert_author = session.prepare(PREFIXES + """
    INSERT DATA { ex:author1 foaf:family_name ?last . }
    """)
    result = insert_author.execute(bindings={"last": "Hert"})
    show("prepared INSERT DATA executed with bindings", result.sql())

    # ... later triples about the same entity become an SQL UPDATE.
    result = session.execute(
        PREFIXES
        + """INSERT DATA {
            ex:author1 foaf:firstName "Matthias" ;
                       foaf:mbox <mailto:hert@ifi.uzh.ch> ;
                       ont:team ex:team4 .
        }"""
    )
    show("second INSERT DATA (same author) translated to", result.sql())

    # 3. An atomic batch: both operations inside ONE database transaction
    #    (the facade would commit each operation separately).
    batch = session.execute_all([
        PREFIXES + 'INSERT DATA { ex:team5 foaf:name "Software Evolution" . }',
        PREFIXES + "DELETE DATA { ex:author1 foaf:mbox <mailto:hert@ifi.uzh.ch> . }",
    ])
    show("batch of 2 operations, one transaction", batch.sql())

    # 4. Prepared query: the SPARQL->SQL translation is computed once and
    #    reused; execution goes through the engine's compiled plan cache.
    by_team = session.prepare(PREFIXES + """
    SELECT ?name ?team WHERE {
        ?a foaf:family_name ?name ;
           ont:team ?t .
        ?t foaf:name ?team .
    }""")
    outcome = by_team.outcome()
    print("\n== prepared SPARQL SELECT evaluated via SQL:")
    print("   " + (outcome.select_sql or "(fallback)"))
    for row in outcome.result.rows():
        print("   result:", ", ".join(term.n3() for term in row))

    # 5. Back-compat: the legacy facade still works — one-shot parse +
    #    translate + execute per call, one transaction per operation.
    result = mediator.update(
        PREFIXES + 'INSERT DATA { ex:team6 ont:teamCode "LEGACY" . }'
    )
    show("legacy OntoAccess.update facade", result.sql())

    # 6. The database state, dumped as RDF.
    print(f"\n== final state: {len(session.dump())} triples, "
          f"{db.row_count('author')} author row(s), "
          f"{db.row_count('team')} team row(s)")


if __name__ == "__main__":
    main()
