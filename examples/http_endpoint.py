#!/usr/bin/env python3
"""The prototype HTTP endpoint (paper Section 6), exercised by a client.

Starts the OntoAccess endpoint on an ephemeral port, then acts as a remote
Semantic Web client: posts SPARQL/Update requests, inspects the RDF
feedback (both a confirmation and a semantically rich error message),
queries the data, and fetches the mapping document.

Run:  python examples/http_endpoint.py
"""

from repro import OntoAccess
from repro.server import OntoAccessClient, OntoAccessEndpoint
from repro.workloads.publication import build_database, build_mapping

GOOD_UPDATE = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
INSERT DATA {
    ex:team5 foaf:name "Software Engineering" ; ont:teamCode "SEAL" .
    ex:author6 foaf:firstName "Matthias" ;
               foaf:family_name "Hert" ;
               foaf:mbox <mailto:hert@ifi.uzh.ch> ;
               ont:team ex:team5 .
}
"""

#: Invalid from the RDB perspective: author without the NOT NULL lastname.
BAD_UPDATE = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ex:   <http://example.org/db/>
INSERT DATA { ex:author7 foaf:firstName "Nameless" . }
"""

QUERY = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont:  <http://example.org/ontology#>
SELECT ?name ?team WHERE {
    ?a foaf:family_name ?name ;
       ont:team ?t .
    ?t foaf:name ?team .
}
"""


def main() -> None:
    db = build_database()
    mediator = OntoAccess(db, build_mapping(db))

    with OntoAccessEndpoint(mediator) as endpoint:
        print(f"endpoint running at {endpoint.url}")
        client = OntoAccessClient(endpoint.url)

        print("\n== POST /update (valid request)")
        feedback = client.update(GOOD_UPDATE)
        print(f"   ok={feedback.ok}")

        print("\n== POST /update (request violating a NOT NULL constraint)")
        feedback = client.update(BAD_UPDATE)
        print(f"   ok={feedback.ok}")
        print(f"   code:    {feedback.code}")
        print(f"   message: {feedback.message}")
        print(f"   hint:    {feedback.hint}")

        print("\n== POST /query")
        print(client.query_text(QUERY))

        print("== GET /dump (first lines)")
        for line in list(client.dump().triples())[:5]:
            print("   " + line.n3())

        print("\n== GET /mapping (first lines)")
        for line in client.mapping_turtle().splitlines()[:8]:
            print("   " + line)

        print(f"\nserver handled {endpoint.requests_served} requests, "
              f"{endpoint.errors_returned} rejected")


if __name__ == "__main__":
    main()
