#!/usr/bin/env python3
"""The HTTP endpoint (paper Section 6), shaped after the SPARQL Protocol.

Starts the OntoAccess endpoint on an ephemeral port, then acts as a remote
Semantic Web client: posts SPARQL/Update requests
(``application/sparql-update``), inspects the RDF feedback (confirmation
and a semantically rich error message), queries with SPARQL JSON results
via content negotiation, runs an atomic batch through ``POST /batch``, and
fetches the mapping document.

The endpoint drives one shared Session, so the repeated requests below hit
its prepared-operation cache — parse and translation are paid once per
distinct operation text, not per request.

Run:  python examples/http_endpoint.py
"""

from repro import OntoAccess
from repro.server import OntoAccessClient, OntoAccessEndpoint
from repro.workloads.publication import build_database, build_mapping

GOOD_UPDATE = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
INSERT DATA {
    ex:team5 foaf:name "Software Engineering" ; ont:teamCode "SEAL" .
    ex:author6 foaf:firstName "Matthias" ;
               foaf:family_name "Hert" ;
               foaf:mbox <mailto:hert@ifi.uzh.ch> ;
               ont:team ex:team5 .
}
"""

#: Invalid from the RDB perspective: author without the NOT NULL lastname.
BAD_UPDATE = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ex:   <http://example.org/db/>
INSERT DATA { ex:author7 foaf:firstName "Nameless" . }
"""

BATCH = [
    """
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX ex:   <http://example.org/db/>
    INSERT DATA { ex:author8 foaf:family_name "Reif" . }
    """,
    """
    PREFIX ont: <http://example.org/ontology#>
    PREFIX ex:  <http://example.org/db/>
    INSERT DATA { ex:team6 ont:teamCode "DBTG" . }
    """,
]

QUERY = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont:  <http://example.org/ontology#>
SELECT ?name ?team WHERE {
    ?a foaf:family_name ?name ;
       ont:team ?t .
    ?t foaf:name ?team .
}
"""


def main() -> None:
    db = build_database()
    mediator = OntoAccess(db, build_mapping(db))

    with OntoAccessEndpoint(mediator) as endpoint:
        print(f"endpoint running at {endpoint.url}")
        client = OntoAccessClient(endpoint.url)

        print("\n== POST /update (valid request)")
        feedback = client.update(GOOD_UPDATE)
        print(f"   ok={feedback.ok}")

        print("\n== POST /update (request violating a NOT NULL constraint)")
        feedback = client.update(BAD_UPDATE)
        print(f"   ok={feedback.ok}")
        print(f"   code:    {feedback.code}")
        print(f"   message: {feedback.message}")
        print(f"   hint:    {feedback.hint}")

        print("\n== POST /batch (two requests, ONE database transaction)")
        feedback = client.batch(BATCH)
        print(f"   ok={feedback.ok}, author rows now "
              f"{db.row_count('author')}, team rows {db.row_count('team')}")

        print("\n== POST /query (Accept: application/sparql-results+json)")
        document = client.query_json(QUERY)
        print(f"   variables: {document['head']['vars']}")
        for binding in document["results"]["bindings"]:
            values = {k: v["value"] for k, v in binding.items()}
            print(f"   binding:   {values}")

        print("\n== POST /query (default tab-separated rendering)")
        print(client.query_text(QUERY))

        print("== GET /dump (first lines)")
        for line in list(client.dump().triples())[:5]:
            print("   " + line.n3())

        print("\n== GET /mapping (first lines)")
        for line in client.mapping_turtle().splitlines()[:8]:
            print("   " + line)

        print(f"\nserver handled {endpoint.requests_served} requests, "
              f"{endpoint.errors_returned} rejected")


if __name__ == "__main__":
    main()
