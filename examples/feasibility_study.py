#!/usr/bin/env python3
"""The paper's feasibility study (Section 7), end to end.

Prints Table 1 (the use-case mapping overview) and then replays every
listing: the SPARQL/Update operations 9, 13, 15, 17, and the MODIFY of
Listing 11, each followed by the SQL the mediator generates — the same SQL
the paper shows in Listings 10, 14, 16, 18, and 12's translation.

Run:  python examples/feasibility_study.py
"""

from repro import OntoAccess
from repro.workloads.publication import (
    build_database,
    build_mapping,
    table1_rows,
)

PREFIXES = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX dc:   <http://purl.org/dc/elements/1.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
PREFIX rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
"""

LISTING_13 = PREFIXES + """
INSERT DATA {
    ex:team4 foaf:name "Database Technology" ;
             ont:teamCode "DBTG" .
}
"""

LISTING_15 = PREFIXES + """
INSERT DATA {
    ex:pub12 dc:title "Relational..." ;
        ont:pubYear "2009" ;
        ont:pubType ex:pubtype4 ;
        dc:publisher ex:publisher3 ;
        dc:creator ex:author6 .

    ex:author6 foaf:title "Mr" ;
        foaf:firstName "Matthias" ;
        foaf:family_name "Hert" ;
        foaf:mbox <mailto:hert@ifi.uzh.ch> ;
        ont:team ex:team5 .

    ex:team5 foaf:name "Software Engineering" ;
        ont:teamCode "SEAL" .

    ex:pubtype4 ont:type "inproceedings" .

    ex:publisher3 ont:name "Springer" .
}
"""

LISTING_17 = PREFIXES + """
DELETE DATA {
    ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> .
}
"""

LISTING_11 = PREFIXES + """
MODIFY
DELETE { ?x foaf:mbox ?mbox . }
INSERT { ?x foaf:mbox <mailto:hert@example.com> . }
WHERE {
    ?x rdf:type foaf:Person ;
       foaf:firstName "Matthias" ;
       foaf:family_name "Hert" ;
       foaf:mbox ?mbox .
}
"""


def banner(text: str) -> None:
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def run(session, label: str, request: str) -> None:
    banner(label)
    print(request.strip())
    result = session.execute(request)
    print("\n-- translated SQL (executed in one transaction):")
    for line in result.sql():
        print("   " + line)


def main() -> None:
    db = build_database()
    mediator = OntoAccess(db, build_mapping(db))
    session = mediator.session()

    banner("Table 1: Use case mapping overview")
    print(f"{'table -> class':<34} attribute -> property")
    print("-" * 72)
    for left, right in table1_rows(mediator.mapping):
        print(f"{left:<34} {right}")

    run(session, "Listing 13 -> Listing 14 (single-table INSERT DATA)", LISTING_13)
    run(
        session,
        "Listing 15 -> Listing 16 (complete dataset, FK-sorted INSERTs)",
        LISTING_15,
    )
    run(session, "Listing 17 -> Listing 18 (attribute DELETE DATA)", LISTING_17)

    # Listing 17 removed the email; restore it so the MODIFY of Listing 11
    # has its one result binding, as in the paper's standalone example.
    session.execute(
        PREFIXES
        + "INSERT DATA { ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> . }"
    )

    banner("Listing 11 -> Listing 12 (MODIFY via Algorithm 2)")
    print(LISTING_11.strip())
    result = session.execute(LISTING_11)
    op = result.operations[0]
    print(f"\n-- WHERE clause evaluated via translated SQL: {op.used_sql_select}")
    print(f"-- result bindings: {op.bindings}")
    print("-- per-binding SQL (redundant delete optimized away):")
    for line in result.sql():
        print("   " + line)

    banner("Final database state")
    for table in ("team", "pubtype", "publisher", "publication", "author",
                  "publication_author"):
        print(f"   {table}: {db.row_count(table)} row(s)")
    row = db.get_row_by_pk("author", (6,))
    print(f"   author6 email is now: {row['email']}")


if __name__ == "__main__":
    main()
