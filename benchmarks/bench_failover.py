"""Failover benchmark (ISSUE 9): write-unavailability window.

Spawns a real two-process topology via the CLI — a durable primary with
a WAL log shipper, and one replica following it with
``--promote-on-primary-loss`` armed — then SIGKILLs the primary under a
running write load and measures the wall-clock window from the kill to
the **first accepted write** on the auto-promoted replica.  That window
is the headline failover metric: it covers heartbeat-silence detection
(``--primary-loss-timeout``), the promotion itself (drain + epoch bump +
flipping the database writable), and the endpoint gates lifting.

Methodology notes:

* The window's floor is the configured loss timeout — a detector that
  promoted faster than the silence threshold would be promoting on
  jitter, so the in-run assertion checks *both* sides: the window must
  be at least ``PRIMARY_LOSS_TIMEOUT`` and under a generous ceiling.
* The writer probes the replica endpoint closed-loop after the kill;
  403 ``read-only-replica`` refusals before promotion are expected and
  counted (they are the fail-fast path clients re-route on).
* The CI trend gate compares ``failover_window`` uncalibrated
  (``--calibration ''``): the window is dominated by the configured
  timeouts, which are machine-independent, so only a detection or
  promotion stall (3x+) trips it.

Run with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_failover.py -s
"""

import http.client
import json
import os
import pathlib
import re
import subprocess
import sys
import time

BENCH_DIR = pathlib.Path(__file__).parent
ARTIFACT = BENCH_DIR / "BENCH_failover.json"
SRC = str(BENCH_DIR.parent / "src")

PRIMARY_LOSS_TIMEOUT = 0.5
HEARTBEAT_INTERVAL = 0.05
HEARTBEAT_GRACE = 0.3
SEED_WRITES = 5
WINDOW_CEILING_S = 15.0

SELECT_TEAMS = (
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
    "SELECT ?n WHERE { ?t foaf:name ?n }"
)


def _update(index):
    return (
        "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
        "PREFIX ont:  <http://example.org/ontology#> "
        f"INSERT DATA {{ <http://example.org/db/team{index}> "
        f'foaf:name "Team {index}" ; ont:teamCode "T{index}" . }}'
    )


def _request(port, method, path, body=None, content_type=None, timeout=30.0,
             accept=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": content_type} if content_type else {}
        if accept:
            headers["Accept"] = accept
        conn.request(
            method,
            path,
            body=body.encode("utf-8") if body is not None else None,
            headers=headers,
        )
        response = conn.getresponse()
        return response.status, response.read().decode()
    finally:
        conn.close()


def _spawn(args):
    """Start one server process; returns (process, port, shipper_port)."""
    child = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=dict(os.environ, PYTHONPATH=SRC),
    )
    port = shipper_port = None
    for _ in range(8):
        line = child.stdout.readline()
        if not line:
            break
        match = re.search(r"endpoint at http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
        match = re.search(r"log shipper at [^:]+:(\d+)", line)
        if match:
            shipper_port = int(match.group(1))
        if line.startswith("POST"):
            break
    assert port is not None, "server process never announced its endpoint"
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            status, _ = _request(port, "GET", "/ready", timeout=5.0)
            if status == 200:
                return child, port, shipper_port
        except OSError:
            pass
        time.sleep(0.1)
    raise AssertionError("server process never became ready")


def _kill(child):
    if child.poll() is None:
        child.kill()
        child.wait(10)


def _record(records, name, median_us, **extra):
    entry = {
        "name": name,
        "fullname": f"benchmarks/bench_failover.py::{name}",
        "rounds": 1,
        "median_us": median_us,
        "mean_us": median_us,
        "min_us": median_us,
        "max_us": median_us,
        "stddev_us": 0.0,
        "ops": 1e6 / median_us if median_us > 0 else 0.0,
    }
    entry.update(extra)
    records.append(entry)


def _row_count(port):
    status, body = _request(
        port, "POST", "/query", SELECT_TEAMS, "application/sparql-query",
        timeout=5.0, accept="application/sparql-results+json",
    )
    assert status == 200, body
    return len(json.loads(body)["results"]["bindings"])


def test_failover_write_unavailability_window(tmp_path, capsys):
    primary, primary_port, shipper_port = _spawn(
        ["--data-dir", str(tmp_path / "primary"), "--sync-mode", "os",
         "--replication-port", "0",
         "--heartbeat-interval", str(HEARTBEAT_INTERVAL)]
    )
    assert shipper_port is not None
    replica, replica_port, _ = _spawn(
        ["--replica-of", f"127.0.0.1:{shipper_port}",
         "--promote-on-primary-loss",
         "--primary-loss-timeout", str(PRIMARY_LOSS_TIMEOUT),
         "--heartbeat-grace", str(HEARTBEAT_GRACE)]
    )
    records = []
    lines = []
    try:
        for index in range(SEED_WRITES):
            status, body = _request(
                primary_port, "POST", "/update", _update(index),
                "application/sparql-update",
            )
            assert status == 200, body

        # Wait until the replica has applied the whole seed: the window
        # must not include catch-up lag from before the crash.
        deadline = time.monotonic() + 30.0
        while _row_count(replica_port) < SEED_WRITES:
            assert time.monotonic() < deadline, "replica never caught up"
            time.sleep(0.02)

        # -- the crash, and the closed-loop write probe ----------------
        primary.kill()
        killed_at = time.monotonic()
        attempts = 0
        refusals = 0
        first_accept = None
        probe_deadline = killed_at + WINDOW_CEILING_S + 5.0
        index = SEED_WRITES
        while time.monotonic() < probe_deadline:
            attempts += 1
            try:
                status, _body = _request(
                    replica_port, "POST", "/update", _update(index),
                    "application/sparql-update", timeout=2.0,
                )
            except OSError:
                time.sleep(0.01)
                continue
            if status == 200:
                first_accept = time.monotonic()
                break
            refusals += 1
            time.sleep(0.01)
        assert first_accept is not None, (
            "replica never started accepting writes after the primary died"
        )
        window_s = first_accept - killed_at

        # The accepted write (and the seed) must actually be readable on
        # the promoted node.
        assert _row_count(replica_port) == SEED_WRITES + 1

        _record(
            records, "failover_window", window_s * 1e6,
            window_s=round(window_s, 4),
            attempts=attempts,
            pre_promotion_refusals=refusals,
            primary_loss_timeout_s=PRIMARY_LOSS_TIMEOUT,
            heartbeat_interval_s=HEARTBEAT_INTERVAL,
            heartbeat_grace_s=HEARTBEAT_GRACE,
        )
        lines.append(
            f"write-unavailability window {window_s * 1e3:7.1f} ms "
            f"(loss timeout {PRIMARY_LOSS_TIMEOUT:g}s, {attempts} probes, "
            f"{refusals} pre-promotion refusals)"
        )
    finally:
        _kill(replica)
        _kill(primary)

    ARTIFACT.write_text(
        json.dumps(
            {
                "module": "bench_failover",
                "benchmarks": records,
                "primary_loss_timeout_s": PRIMARY_LOSS_TIMEOUT,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    with capsys.disabled():
        print("\n### failover: SIGKILL primary -> first accepted write")
        for line in lines:
            print(f"    {line}")

    # -- in-run floor and ceiling --------------------------------------
    assert window_s >= PRIMARY_LOSS_TIMEOUT, (
        f"window {window_s:.3f}s is under the configured loss timeout "
        f"{PRIMARY_LOSS_TIMEOUT}s — the detector is promoting on jitter"
    )
    assert window_s <= WINDOW_CEILING_S, (
        f"window {window_s:.3f}s exceeds {WINDOW_CEILING_S}s — detection "
        "or promotion is stalling"
    )
