#!/usr/bin/env python3
"""Benchmark trend check: fail CI on point-query regressions.

Compares a freshly produced ``BENCH_query.json`` against the committed
artifact (saved aside before the benchmark run) and fails when any
point-query timing regressed by more than ``--max-ratio`` (default 2x).

The committed numbers come from a dev machine and CI runners have
different absolute speed, so the comparison is **calibrated**: the
machine factor is estimated as the median fresh/committed ratio over the
calibration benchmarks (default: the join-query sweep, which exercises
the same engine but is dominated by per-row work rather than the index
path under test).  Each point-query ratio is divided by that factor
before the threshold check — a uniformly slower machine cancels out,
while a lost index path (which costs 10x+ on point queries only) does
not.

Usage::

    cp benchmarks/BENCH_query.json /tmp/committed.json
    PYTHONPATH=src python -m pytest benchmarks/bench_query.py \
        --benchmark-only -k "point or (join and translated)"
    python benchmarks/check_trend.py /tmp/committed.json \
        benchmarks/BENCH_query.json

Medians are compared (more stable than means under CI noise), and only
benchmarks present in both files are considered.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def load_medians(path: str, name_filter: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    return {
        record["fullname"]: record["median_us"]
        for record in payload.get("benchmarks", [])
        if name_filter in record.get("name", "")
    }


def machine_factor(committed_path: str, fresh_path: str, calibration: str) -> float:
    committed = load_medians(committed_path, calibration)
    fresh = load_medians(fresh_path, calibration)
    shared = set(committed) & set(fresh)
    if not shared:
        return 1.0  # no calibration data: compare absolute numbers
    return statistics.median(
        fresh[name] / committed[name] for name in shared
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed", help="artifact from the repository")
    parser.add_argument("fresh", help="artifact produced by this run")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when calibrated fresh/committed exceeds this (default 2.0)",
    )
    parser.add_argument(
        "--filter",
        default="point",
        help="substring of benchmark names to compare (default: point)",
    )
    parser.add_argument(
        "--calibration",
        default="join_query_translated",
        help="substring of benchmarks used to estimate machine speed "
        "(default: join_query_translated); pass '' to disable",
    )
    args = parser.parse_args()

    committed = load_medians(args.committed, args.filter)
    fresh = load_medians(args.fresh, args.filter)
    shared = sorted(set(committed) & set(fresh))
    if not shared:
        print(
            f"trend check: no overlapping benchmarks matching "
            f"{args.filter!r}; nothing to compare"
        )
        return 1

    factor = 1.0
    if args.calibration:
        factor = machine_factor(args.committed, args.fresh, args.calibration)
        print(f"machine calibration factor: {factor:.2f}x "
              f"(median over {args.calibration!r} benchmarks)")

    failures = []
    for fullname in shared:
        ratio = fresh[fullname] / committed[fullname] / factor
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print(
            f"{status:>4}  {fullname}: {committed[fullname]:.1f} -> "
            f"{fresh[fullname]:.1f} us  ({ratio:.2f}x calibrated)"
        )
        if ratio > args.max_ratio:
            failures.append(fullname)

    if failures:
        print(
            f"\ntrend check FAILED: {len(failures)} benchmark(s) regressed "
            f"beyond {args.max_ratio}x"
        )
        return 1
    print(f"\ntrend check passed ({len(shared)} benchmark(s) compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
