"""Ablation: Algorithm 1 step 5 (FK statement sorting).

Paper Section 5.1: sorting is needed because "existing RDB systems check
constraints such as referential integrity already during a transaction";
without sorting, "executing the generated statements in an arbitrary order
may result in the failure of the transaction."

This benchmark quantifies all four quadrants on the Listing 15-shaped
request (whose unsorted emission order is FK-invalid):

                     immediate checking     deferred checking
    sorted           succeeds               succeeds
    unsorted         FAILS                  succeeds

and measures the sorting step's own cost (it is negligible).
"""

import pytest

from repro import OntoAccess, TranslationError
from repro.baselines import UnsortedOntoAccess
from repro.core.sorting import sort_statements
from repro.workloads.operations import insert_full_publication_op
from repro.workloads.publication import build_database, build_mapping

from conftest import report

#: Dependent group first: raw order violates FK dependencies.
REQUEST = insert_full_publication_op(12, 6, 5, 4, 3)


def _mediator(sorted_: bool, mode: str):
    db = build_database(constraint_mode=mode)
    cls = OntoAccess if sorted_ else UnsortedOntoAccess
    return cls(db, build_mapping(db), validate=False)


def test_ablation_matrix(benchmark):
    def run():
        outcomes = {}
        for sorted_ in (True, False):
            for mode in ("immediate", "deferred"):
                mediator = _mediator(sorted_, mode)
                try:
                    mediator.update(REQUEST)
                    outcomes[(sorted_, mode)] = "ok"
                except TranslationError:
                    outcomes[(sorted_, mode)] = "FAILS"
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "FK-sort ablation (Listing-15-shaped request)",
        [f"{'sorted' if s else 'unsorted':<9} + {m:<9} checking: {o}"
         for (s, m), o in sorted(outcomes.items(), reverse=True)],
    )
    assert outcomes[(True, "immediate")] == "ok"
    assert outcomes[(True, "deferred")] == "ok"
    assert outcomes[(False, "immediate")] == "FAILS"
    assert outcomes[(False, "deferred")] == "ok"


def test_sorted_immediate_execution(benchmark):
    def setup():
        return (_mediator(True, "immediate"),), {}

    result = benchmark.pedantic(
        lambda m: m.update(REQUEST), setup=setup, rounds=10, iterations=1
    )
    assert result.statements_executed() == 6


def test_unsorted_deferred_execution(benchmark):
    def setup():
        return (_mediator(False, "deferred"),), {}

    result = benchmark.pedantic(
        lambda m: m.update(REQUEST), setup=setup, rounds=10, iterations=1
    )
    assert result.statements_executed() == 6


def test_sorting_step_cost(benchmark):
    """The toposort itself on a 60-statement batch."""
    db = build_database()
    mediator = OntoAccess(db, build_mapping(db), validate=False)
    statements = []
    for i in range(10):
        statements.extend(
            mediator.translate(insert_full_publication_op(
                100 + i, 200 + i, 300 + i, 400 + i, 500 + i
            ))
        )
    shuffled = list(reversed(statements))
    ordered = benchmark(sort_statements, shuffled, db.schema)
    assert len(ordered) == len(statements)
