"""Serving-tier benchmark (ISSUE 6): open-loop latency and shed rate.

Drives the HTTP endpoint with an **open-loop** arrival process — requests
fire on a fixed schedule whether or not earlier ones finished, the way
real traffic arrives — at 1x, 2x, and 4x of the endpoint's measured
capacity, and reports the p50/p99 latency of *accepted* requests plus
the shed rate at each level.

The point of admission control is visible in the numbers: without it,
2x overload makes every request's latency grow without bound as the
queue builds; with it, excess requests are shed fast with 503 +
``Retry-After`` while the accepted ones keep a bounded p99 (the wait is
capped by the short bounded queue, never by the backlog length).

Methodology notes:

* Service time is pinned by injecting a fixed latency at the executor's
  scan site (the fault-injection harness doubling as a load model), so
  capacity is stable across machines and the offered-load multiples mean
  the same thing everywhere.
* ``1x`` is the closed-loop sequential capacity ``1/median_service``.
  At an offered load equal to capacity a queue already builds (rho = 1),
  so a small shed rate at 1x is expected and correct.
* The in-run floor asserts the core property (bounded accepted-latency
  under 2x overload, genuine shedding at 4x); the CI trend gate compares
  ``accepted_p99_overload2x`` across runs, calibrated by
  ``accepted_p99_load1x`` so machine speed cancels out.

Run with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_serving.py -s
"""

import http.client
import json
import pathlib
import statistics
import threading
import time

from repro import OntoAccess
from repro.faults import INJECTOR
from repro.server import OntoAccessEndpoint
from repro.workloads.calibration import (
    derive_overload_pins,
    measure_service_time,
)
from repro.workloads.publication import (
    build_database,
    build_mapping,
    seed_feasibility_data,
)

BENCH_DIR = pathlib.Path(__file__).parent
ARTIFACT = BENCH_DIR / "BENCH_serving.json"

SCAN_QUERY = (
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
    "SELECT ?n WHERE { ?x foaf:family_name ?n . }"
)

#: Floor for the injected per-scan latency: it must dominate the raw
#: request time so capacity (and therefore the offered-load multiples)
#: is stable across machines.  The actual figure comes from a short
#: uninjected calibration run (see repro.workloads.calibration) — a
#: slow box gets a proportionally larger pin instead of a flaky run.
MIN_SERVICE_LATENCY = 0.02
LOADS = (1, 2, 4)
REQUESTS_PER_LEVEL = 120
SENDER_THREADS = 32
#: Floor for the in-run ceiling on accepted-request p99 under 2x
#: overload: queue wait is bounded by the short queue (2 x service)
#: plus queue_timeout, so anything far beyond a handful of service
#: times means backlog latency leaked back in.  Scaled up with the
#: calibrated service time on slow machines.
MIN_P99_CEILING_2X = 1.0


def _fire(port):
    """One request over a fresh connection; returns (status, seconds)."""
    start = time.monotonic()
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        conn.request(
            "POST",
            "/query",
            body=SCAN_QUERY.encode("utf-8"),
            headers={"Content-Type": "application/sparql-query"},
        )
        response = conn.getresponse()
        response.read()
        return response.status, time.monotonic() - start
    finally:
        conn.close()


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_level(port, rate, count):
    """Open loop: ``count`` arrivals at fixed ``rate``/s, a sender pool
    large enough that a slow response never delays later arrivals."""
    interval = 1.0 / rate
    begin = time.monotonic() + 0.05
    cursor = [0]
    results = []
    lock = threading.Lock()

    def sender():
        while True:
            with lock:
                if cursor[0] >= count:
                    return
                index = cursor[0]
                cursor[0] += 1
            delay = begin + index * interval - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                outcome = _fire(port)
            except Exception as exc:
                outcome = (f"transport:{type(exc).__name__}", 0.0)
            with lock:
                results.append(outcome)

    threads = [
        threading.Thread(target=sender, daemon=True)
        for _ in range(SENDER_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60.0)
    return results


def _record(records, name, median_us, **extra):
    entry = {
        "name": name,
        "fullname": f"benchmarks/bench_serving.py::{name}",
        "rounds": 1,
        "median_us": median_us,
        "mean_us": median_us,
        "min_us": median_us,
        "max_us": median_us,
        "stddev_us": 0.0,
        "ops": 1e6 / median_us if median_us > 0 else 0.0,
    }
    entry.update(extra)
    records.append(entry)


def test_open_loop_serving(capsys):
    db = build_database()
    seed_feasibility_data(db)
    mediator = OntoAccess(db, build_mapping(db))
    # calibrate the raw request time first, so the injected latency is
    # guaranteed to dominate it on this machine
    with OntoAccessEndpoint(mediator) as probe:
        raw = measure_service_time(
            lambda: _fire(probe.port), samples=5, warmup=1
        )
    pins = derive_overload_pins(raw, min_injected=MIN_SERVICE_LATENCY)
    p99_ceiling_2x = max(MIN_P99_CEILING_2X, 20.0 * pins.service_s)
    INJECTOR.inject("executor:scan", latency=pins.injected_latency_s)
    endpoint = OntoAccessEndpoint(
        mediator,
        max_in_flight=1,
        max_queue=2,
        queue_timeout=0.05,
        default_timeout=pins.default_timeout_s,
        max_connections=64,
    )
    records = []
    lines = []
    try:
        with endpoint:
            port = endpoint.port
            # -- capacity calibration: sequential closed loop ----------
            service = []
            for _ in range(15):
                status, elapsed = _fire(port)
                assert status == 200, status
                service.append(elapsed)
            capacity = 1.0 / statistics.median(service)
            lines.append(
                f"service time {statistics.median(service) * 1e3:6.1f} ms"
                f" -> capacity {capacity:5.1f} req/s"
            )

            levels = {}
            for multiple in LOADS:
                outcomes = _run_level(
                    port, multiple * capacity, REQUESTS_PER_LEVEL
                )
                statuses = [status for status, _ in outcomes]
                accepted = [
                    elapsed for status, elapsed in outcomes if status == 200
                ]
                shed = statuses.count(503)
                transport = sum(
                    1 for status in statuses if not isinstance(status, int)
                )
                assert transport == 0, statuses
                assert set(statuses) <= {200, 408, 503}, statuses
                assert accepted, f"no request accepted at {multiple}x"
                shed_rate = shed / len(outcomes)
                label = (
                    f"load{multiple}x" if multiple == 1
                    else f"overload{multiple}x"
                )
                p50 = _percentile(accepted, 0.50)
                p99 = _percentile(accepted, 0.99)
                levels[multiple] = (p50, p99, shed_rate)
                _record(
                    records, f"accepted_p50_{label}", p50 * 1e6,
                    offered_rps=round(multiple * capacity, 1),
                    accepted=len(accepted), shed=shed,
                )
                _record(
                    records, f"accepted_p99_{label}", p99 * 1e6,
                    offered_rps=round(multiple * capacity, 1),
                    accepted=len(accepted), shed=shed,
                )
                # shed rate as a record too (median_us abused to carry
                # the percentage; not part of any trend gate)
                _record(
                    records, f"shed_percent_{label}",
                    max(shed_rate * 100.0, 1e-3),
                    shed_fraction=round(shed_rate, 4),
                )
                lines.append(
                    f"{multiple}x offered: p50 {p50 * 1e3:6.1f} ms, "
                    f"p99 {p99 * 1e3:6.1f} ms, shed {shed_rate:5.1%} "
                    f"({len(accepted)} accepted / {len(outcomes)})"
                )
            stats = endpoint.serving_stats()
    finally:
        INJECTOR.clear()

    ARTIFACT.write_text(
        json.dumps(
            {
                "module": "bench_serving",
                "benchmarks": records,
                "serving_stats": stats,
                "calibration": {
                    "raw_service_s": round(pins.raw_service_s, 6),
                    "injected_latency_s": round(
                        pins.injected_latency_s, 6
                    ),
                    "default_timeout_s": round(pins.default_timeout_s, 3),
                    "p99_ceiling_2x_s": round(p99_ceiling_2x, 3),
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    with capsys.disabled():
        print("\n### open-loop serving latency under overload")
        for line in lines:
            print(f"    {line}")

    # -- floors (self-calibrating, same process) -----------------------
    _, p99_2x, _ = levels[2]
    _, _, shed_4x = levels[4]
    assert shed_4x > 0.0, (
        "4x offered load shed nothing — admission control is not engaging"
    )
    assert p99_2x < p99_ceiling_2x, (
        f"accepted-request p99 under 2x overload is {p99_2x:.3f}s — the "
        "bounded queue is no longer bounding latency"
    )
