"""Figure 2: the domain ontology (FOAF + DC + ONT).

Regenerates the ontology graph — five classes and their properties with
domains/ranges — and checks it covers exactly the vocabulary Table 1 maps
onto, i.e. the figure and the table are mutually consistent.
"""

from repro.rdf import OWL, RDF, RDFS, to_turtle
from repro.workloads.publication import build_mapping, build_ontology

from conftest import report


def test_figure2_ontology_regenerated(benchmark):
    ontology = benchmark(build_ontology)

    classes = sorted(
        str(s) for s in ontology.subjects(RDF.type, OWL.term("Class"))
    )
    data_props = list(ontology.subjects(RDF.type, OWL.DatatypeProperty))
    object_props = list(ontology.subjects(RDF.type, OWL.ObjectProperty))
    report(
        "Figure 2: domain ontology",
        [f"classes ({len(classes)}): " + ", ".join(c.rsplit('/', 1)[-1] for c in classes),
         f"datatype properties: {len(data_props)}",
         f"object properties:   {len(object_props)}"],
    )
    assert len(classes) == 5
    # ont:pubType, dc:publisher, dc:creator, ont:team
    assert len(object_props) == 4

def test_figure2_consistent_with_table1(benchmark):
    """Every property Table 1 uses appears in the Figure 2 ontology with
    the right kind (data vs object)."""
    ontology = build_ontology()
    mapping = benchmark(build_mapping)

    from repro.rdf import OWL as OWL_NS

    data_props = set(ontology.subjects(RDF.type, OWL_NS.DatatypeProperty))
    object_props = set(ontology.subjects(RDF.type, OWL_NS.ObjectProperty))

    for table in mapping.tables.values():
        for attribute in table.mapped_attributes():
            if attribute.is_object_property:
                assert attribute.property in object_props, attribute.property
            else:
                assert attribute.property in data_props, attribute.property
    for link in mapping.link_tables.values():
        assert link.property in object_props


def test_figure2_serializes_to_turtle(benchmark):
    ontology = build_ontology()
    text = benchmark(to_turtle, ontology)
    assert "foaf:Person" in text
    assert "ont:pubYear" in text
