"""Durability cost: commit latency per sync mode, group commit, recovery.

ISSUE 5 added the write-ahead log.  Three claims are measured and locked
in as the committed ``BENCH_durability.json`` artifact:

* **Sync-mode ladder** — per-commit latency at ``none`` (user-space
  buffer) < ``os`` (page cache) < ``fsync`` (device flush), against the
  in-memory engine as the floor.  This is the knob's advertised
  trade-off; if ``none`` ever pays a device flush (or ``fsync`` stops
  paying one) the ladder collapses and the numbers show it.
* **Group commit** — aggregate committed transactions/second of N
  threads in ``fsync`` mode.  The serial baseline wraps each commit in
  an external lock, so every commit pays its own full append+fsync
  round trip; the group runs let concurrent committers gang up on one
  fsync.  Acceptance (in-run assertion): ≥2 concurrent committers stay
  **ahead of** the serial per-commit-fsync baseline — the whole point
  of taking the fsync outside the writer lock.
* **Recovery time vs WAL length** — opening a data dir replays the WAL
  tail; the time should scale with the tail, and collapse after a
  checkpoint truncates it.

Run with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_durability.py -s
"""

import json
import pathlib
import shutil
import statistics
import tempfile
import threading
import time

from repro.rdb import Database

BENCH_DIR = pathlib.Path(__file__).parent
ARTIFACT = BENCH_DIR / "BENCH_durability.json"

DDL = "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(40), n INTEGER)"

#: Commits per latency sample / measurement window for throughput runs.
LATENCY_COMMITS = 150
WINDOW = 0.5
THREAD_COUNTS = (2, 4)
#: Acceptance floor: 2 group committers vs the serial per-commit-fsync
#: baseline measured seconds earlier on the same device.
MIN_GROUP_RATIO = 1.0


def _record(records, name, median_us, ops=None):
    records.append(
        {
            "name": name,
            "fullname": f"benchmarks/bench_durability.py::{name}",
            "rounds": 1,
            "median_us": median_us,
            "mean_us": median_us,
            "min_us": median_us,
            "max_us": median_us,
            "stddev_us": 0.0,
            "ops": ops if ops is not None else 1e6 / max(median_us, 1e-9),
        }
    )


def _fresh_db(base, label, **kwargs):
    path = base / label
    if path.exists():
        shutil.rmtree(path)
    return Database(data_dir=str(path), **kwargs)


def _commit_latency_us(db):
    db.execute(DDL)
    for i in range(10):  # warm plan cache and WAL path
        db.execute(f"INSERT INTO t (id, name, n) VALUES ({i}, 'w', {i})")
    samples = []
    for i in range(LATENCY_COMMITS):
        key = 1000 + i
        start = time.perf_counter()
        db.execute(f"INSERT INTO t (id, name, n) VALUES ({key}, 'r', {key})")
        samples.append((time.perf_counter() - start) * 1e6)
    return statistics.median(samples)


_RUN_COUNTER = iter(range(1, 1000))


def _committer_throughput(db, n_threads, serialize=False):
    """Committed autocommit transactions/second of ``n_threads``."""
    counts = [0] * n_threads
    stop = threading.Event()
    gate = threading.Barrier(n_threads + 1)
    external = threading.Lock()
    run_base = 10_000 + next(_RUN_COUNTER) * 100_000_000

    def worker(idx):
        gate.wait()
        i = 0
        while not stop.is_set():
            key = run_base + idx * 1_000_000 + i
            statement = (
                f"INSERT INTO t (id, name, n) VALUES ({key}, 'g', {key % 97})"
            )
            if serialize:
                # Serial per-commit fsync: an external lock spans the
                # whole commit, so no two committers ever share a flush.
                with external:
                    db.execute(statement)
            else:
                db.execute(statement)
            counts[idx] += 1
            i += 1

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    gate.wait()
    time.sleep(WINDOW)
    stop.set()
    for thread in threads:
        thread.join(10)
    return sum(counts) / WINDOW


def _build_wal(base, label, commits):
    db = _fresh_db(base, label, sync_mode="os")
    db.execute(DDL)
    for i in range(commits):
        db.execute(f"INSERT INTO t (id, name, n) VALUES ({i}, 'r', {i})")
    db.close()
    return base / label


def _recovery_us(path):
    start = time.perf_counter()
    db = Database(data_dir=str(path))
    elapsed = (time.perf_counter() - start) * 1e6
    rows = db.row_count("t")
    db.close()
    return elapsed, rows


def test_durability_costs(capsys):
    records = []
    lines = []
    base = pathlib.Path(tempfile.mkdtemp(prefix="bench_durability_"))
    try:
        # ---- sync-mode ladder --------------------------------------
        memory = Database()
        memory_us = _commit_latency_us(memory)
        _record(records, "commit_memory", memory_us)
        lines.append(f"commit latency, in-memory engine: {memory_us:8.1f} us")
        for mode in ("none", "os", "fsync"):
            db = _fresh_db(base, f"sync_{mode}", sync_mode=mode)
            median = _commit_latency_us(db)
            db.close()
            _record(records, f"commit_sync_{mode}", median)
            lines.append(
                f"commit latency, sync_mode={mode:<5}:    {median:8.1f} us "
                f"({median / memory_us:4.1f}x memory)"
            )

        # ---- group commit vs serial per-commit fsync ---------------
        db = _fresh_db(base, "group", sync_mode="fsync")
        db.execute(DDL)
        db.execute("INSERT INTO t (id, name, n) VALUES (1, 'w', 1)")  # warm
        serial_1 = _committer_throughput(db, 1)
        _record(records, "serial_fsync_committers1", 1e6 / serial_1, serial_1)
        serial_2 = _committer_throughput(db, 2, serialize=True)
        _record(records, "serial_fsync_committers2", 1e6 / serial_2, serial_2)
        lines.append(
            f"serial per-commit fsync:  {serial_1:7.0f} commits/s @1, "
            f"{serial_2:7.0f} @2 (externally locked)"
        )
        group = {}
        for n in THREAD_COUNTS:
            group[n] = _committer_throughput(db, n)
            _record(
                records, f"group_fsync_committers{n}", 1e6 / group[n], group[n]
            )
            lines.append(
                f"group commit:             {group[n]:7.0f} commits/s @{n} "
                f"({group[n] / serial_2:4.2f}x vs serial@2)"
            )
        fsyncs = db._durability.wal.sync_count
        commits = db._durability.wal.commit_count
        lines.append(
            f"flush sharing: {commits} commits used {fsyncs} fsyncs "
            f"({commits / max(fsyncs, 1):.2f} commits/fsync)"
        )
        db.close()

        # ---- recovery time vs WAL length ---------------------------
        for commits in (100, 400):
            path = _build_wal(base, f"recover_{commits}", commits)
            elapsed, rows = _recovery_us(path)
            assert rows == commits
            _record(records, f"recovery_wal{commits}", elapsed)
            lines.append(
                f"recovery, {commits:4d}-commit WAL tail: {elapsed / 1000:8.2f} ms"
            )
        # after a checkpoint the tail is empty: open cost collapses
        db = Database(data_dir=str(base / "recover_400"))
        db.checkpoint()
        db.close()
        elapsed, rows = _recovery_us(base / "recover_400")
        assert rows == 400
        _record(records, "recovery_after_checkpoint", elapsed)
        lines.append(
            f"recovery, checkpoint + empty tail: {elapsed / 1000:8.2f} ms"
        )
    finally:
        shutil.rmtree(base, ignore_errors=True)

    ARTIFACT.write_text(
        json.dumps(
            {"module": "bench_durability", "benchmarks": records},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    with capsys.disabled():
        print("\n### Durability: sync modes, group commit, recovery")
        for line in lines:
            print(f"    {line}")

    # Acceptance (ISSUE 5): >=2 concurrent committers in fsync mode stay
    # ahead of the serial per-commit-fsync discipline on the same device.
    assert group[2] >= serial_2 * MIN_GROUP_RATIO, (
        f"group commit at 2 committers ({group[2]:.0f}/s) fell behind the "
        f"serial per-commit fsync baseline ({serial_2:.0f}/s)"
    )
