"""Prepare-once/execute-many vs. parse-per-call (ISSUE 2 acceptance).

The Session API's claim: ``session.prepare(op)`` pays parsing once and
caches the translated SQL against the database state version, so repeated
``execute()`` replays statements through the engine's plan cache instead
of re-running the whole parse → translate pipeline.  The facade
(``OntoAccess.update``) re-parses and re-translates per call.

Measured on the publication workload:

* ``test_facade_update_per_call``     — 100x ``OntoAccess.update(op)``
* ``test_prepared_execute``           — ``prepare(op)`` once, 100x ``execute()``
* ``test_prepared_execute_bindings``  — placeholder template, alternating
  bindings per execute (amortizes the parse, re-translates on change)
* ``test_prepared_speedup_floor``     — asserts the ≥5x acceptance floor
  and prints the measured ratio

Artifacts land in ``BENCH_prepared.json`` via the conftest writer.
"""

import time

from repro import OntoAccess
from repro.workloads.generator import (
    WorkloadConfig,
    generate_dataset,
    populate_database,
)
from repro.workloads.publication import build_database, build_mapping

from conftest import report

PREFIXES = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
"""

#: The repeated operation: idempotent after the first execution (set
#: semantics), so both sides measure the steady state of repeat traffic.
INSERT_TEAM = PREFIXES + """
INSERT DATA {
    ex:team9999 foaf:name "Database Technology" ;
                ont:teamCode "DBTG" .
}
"""

MODIFY_TEMPLATE = PREFIXES + """
MODIFY
DELETE { ?x foaf:mbox ?m . }
INSERT { ?x foaf:mbox ?new . }
WHERE  { ?x foaf:family_name ?who ; foaf:mbox ?m . }
"""

EXECUTIONS = 100


def _mediator(authors: int = 100) -> OntoAccess:
    db = build_database()
    populate_database(
        db,
        generate_dataset(WorkloadConfig(authors=authors, publications=authors)),
    )
    return OntoAccess(db, build_mapping(db), validate=False)


def test_facade_update_per_call(benchmark):
    """Parse + translate every call: the legacy per-request cost."""
    mediator = _mediator()
    mediator.update(INSERT_TEAM)  # warm: later calls are state no-ops
    benchmark(lambda: mediator.update(INSERT_TEAM))


def test_prepared_execute(benchmark):
    """Parse once, translate once per state change, replay afterwards."""
    session = _mediator().session()
    prepared = session.prepare(INSERT_TEAM)
    prepared.execute()  # warm: reach the replay steady state
    prepared.execute()
    benchmark(prepared.execute)


def test_prepared_execute_bindings(benchmark):
    """Prepared MODIFY with bindings: the parse is amortized; each
    execute re-translates because it changes the database."""
    session = _mediator().session()
    prepared = session.prepare(MODIFY_TEMPLATE)
    state = {"flip": False}

    def run():
        state["flip"] = not state["flip"]
        prepared.execute(
            bindings={
                "who": "Generated7",
                "new": f"mailto:{'a' if state['flip'] else 'b'}@example.org",
            }
        )

    run()
    benchmark(run)


def _best_of(rounds: int, fn) -> float:
    """Best per-execution time in us over several rounds — immune to a
    single scheduler pause landing in one measurement (CI runners)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(EXECUTIONS):
            fn()
        best = min(best, (time.perf_counter() - start) / EXECUTIONS * 1e6)
    return best


def test_prepared_speedup_floor():
    """ISSUE 2 acceptance: prepared execution is ≥5x cheaper per call."""
    facade = _mediator()
    facade.update(INSERT_TEAM)  # warm: later calls are state no-ops
    facade_us = _best_of(3, lambda: facade.update(INSERT_TEAM))

    session = _mediator().session()
    prepared = session.prepare(INSERT_TEAM)
    prepared.execute()
    prepared.execute()
    prepared_us = _best_of(3, prepared.execute)

    ratio = facade_us / prepared_us
    report(
        "prepare-once/execute-many vs parse-per-call "
        f"({EXECUTIONS} executions, publication workload)",
        [
            f"facade update():     {facade_us:8.1f} us/op",
            f"prepared execute():  {prepared_us:8.1f} us/op",
            f"speedup:             {ratio:8.1f}x (acceptance floor: 5x)",
        ],
    )
    assert ratio >= 5.0, (
        f"prepared execution is only {ratio:.1f}x faster "
        f"({prepared_us:.1f} vs {facade_us:.1f} us)"
    )
