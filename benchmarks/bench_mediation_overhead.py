"""Mediation overhead: OntoAccess vs a native triple store.

The paper motivates mediation over conversion: RDBs outperform 2008-era
triple stores [7], so keeping data relational and paying an on-demand
translation cost is attractive.  This benchmark quantifies the translation
overhead of this implementation: the same SPARQL/Update stream applied

* natively (parse + graph mutation), and
* through the mediator (parse + Algorithm 1/2 + SQL + constraints).

Expected shape: mediated writes cost a constant factor more than native
graph writes (translation + constraint checks + SQL execution) and in
exchange inherit the RDB's integrity enforcement.  Absolute numbers are
Python-vs-Python; the *ratio* is the reproducible observable.
"""

import pytest

from repro import OntoAccess
from repro.baselines import NativeTripleStore
from repro.workloads.generator import (
    WorkloadConfig,
    generate_dataset,
    populate_database,
)
from repro.workloads.operations import mixed_workload
from repro.workloads.publication import build_database, build_mapping

from conftest import report

CONFIG = WorkloadConfig(authors=30, publications=30, seed=11)
OPERATIONS = 40


def _ops():
    return mixed_workload(generate_dataset(CONFIG), OPERATIONS, seed=5)


def test_native_store_update_stream(benchmark):
    ops = _ops()

    def setup():
        return (NativeTripleStore(),), {}

    def run(store):
        for op in ops:
            store.update(op)
        return store

    store = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert len(store) > 0


def test_mediated_update_stream(benchmark):
    ops = _ops()
    dataset = generate_dataset(CONFIG)

    def setup():
        db = build_database()
        populate_database(db, dataset)
        return (OntoAccess(db, build_mapping(db), validate=False),), {}

    def run(mediator):
        for op in ops:
            mediator.update(op)
        return mediator

    mediator = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert mediator.db.row_count("author") > CONFIG.authors


def test_overhead_ratio_reported(benchmark):
    """One-shot timing comparison printed as the headline ratio."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ops = _ops()
    dataset = generate_dataset(CONFIG)

    store = NativeTripleStore()
    t0 = time.perf_counter()
    for op in ops:
        store.update(op)
    native_s = time.perf_counter() - t0

    db = build_database()
    populate_database(db, dataset)
    mediator = OntoAccess(db, build_mapping(db), validate=False)
    t0 = time.perf_counter()
    for op in ops:
        mediator.update(op)
    mediated_s = time.perf_counter() - t0

    ratio = mediated_s / native_s if native_s else float("inf")
    report(
        "Mediation overhead (same 40-operation stream)",
        [f"native triple store: {native_s * 1e3:8.2f} ms",
         f"mediated (OntoAccess): {mediated_s * 1e3:8.2f} ms",
         f"overhead factor: {ratio:.1f}x",
         "in exchange: NOT NULL/PK/FK enforcement + relational co-access"],
    )
    # sanity: mediation costs more than native, but bounded (constant factor)
    assert mediated_s > native_s
    assert ratio < 200


def test_dump_cost_vs_size(benchmark):
    """Cost of materializing the RDB as RDF (the fallback path's price)."""
    db = build_database()
    populate_database(db, generate_dataset(WorkloadConfig(authors=100, publications=150)))
    mediator = OntoAccess(db, build_mapping(db), validate=False)
    graph = benchmark(mediator.dump)
    assert len(graph) > 500
