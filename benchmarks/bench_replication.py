"""Replication fan-out benchmark (ISSUE 8): aggregate read throughput.

Spawns a real topology of *separate server processes* via the CLI — one
writable primary with a WAL log shipper, plus 0, 1, or 2 read replicas
following it — and measures the aggregate closed-loop read throughput
across all serving processes at each fan-out level, plus the p99 replica
lag observed while the primary takes a write churn.

Methodology notes:

* Per-process capacity is pinned with ``--service-latency`` (a fixed
  sleep injected into every row scan) and ``--max-in-flight 1``: one
  request executes at a time per server, so a single process serves
  roughly ``1/service`` req/s.  Sleeps release the GIL and the servers
  are separate processes, so fan-out shows up as aggregate throughput
  even on a single-core machine — that is precisely the property WAL
  shipping buys: more read capacity without sharing the primary's
  process.
* The in-run floor asserts the headline claim (>= 2x aggregate read
  throughput with 2 replicas vs. the single-process baseline); the CI
  trend gate compares ``repl_read_throughput_replicas2`` across runs
  calibrated by ``repl_read_throughput_replicas0`` so machine speed
  cancels out.
* Replica lag is sampled from ``/health`` (``replication.lag_s``)
  while the primary applies a stream of updates; its p99 is recorded as
  ``repl_lag_p99`` (diagnostic, not gated).

Run with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_replication.py -s
"""

import http.client
import json
import os
import pathlib
import re
import subprocess
import sys
import threading
import time

BENCH_DIR = pathlib.Path(__file__).parent
ARTIFACT = BENCH_DIR / "BENCH_replication.json"
SRC = str(BENCH_DIR.parent / "src")

SERVICE_LATENCY = 0.02
READ_SECONDS = 3.0
THREADS_PER_SERVER = 4
LAG_SAMPLES = 40
WRITE_CHURN = 30

SELECT_TEAMS = (
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
    "SELECT ?n WHERE { ?t foaf:name ?n }"
)


def _update(index):
    return (
        "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
        "PREFIX ont:  <http://example.org/ontology#> "
        f"INSERT DATA {{ <http://example.org/db/team{index}> "
        f'foaf:name "Team {index}" ; ont:teamCode "T{index}" . }}'
    )


def _request(port, method, path, body=None, content_type=None, timeout=30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": content_type} if content_type else {}
        conn.request(
            method,
            path,
            body=body.encode("utf-8") if body is not None else None,
            headers=headers,
        )
        response = conn.getresponse()
        return response.status, response.read().decode()
    finally:
        conn.close()


def _spawn(args):
    """Start one server process; returns (process, port, shipper_port)."""
    child = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=dict(os.environ, PYTHONPATH=SRC),
    )
    port = shipper_port = None
    for _ in range(8):
        line = child.stdout.readline()
        if not line:
            break
        match = re.search(r"endpoint at http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
        match = re.search(r"log shipper at [^:]+:(\d+)", line)
        if match:
            shipper_port = int(match.group(1))
        if line.startswith("POST"):
            break
    assert port is not None, "server process never announced its endpoint"
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            status, _ = _request(port, "GET", "/ready", timeout=5.0)
            if status == 200:
                return child, port, shipper_port
        except OSError:
            pass
        time.sleep(0.1)
    raise AssertionError("server process never became ready")


def _kill(child):
    if child.poll() is None:
        child.kill()
        child.wait(10)


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _read_throughput(ports):
    """Closed-loop reads against every port concurrently; aggregate
    completed requests per second across the whole topology."""
    stop = time.monotonic() + READ_SECONDS
    counts = []
    lock = threading.Lock()

    def reader(port):
        done = 0
        while time.monotonic() < stop:
            status, _ = _request(
                port, "POST", "/query", SELECT_TEAMS,
                "application/sparql-query",
            )
            assert status == 200, status
            done += 1
        with lock:
            counts.append(done)

    threads = [
        threading.Thread(target=reader, args=(port,), daemon=True)
        for port in ports
        for _ in range(THREADS_PER_SERVER)
    ]
    begin = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60.0)
    elapsed = time.monotonic() - begin
    return sum(counts) / elapsed


def _record(records, name, median_us, **extra):
    entry = {
        "name": name,
        "fullname": f"benchmarks/bench_replication.py::{name}",
        "rounds": 1,
        "median_us": median_us,
        "mean_us": median_us,
        "min_us": median_us,
        "max_us": median_us,
        "stddev_us": 0.0,
        "ops": 1e6 / median_us if median_us > 0 else 0.0,
    }
    entry.update(extra)
    records.append(entry)


def test_replica_fanout_read_throughput(tmp_path, capsys):
    common = ["--max-in-flight", "1",
              "--service-latency", str(SERVICE_LATENCY)]
    primary, primary_port, shipper_port = _spawn(
        ["--data-dir", str(tmp_path / "primary"), "--sync-mode", "os",
         "--replication-port", "0", *common]
    )
    assert shipper_port is not None
    replicas = []
    records = []
    lines = []
    try:
        for index in range(3):  # seed a few rows so reads return data
            status, body = _request(
                primary_port, "POST", "/update", _update(index),
                "application/sparql-update",
            )
            assert status == 200, body

        throughput = {}
        for level in (0, 1, 2):
            while len(replicas) < level:
                replicas.append(_spawn(
                    ["--replica-of", f"127.0.0.1:{shipper_port}", *common]
                ))
            ports = [primary_port] + [port for _, port, _ in replicas]
            rate = _read_throughput(ports)
            throughput[level] = rate
            _record(
                records, f"repl_read_throughput_replicas{level}",
                1e6 / rate, ops=rate, servers=len(ports),
                read_seconds=READ_SECONDS,
            )
            lines.append(
                f"{level} replicas ({len(ports)} servers): "
                f"{rate:6.1f} req/s aggregate"
            )

        # -- replica lag under write churn -----------------------------
        lags = []
        stop_writes = threading.Event()

        def churn():
            index = 100
            while not stop_writes.is_set() and index < 100 + WRITE_CHURN:
                _request(
                    primary_port, "POST", "/update", _update(index),
                    "application/sparql-update",
                )
                index += 1
                time.sleep(0.02)
            stop_writes.set()

        writer = threading.Thread(target=churn, daemon=True)
        writer.start()
        replica_port = replicas[0][1]
        while len(lags) < LAG_SAMPLES:
            status, body = _request(replica_port, "GET", "/health")
            if status == 200:
                lag = json.loads(body)["replication"]["lag_s"]
                if lag is not None:
                    lags.append(lag)
            time.sleep(0.02)
        stop_writes.set()
        writer.join(30.0)
        lag_p99 = _percentile(lags, 0.99)
        _record(
            records, "repl_lag_p99", max(lag_p99 * 1e6, 1.0),
            lag_p99_s=round(lag_p99, 4), samples=len(lags),
        )
        lines.append(f"replica lag p99 {lag_p99 * 1e3:6.1f} ms "
                     f"({len(lags)} samples under write churn)")
    finally:
        for child, _, _ in replicas:
            _kill(child)
        _kill(primary)

    ARTIFACT.write_text(
        json.dumps(
            {
                "module": "bench_replication",
                "benchmarks": records,
                "service_latency_s": SERVICE_LATENCY,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    with capsys.disabled():
        print("\n### replication fan-out: aggregate read throughput")
        for line in lines:
            print(f"    {line}")

    # -- in-run floor: the headline fan-out claim ----------------------
    ratio = throughput[2] / throughput[0]
    assert ratio >= 2.0, (
        f"2-replica aggregate throughput is only {ratio:.2f}x the "
        "single-process baseline — replica fan-out is not scaling reads"
    )
