"""Scaling behaviour of the translation pipeline.

Not a table in the paper, but the evidence behind its feasibility claim:
per-operation cost must depend on the *request* size (triples per
operation), not on the database size — Algorithm 1 identifies rows by
primary key through the URI pattern, so lookups are O(1) in table size.

Two sweeps:

* database-size sweep: the same Listing-13-style INSERT against databases
  of growing size (expected: flat);
* request-size sweep: INSERT DATA with a growing number of subject groups
  (expected: linear in groups).
"""

import pytest

from repro import OntoAccess
from repro.workloads.generator import (
    WorkloadConfig,
    generate_dataset,
    populate_database,
)
from repro.workloads.operations import PREFIXES, insert_team_op
from repro.workloads.publication import build_database, build_mapping

from conftest import report


@pytest.mark.parametrize("authors", [10, 100, 1000])
def test_insert_vs_database_size(benchmark, authors):
    """Expected shape: flat — per-op cost independent of DB size."""
    config = WorkloadConfig(
        authors=authors, publications=authors, seed=3
    )
    db = build_database()
    populate_database(db, generate_dataset(config))
    mediator = OntoAccess(db, build_mapping(db), validate=False)
    counter = [10_000]

    def run():
        counter[0] += 1
        return mediator.update(insert_team_op(counter[0]))

    result = benchmark(run)
    assert result.statements_executed() == 1


def _wide_insert(groups: int) -> str:
    body = []
    for i in range(1, groups + 1):
        body.append(
            f'    ex:team{20000 + i} foaf:name "Scale Team {i}" ;\n'
            f'        ont:teamCode "S{i}" .'
        )
    return PREFIXES + "\nINSERT DATA {\n" + "\n".join(body) + "\n}\n"


@pytest.mark.parametrize("groups", [1, 10, 50])
def test_insert_vs_request_size(benchmark, groups):
    """Expected shape: linear in the number of subject groups."""
    request = _wide_insert(groups)

    def setup():
        db = build_database()
        return (OntoAccess(db, build_mapping(db), validate=False),), {}

    result = benchmark.pedantic(
        lambda m: m.update(request), setup=setup, rounds=5, iterations=1
    )
    assert result.statements_executed() == groups


def test_scaling_summary(benchmark):
    """One-shot summary table: per-insert latency across DB sizes."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    lines = []
    for authors in (10, 100, 1000):
        db = build_database()
        populate_database(
            db, generate_dataset(WorkloadConfig(authors=authors, publications=authors))
        )
        mediator = OntoAccess(db, build_mapping(db), validate=False)
        start = time.perf_counter()
        rounds = 50
        for i in range(rounds):
            mediator.update(insert_team_op(30_000 + i))
        per_op_us = (time.perf_counter() - start) / rounds * 1e6
        lines.append(
            f"db with {authors:5d} authors/publications: "
            f"{per_op_us:8.0f} us per INSERT DATA"
        )
    report("Per-operation latency vs database size (expected: flat)", lines)
