"""Figure 1: the publication-system RDB schema.

Regenerates the schema of Figure 1 (six tables, primary keys, NOT NULL
constraints, foreign keys, the N:M link table) and measures DDL execution
on the relational substrate.
"""

from repro.rdb import Database, reflect
from repro.workloads.publication import PUBLICATION_DDL, build_database

from conftest import report


def test_figure1_schema_regenerated(benchmark):
    db = benchmark(build_database)

    infos = {info.name: info for info in reflect(db)}
    lines = []
    for name in ("publication", "author", "publisher", "pubtype", "team",
                 "publication_author"):
        info = infos[name]
        columns = []
        for col in info.columns:
            flags = []
            if col.is_primary_key:
                flags.append("PK")
            if col.references:
                flags.append(f"FK->{col.references}")
            if col.is_not_null and not col.is_primary_key:
                flags.append("*")
            suffix = f" [{','.join(flags)}]" if flags else ""
            columns.append(f"{col.name}:{col.type_name}{suffix}")
        lines.append(f"{name}({', '.join(columns)})")
    report("Figure 1: RDB schema of the publication use case", lines)

    # structural assertions straight from the figure
    assert infos["publication"].column("title").is_not_null
    assert infos["publication"].column("year").is_not_null
    assert infos["author"].column("lastname").is_not_null
    assert infos["author"].column("team").references == "team"
    assert infos["publication_author"].is_link_table()


def test_figure1_ddl_statement_count(benchmark):
    def run():
        db = Database()
        return db.execute_script(PUBLICATION_DDL)

    results = benchmark(run)
    assert len(results) == 6
