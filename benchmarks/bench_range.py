"""Range queries and ORDER BY+LIMIT: ordered index vs. forced scan.

ISSUE 3 adds ordered secondary indexes (``CREATE INDEX``) so ``<`` /
``BETWEEN`` / prefix-``LIKE`` conjuncts and ``ORDER BY`` stop paying a
full scan (+ sort).  This module measures both shapes against the same
data with the planner's ``force_scan`` oracle knob as the baseline:

* ``test_range_query_*`` — a ~5%-selective ``BETWEEN`` over 10/100/1000
  rows.  Indexed cost follows the *result* size, forced-scan cost follows
  the *table* size, so the gap widens linearly with the sweep.
* ``test_order_by_limit_*`` — ``ORDER BY indexed-column LIMIT 10``.  The
  ordered index emits rows pre-sorted and the pipeline stops after 10,
  vs. scan + top-k heap over everything.

The acceptance floor (both indexed shapes >= 5x the forced-scan path at
1000 rows) is asserted directly by ``test_speedup_floor_at_1000_rows``,
and the committed ``BENCH_range.json`` medians are guarded by the CI
trend gate (``check_trend.py --filter indexed --calibration forced_scan``
— machine speed cancels out, a lost index path does not).
"""

import time

import pytest

from repro.rdb import Database

from conftest import report

SIZES = (10, 100, 1000)


def _build_db(rows: int, force_scan: bool = False) -> Database:
    db = Database()
    if force_scan:
        db.planner.force_scan = True  # before any plan is cached
    db.execute(
        "CREATE TABLE item (id INTEGER PRIMARY KEY, v INTEGER, name VARCHAR(30))"
    )
    for i in range(rows):
        # v is a permutation of 0..rows-1 (37 is coprime with the sizes),
        # so BETWEEN windows have exact, size-proportional selectivity.
        db.execute(
            f"INSERT INTO item (id, v, name) VALUES "
            f"({i}, {(i * 37) % rows}, 'name{i % 97:03d}')"
        )
    # Created on both sides; the forced-scan planner simply never uses it.
    db.execute("CREATE INDEX idx_item_v ON item (v)")
    return db


def _range_sql(rows: int) -> str:
    lo = rows // 3
    return f"SELECT id FROM item WHERE v BETWEEN {lo} AND {lo + max(1, rows // 20)}"


ORDER_SQL = "SELECT v, id FROM item ORDER BY v LIMIT 10"


@pytest.mark.parametrize("rows", SIZES)
def test_range_query_indexed(benchmark, rows):
    """Expected shape: flat-ish — cost follows the ~5% window, not the
    table."""
    db = _build_db(rows)
    result = benchmark(db.query, _range_sql(rows))
    assert len(result) == min(rows, max(1, rows // 20) + 1)


@pytest.mark.parametrize("rows", SIZES)
def test_range_query_forced_scan(benchmark, rows):
    """Expected shape: linear in table size (the baseline the index
    beats; also the trend-gate calibration set)."""
    db = _build_db(rows, force_scan=True)
    result = benchmark(db.query, _range_sql(rows))
    assert len(result) == min(rows, max(1, rows // 20) + 1)


@pytest.mark.parametrize("rows", SIZES)
def test_order_by_limit_indexed(benchmark, rows):
    """Expected shape: flat — ordered emission + stop after 10 rows."""
    db = _build_db(rows)
    result = benchmark(db.query, ORDER_SQL)
    assert [r[0] for r in result.rows] == list(range(min(rows, 10)))


@pytest.mark.parametrize("rows", SIZES)
def test_order_by_limit_forced_scan(benchmark, rows):
    """Expected shape: linear — every row is scanned and heap-selected."""
    db = _build_db(rows, force_scan=True)
    result = benchmark(db.query, ORDER_SQL)
    assert [r[0] for r in result.rows] == list(range(min(rows, 10)))


def test_speedup_floor_at_1000_rows(benchmark):
    """Acceptance criterion: indexed range query and ORDER BY+LIMIT each
    >= 5x faster than the forced-scan path at 1000 rows."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def per_query_us(db, sql, rounds=5, loops=20):
        """Best-of-rounds mean, so scheduler noise on CI runners cannot
        inflate either side of the ratio."""
        db.query(sql)  # warm the plan cache
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(loops):
                db.query(sql)
            best = min(best, time.perf_counter() - start)
        return best / loops * 1e6

    indexed = _build_db(1000)
    scanned = _build_db(1000, force_scan=True)
    lines = []
    for label, sql in (("range BETWEEN (5%)", _range_sql(1000)),
                       ("ORDER BY + LIMIT 10", ORDER_SQL)):
        fast = per_query_us(indexed, sql)
        slow = per_query_us(scanned, sql)
        ratio = slow / fast
        lines.append(
            f"{label}: indexed {fast:7.1f} us, forced scan {slow:8.1f} us "
            f"({ratio:5.1f}x)"
        )
        assert ratio >= 5.0, (
            f"{label}: expected >=5x speedup at 1000 rows, got {ratio:.1f}x"
        )
    report("range/order access: ordered index vs forced scan @1000 rows", lines)
