"""Table 1: the use-case mapping overview.

Regenerates the paper's Table 1 row-for-row from the auto-generated R3M
mapping, and measures the mapping machinery: auto-generation from the
schema, Turtle serialization, parsing, and URI-pattern identification
(the hot path of Algorithm 1 step 2).
"""

from repro.rdf import URIRef
from repro.r3m import mapping_to_turtle, parse_mapping
from repro.workloads.publication import build_database, build_mapping, table1_rows

from conftest import report

#: Table 1 exactly as printed in the paper (Section 7).
PAPER_TABLE_1 = [
    ("publication -> foaf:Document", "title -> dc:title"),
    ("", "year -> ont:pubYear"),
    ("", "type -> ont:pubType"),
    ("", "publisher -> dc:publisher"),
    ("publisher -> ont:Publisher", "name -> ont:name"),
    ("pubtype -> ont:PubType", "type -> ont:type"),
    ("author -> foaf:Person", "title -> foaf:title"),
    ("", "email -> foaf:mbox"),
    ("", "firstname -> foaf:firstName"),
    ("", "lastname -> foaf:family_name"),
    ("", "team -> ont:team"),
    ("team -> foaf:Group", "name -> foaf:name"),
    ("", "code -> ont:teamCode"),
    ("publication_author -> -", "- -> dc:creator"),
]


def test_table1_regenerated(benchmark):
    rows = benchmark(table1_rows)
    report(
        "Table 1: use case mapping overview",
        [f"{left:<32} {right}" for left, right in rows],
    )
    assert rows == PAPER_TABLE_1


def test_mapping_autogeneration(benchmark):
    db = build_database()
    mapping = benchmark(build_mapping, db)
    assert len(mapping.tables) == 5
    assert len(mapping.link_tables) == 1


def test_mapping_turtle_roundtrip(benchmark):
    mapping = build_mapping()

    def roundtrip():
        return parse_mapping(mapping_to_turtle(mapping))

    reparsed = benchmark(roundtrip)
    assert set(reparsed.tables) == set(mapping.tables)


def test_uri_identification_throughput(benchmark):
    """Algorithm 1 step 2 on 1000 instance URIs of mixed tables."""
    mapping = build_mapping()
    uris = [
        URIRef(f"http://example.org/db/{stem}{i}")
        for i in range(1, 201)
        for stem in ("author", "team", "pub", "pubtype", "publisher")
    ]

    def identify_all():
        hits = 0
        for uri in uris:
            if mapping.identify_table(uri) is not None:
                hits += 1
        return hits

    assert benchmark(identify_all) == len(uris)
