"""The feasibility-study listings (paper Section 7): translation fidelity
and throughput.

For every SPARQL/Update listing in the paper, this benchmark re-runs the
translation and asserts the generated SQL matches the corresponding
listing, then times the translation path (parse + Algorithm 1, no
execution) and the full execute path.
"""

import pytest

from repro import OntoAccess
from repro.workloads.publication import (
    build_database,
    build_mapping,
    seed_feasibility_data,
)

from conftest import report

PREFIXES = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX dc:   <http://purl.org/dc/elements/1.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
PREFIX rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
"""

LISTING_9 = PREFIXES + """
INSERT DATA {
    ex:author6 foaf:title "Mr" ;
        foaf:firstName "Matthias" ;
        foaf:family_name "Hert" ;
        foaf:mbox <mailto:hert@ifi.uzh.ch> ;
        ont:team ex:team5 .
}
"""

LISTING_13 = PREFIXES + """
INSERT DATA {
    ex:team4 foaf:name "Database Technology" ;
             ont:teamCode "DBTG" .
}
"""

LISTING_15 = PREFIXES + """
INSERT DATA {
    ex:pub12 dc:title "Relational..." ;
        ont:pubYear "2009" ;
        ont:pubType ex:pubtype4 ;
        dc:publisher ex:publisher3 ;
        dc:creator ex:author6 .
    ex:author6 foaf:title "Mr" ;
        foaf:firstName "Matthias" ;
        foaf:family_name "Hert" ;
        foaf:mbox <mailto:hert@ifi.uzh.ch> ;
        ont:team ex:team5 .
    ex:team5 foaf:name "Software Engineering" ;
        ont:teamCode "SEAL" .
    ex:pubtype4 ont:type "inproceedings" .
    ex:publisher3 ont:name "Springer" .
}
"""

LISTING_17 = PREFIXES + """
DELETE DATA {
    ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> .
}
"""


def test_listing_13_to_14_translation(benchmark, fresh_mediator):
    sql = benchmark(fresh_mediator.translate_sql, LISTING_13)
    report("Listing 13 -> Listing 14", sql)
    assert sql == [
        "INSERT INTO team (id, name, code) "
        "VALUES (4, 'Database Technology', 'DBTG');"
    ]


def test_listing_9_to_10_translation(benchmark):
    db = build_database()
    db.execute("INSERT INTO team (id, name, code) VALUES (5, 'SE', 'SEAL')")
    mediator = OntoAccess(db, build_mapping(db))
    sql = benchmark(mediator.translate_sql, LISTING_9)
    report("Listing 9 -> Listing 10", sql)
    assert sql == [
        "INSERT INTO author (id, title, firstname, lastname, email, team) "
        "VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);"
    ]


def test_listing_15_to_16_translation(benchmark, fresh_mediator):
    sql = benchmark(fresh_mediator.translate_sql, LISTING_15)
    report("Listing 15 -> Listing 16 (FK-sorted)", sql)
    assert len(sql) == 6
    tables = [line.split()[2] for line in sql]
    assert tables.index("team") < tables.index("author")
    assert tables.index("pubtype") < tables.index("publication")
    assert tables.index("publisher") < tables.index("publication")
    assert tables.index("publication") < tables.index("publication_author")


def test_listing_17_to_18_translation(benchmark, seeded_mediator):
    sql = benchmark(seeded_mediator.translate_sql, LISTING_17)
    report("Listing 17 -> Listing 18", sql)
    assert sql == [
        "UPDATE author SET email = NULL "
        "WHERE id = 6 AND email = 'hert@ifi.uzh.ch';"
    ]


def test_listing_15_execution(benchmark):
    """Full path: parse + translate + execute + commit, fresh DB per round."""

    def run():
        db = build_database()
        mediator = OntoAccess(db, build_mapping(db), validate=False)
        return mediator.update(LISTING_15)

    result = benchmark(run)
    assert result.statements_executed() == 6
