"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module regenerates one artifact of the paper (a figure,
table, or listing) or measures one claim.  The ``report`` helper prints
labelled rows so ``pytest benchmarks/ --benchmark-only -s`` shows the
regenerated artifacts next to the timing tables.
"""

import pytest

from repro import OntoAccess
from repro.workloads.publication import (
    build_database,
    build_mapping,
    seed_feasibility_data,
)


def report(title, lines):
    print(f"\n### {title}")
    for line in lines:
        print(f"    {line}")


@pytest.fixture
def fresh_mediator():
    db = build_database()
    return OntoAccess(db, build_mapping(db))


@pytest.fixture
def seeded_mediator():
    db = build_database()
    seed_feasibility_data(db)
    return OntoAccess(db, build_mapping(db))
