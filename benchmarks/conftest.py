"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module regenerates one artifact of the paper (a figure,
table, or listing) or measures one claim.  The ``report`` helper prints
labelled rows so ``pytest benchmarks/ --benchmark-only -s`` shows the
regenerated artifacts next to the timing tables.

At session end, every module's timings are also written to
``benchmarks/BENCH_<module>.json`` (e.g. ``BENCH_query.json``,
``BENCH_scaling.json``) so the performance trajectory is recorded as a
committed artifact instead of scrollback.  See ``benchmarks/README.md``
for the curve shapes each file is expected to show.
"""

import json
import pathlib

import pytest

from repro import OntoAccess
from repro.workloads.publication import (
    build_database,
    build_mapping,
    seed_feasibility_data,
)

BENCH_DIR = pathlib.Path(__file__).parent


def report(title, lines):
    print(f"\n### {title}")
    for line in lines:
        print(f"    {line}")


@pytest.fixture
def fresh_mediator():
    db = build_database()
    return OntoAccess(db, build_mapping(db))


@pytest.fixture
def seeded_mediator():
    db = build_database()
    seed_feasibility_data(db)
    return OntoAccess(db, build_mapping(db))


def _stats_record(bench):
    stats = bench.stats
    return {
        "name": bench.name,
        "fullname": bench.fullname,
        "rounds": stats.rounds,
        "mean_us": stats.mean * 1e6,
        "median_us": stats.median * 1e6,
        "min_us": stats.min * 1e6,
        "max_us": stats.max * 1e6,
        "stddev_us": stats.stddev * 1e6,
        "ops": stats.ops,
    }


def pytest_sessionfinish(session, exitstatus):
    """Write per-module BENCH_<name>.json files from pytest-benchmark data."""
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    groups = {}
    for bench in benchmark_session.benchmarks:
        if getattr(bench, "has_error", False):
            continue
        module = pathlib.Path(bench.fullname.split("::")[0]).stem
        name = module[len("bench_"):] if module.startswith("bench_") else module
        try:
            groups.setdefault(name, []).append(_stats_record(bench))
        except (AttributeError, TypeError):
            continue  # a fixture that never ran its timer
    for name, records in groups.items():
        path = BENCH_DIR / f"BENCH_{name}.json"
        # Merge into the committed artifact by test name so a filtered run
        # (-k, smoke passes) refreshes only what it measured instead of
        # truncating the module's record.
        merged = {}
        if path.exists():
            try:
                for record in json.loads(path.read_text())["benchmarks"]:
                    merged[record["fullname"]] = record
            except (ValueError, KeyError):
                pass  # corrupt/legacy artifact: rewrite from this run
        for record in records:
            merged[record["fullname"]] = record
        payload = {
            "module": f"bench_{name}",
            "benchmarks": sorted(merged.values(), key=lambda r: r["fullname"]),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
