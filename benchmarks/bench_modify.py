"""Listing 11 → Listing 12: the MODIFY operation (Algorithm 2).

Regenerates the paper's MODIFY example and measures: the translated
SELECT for the WHERE clause, execution with 1 binding, scaling with the
number of result bindings, and the Section 5.2 redundant-delete
optimization (statements per binding with and without it).
"""

import pytest

from repro import OntoAccess
from repro.workloads.publication import (
    build_database,
    build_mapping,
    seed_feasibility_data,
)
from repro.workloads.generator import (
    WorkloadConfig,
    generate_dataset,
    populate_database,
)

from conftest import report

PREFIXES = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
PREFIX rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
"""

LISTING_11 = PREFIXES + """
MODIFY
DELETE { ?x foaf:mbox ?mbox . }
INSERT { ?x foaf:mbox <mailto:hert@example.com> . }
WHERE {
    ?x rdf:type foaf:Person ;
       foaf:firstName "Matthias" ;
       foaf:family_name "Hert" ;
       foaf:mbox ?mbox .
}
"""

#: MODIFY touching every author with an email (many bindings).
BULK_MODIFY = PREFIXES + """
MODIFY
DELETE { ?x foaf:mbox ?mbox . }
INSERT { ?x foaf:title "Dr" . }
WHERE { ?x foaf:mbox ?mbox . }
"""


def _seeded():
    db = build_database()
    seed_feasibility_data(db)
    return db, OntoAccess(db, build_mapping(db))


def test_listing_11_to_12_execution(benchmark):
    def run():
        db, mediator = _seeded()
        return mediator.update(LISTING_11)

    result = benchmark(run)
    op = result.operations[0]
    report(
        "Listing 11 -> Listing 12 (MODIFY)",
        [f"WHERE evaluated via SQL: {op.used_sql_select}",
         f"result bindings: {op.bindings}",
         *op.sql()],
    )
    assert op.bindings == 1
    assert op.used_sql_select is True


def test_modify_where_clause_select_sql(benchmark):
    """Algorithm 2 line 5: translateSelect — the SQL of the WHERE clause."""
    from repro.core.modify import bindings_for_pattern
    from repro.sparql import parse_update

    db, mediator = _seeded()
    operation = parse_update(LISTING_11).operations[0]

    def run():
        return bindings_for_pattern(mediator.mapping, db, operation.where)

    solutions, used_sql, select_sql = benchmark(run)
    report("Translated SELECT for the WHERE clause", [select_sql])
    assert used_sql
    assert len(solutions) == 1
    assert "author" in select_sql


@pytest.mark.parametrize("authors", [10, 50, 200])
def test_modify_scaling_with_bindings(benchmark, authors):
    """MODIFY cost grows with the number of WHERE bindings (one DELETE
    DATA / INSERT DATA pair per binding, Algorithm 2 line 7)."""
    config = WorkloadConfig(authors=authors, publications=0, seed=1)

    def setup():
        db = build_database()
        populate_database(db, generate_dataset(config))
        return (OntoAccess(db, build_mapping(db), validate=False),), {}

    def run(mediator):
        return mediator.update(BULK_MODIFY)

    result = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert result.operations[0].bindings > 0


def test_redundant_delete_optimization_counts(benchmark):
    """Section 5.2 optimization: per binding, the replace-style MODIFY
    needs 1 statement with the optimization and 2 without."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, mediator_opt = _seeded()
    result_opt = mediator_opt.update(LISTING_11)

    db2 = build_database()
    seed_feasibility_data(db2)
    mediator_plain = OntoAccess(db2, build_mapping(db2), optimize_modify=False)
    result_plain = mediator_plain.update(LISTING_11)

    report(
        "MODIFY redundant-delete optimization (statements per binding)",
        [f"optimized:   {result_opt.statements_executed()} statement(s)",
         f"unoptimized: {result_plain.statements_executed()} statement(s)"],
    )
    assert result_opt.statements_executed() == 1
    assert result_plain.statements_executed() == 2
    # both end in the same state
    assert (
        db2.get_row_by_pk("author", (6,))["email"]
        == mediator_opt.db.get_row_by_pk("author", (6,))["email"]
        == "hert@example.com"
    )


def test_modify_fallback_vs_translated(benchmark):
    """The dump-based fallback gives the same bindings, slower."""
    db, _ = _seeded()
    mediator = OntoAccess(db, build_mapping(db), force_query_fallback=True)

    def run():
        return mediator.update(LISTING_11)

    # run once through benchmark on fresh copies
    def setup():
        db2 = build_database()
        seed_feasibility_data(db2)
        return (
            OntoAccess(db2, build_mapping(db2), validate=False,
                       force_query_fallback=True),
        ), {}

    result = benchmark.pedantic(
        lambda m: m.update(LISTING_11), setup=setup, rounds=5, iterations=1
    )
    assert result.operations[0].used_sql_select is False
    assert result.operations[0].bindings == 1
