"""Observability overhead benchmark (ISSUE 10): disarmed must be ~free.

The observability layer arms per-operator instrumentation (EXPLAIN
ANALYZE) and per-request traces through thread-locals; when nothing is
armed the hot path pays only a handful of ``current_probe()`` /
``current_trace()`` checks that return ``None``.  This benchmark pins
that contract with numbers:

* ``obs_point_disarmed`` — per-query median for an indexed point SELECT
  with no probe or trace armed: the production fast path.
* ``obs_point_traced`` — the same query inside a per-request
  ``trace_scope`` (what the serving tier opens for every request).
* ``obs_point_analyze`` — the same query under ``explain_analyze``,
  where every operator's output is wrapped in a timing iterator.  This
  is *expected* to cost more; it doubles as the CI calibration set
  because it exercises the same engine path.

The in-run floor is the disarmed-overhead budget: the measured cost of
the disarmed checks (per-check cost x checks actually executed per
query, counted by wrapping ``current_probe``) must stay under
``MAX_DISARMED_OVERHEAD_PCT`` of the disarmed median.  The CI trend
gate then compares ``obs_point_disarmed`` across runs calibrated by
``obs_point_analyze``, so a check creeping onto a per-row path (which
inflates disarmed but not analyze, whose per-row work dominates) trips
it while uniform machine speed cancels out.

Run with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_observability.py -s
"""

import json
import pathlib
import statistics
import time

import repro.rdb.planner as planner_mod
from repro.observability.tracing import trace_scope
from repro.rdb.engine import Database

BENCH_DIR = pathlib.Path(__file__).parent
ARTIFACT = BENCH_DIR / "BENCH_observability.json"

ROWS = 200
POINT_QUERY = "SELECT name FROM item WHERE id = 137"
ROUNDS = 7
QUERIES_PER_ROUND = 300
WARMUP_QUERIES = 50
#: Budget for the disarmed instrumentation checks as a share of the
#: disarmed per-query median (the ISSUE 10 acceptance bar).
MAX_DISARMED_OVERHEAD_PCT = 5.0
#: Tight-loop sample size for the per-check cost of ``current_probe``.
CHECK_SAMPLES = 200_000


def _build_database() -> Database:
    db = Database()
    db.execute("CREATE TABLE item (id INTEGER PRIMARY KEY, name VARCHAR(64))")
    for i in range(ROWS):
        db.execute(f"INSERT INTO item (id, name) VALUES ({i}, 'name-{i}')")
    return db


def _median_us(run_round):
    """Median per-query microseconds over ``ROUNDS`` timed rounds."""
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(QUERIES_PER_ROUND):
            run_round()
        elapsed = time.perf_counter() - start
        samples.append(elapsed / QUERIES_PER_ROUND * 1e6)
    return statistics.median(samples)


def _count_probe_checks(db: Database) -> int:
    """How many disarmed ``current_probe`` checks one point query runs."""
    calls = [0]
    real = planner_mod.current_probe

    def counting():
        calls[0] += 1
        return real()

    planner_mod.current_probe = counting
    try:
        db.execute(POINT_QUERY)
    finally:
        planner_mod.current_probe = real
    return calls[0]


def _measure_check_ns() -> float:
    """Per-call cost of a disarmed ``current_probe()`` in nanoseconds."""
    probe = planner_mod.current_probe
    # Warm the attribute lookup, then time a tight loop.
    for _ in range(1000):
        probe()
    start = time.perf_counter()
    for _ in range(CHECK_SAMPLES):
        probe()
    return (time.perf_counter() - start) / CHECK_SAMPLES * 1e9


def _record(records, name, median_us, **extra):
    entry = {
        "name": name,
        "fullname": f"benchmarks/bench_observability.py::{name}",
        "rounds": ROUNDS,
        "median_us": median_us,
        "mean_us": median_us,
        "min_us": median_us,
        "max_us": median_us,
        "stddev_us": 0.0,
        "ops": 1e6 / median_us if median_us > 0 else 0.0,
    }
    entry.update(extra)
    records.append(entry)


def test_observability_overhead(capsys):
    db = _build_database()
    for _ in range(WARMUP_QUERIES):
        db.execute(POINT_QUERY)
        db.explain_analyze(POINT_QUERY)

    disarmed_us = _median_us(lambda: db.execute(POINT_QUERY))

    def traced_query():
        with trace_scope(request_id="bench", op="query"):
            db.execute(POINT_QUERY)

    traced_us = _median_us(traced_query)
    analyze_us = _median_us(lambda: db.explain_analyze(POINT_QUERY))

    # The disarmed overhead cannot be measured by differencing two runs
    # (run-to-run noise swamps nanoseconds), so it is decomposed: the
    # per-call cost of a disarmed check, times the checks one point
    # query actually executes.
    check_sites = _count_probe_checks(db)
    check_ns = _measure_check_ns()
    overhead_pct = (check_sites * check_ns / 1000.0) / disarmed_us * 100.0

    report = db.explain_analyze(POINT_QUERY)
    operators = report["operators"]

    records = []
    _record(
        records,
        "obs_point_disarmed",
        round(disarmed_us, 3),
        check_sites=check_sites,
        check_ns=round(check_ns, 1),
        disarmed_check_overhead_pct=round(overhead_pct, 4),
    )
    _record(records, "obs_point_traced", round(traced_us, 3))
    _record(
        records,
        "obs_point_analyze",
        round(analyze_us, 3),
        operators=len(operators),
    )

    ARTIFACT.write_text(
        json.dumps(
            {
                "module": "bench_observability",
                "benchmarks": records,
                "overhead": {
                    "check_sites_per_query": check_sites,
                    "check_ns": round(check_ns, 1),
                    "disarmed_check_overhead_pct": round(overhead_pct, 4),
                    "max_disarmed_overhead_pct": MAX_DISARMED_OVERHEAD_PCT,
                    "analyze_over_disarmed": round(
                        analyze_us / disarmed_us, 3
                    ),
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    with capsys.disabled():
        print("\n### observability overhead (indexed point SELECT)")
        print(f"    disarmed        {disarmed_us:10.1f} us/query")
        print(f"    traced          {traced_us:10.1f} us/query")
        print(
            f"    analyze         {analyze_us:10.1f} us/query "
            f"({analyze_us / disarmed_us:.2f}x disarmed)"
        )
        print(
            f"    disarmed checks {check_sites} x {check_ns:.0f} ns "
            f"= {overhead_pct:.3f}% of the disarmed median "
            f"(budget {MAX_DISARMED_OVERHEAD_PCT:.0f}%)"
        )

    # -- floors (same process, machine speed cancels) ------------------
    assert overhead_pct <= MAX_DISARMED_OVERHEAD_PCT, (
        f"disarmed instrumentation checks cost {overhead_pct:.2f}% of a "
        "point query — the observability fast path is no longer ~free"
    )
    # The armed path must actually instrument: a point lookup reports
    # its operators with the one matching row.
    assert operators, "explain_analyze reported no operators"
    assert report["rows"] == 1
