"""Concurrent read throughput: MVCC snapshot reads vs. the serialized lock.

ISSUE 4 replaced the single session lock with two tiers: writers hold an
exclusive lock for the span of a transaction, readers run lock-free
against the committed snapshot current at their start.  This benchmark
measures what that buys: **aggregate read throughput while a writer is
active**, at 1/2/4/8 reader threads, through both the Session API and the
HTTP endpoint.

The writer models the traffic the lock tiers exist for: client-driven
transactions that hold the write tier while they think (network gaps
between a batch's statements) — ``HOLD`` seconds per transaction with a
``GAP`` between transactions, i.e. the write tier is busy ~90% of
wall-clock time.  Under the old discipline every reader queued behind
those transactions; under MVCC they read the pre-transaction snapshot and
never wait.

Honesty note (measurement environment): this container runs CPython with
the GIL on a single core, so *compute* cannot scale with reader threads —
no-writer thread scaling hovers around 1x by construction.  What MVCC
eliminates, and what this benchmark therefore gates, is **lock wait**:
readers no longer serialize behind writer transactions.  On multi-core
free-threaded builds the same snapshot path additionally scales compute.

Two guards:

* in-run assertion — 8 MVCC readers must sustain >= ``MIN_SPEEDUP`` (4x)
  the throughput of the single serialized-reader baseline measured in the
  same process seconds earlier (self-calibrating, trips if reads ever
  serialize behind the writer again);
* trend gate — ``BENCH_concurrency.json`` feeds ``check_trend.py`` in CI
  (8-reader MVCC latency, calibrated by the 1-reader MVCC latency, >2x
  fails), which trips on contention regressions that scale with thread
  count.

Run with::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_concurrency.py -s
"""

import json
import pathlib
import threading
import time

from repro import OntoAccess
from repro.server import OntoAccessClient, OntoAccessEndpoint
from repro.workloads.publication import (
    build_database,
    build_mapping,
    seed_feasibility_data,
)

BENCH_DIR = pathlib.Path(__file__).parent
ARTIFACT = BENCH_DIR / "BENCH_concurrency.json"

PREFIXES = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
"""

READ_QUERY = PREFIXES + "SELECT ?n WHERE { ?x foaf:family_name ?n . }"

#: Writer transaction shape: the write tier is held HOLD seconds per
#: transaction (three statements with think-time between them), then
#: released for GAP seconds — a ~90% write-tier duty cycle, the "heavy
#: traffic with slow client-driven transactions" regime the lock tiers
#: exist for.
HOLD = 0.024
GAP = 0.001
#: Measurement window per configuration (seconds).
WINDOW = 0.6
#: Acceptance floor: 8 MVCC readers vs. one serialized reader, writer
#: active in both (ISSUE 4 acceptance criterion).
MIN_SPEEDUP = 4.0

THREAD_COUNTS = (1, 2, 4, 8)


def _fresh_mediator():
    db = build_database()
    seed_feasibility_data(db)
    return OntoAccess(db, build_mapping(db))


class _Writer:
    """Background writer: transactions that hold the write tier."""

    def __init__(self, session):
        self.session = session
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._counter = 0

    def _run(self):
        while not self._stop.is_set():
            base = 100_000 + self._counter
            self._counter += 3
            with self.session.transaction():
                for k in range(3):
                    self.session.execute(
                        PREFIXES
                        + f'INSERT DATA {{ ex:team{base + k} '
                        f'foaf:name "W{base + k}" . }}'
                    )
                    time.sleep(HOLD / 3)
            time.sleep(GAP)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        self._thread.join(10)


def _measure(read_once, n_threads, window=WINDOW):
    """Aggregate reads/second of ``n_threads`` hammering ``read_once``."""
    read_once()  # warm caches outside the window
    counts = [0] * n_threads
    stop = threading.Event()
    start_gate = threading.Barrier(n_threads + 1)

    def worker(idx):
        start_gate.wait()
        while not stop.is_set():
            read_once()
            counts[idx] += 1

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    start_gate.wait()
    time.sleep(window)
    stop.set()
    for thread in threads:
        thread.join(10)
    return sum(counts) / window


def _record(records, name, throughput):
    ops = max(throughput, 1e-9)
    records.append(
        {
            "name": name,
            "fullname": f"benchmarks/bench_concurrency.py::{name}",
            "rounds": 1,
            "median_us": 1e6 / ops,  # aggregate per-op latency
            "mean_us": 1e6 / ops,
            "min_us": 1e6 / ops,
            "max_us": 1e6 / ops,
            "stddev_us": 0.0,
            "ops": ops,
        }
    )
    return throughput


def test_concurrent_read_throughput(capsys):
    records = []
    lines = []

    # ---- Session API: serialized baseline vs. MVCC, writer active ----
    mediator = _fresh_mediator()
    session = mediator.session()
    session.query(READ_QUERY)  # publish the first snapshot

    def mvcc_read():
        session.query(READ_QUERY)

    def serialized_read():
        # The pre-ISSUE-4 discipline: every read takes the (write-tier)
        # session lock, so it queues behind open transactions.
        with session._lock:
            session.query(READ_QUERY)

    with _Writer(session):
        serialized_1 = _record(
            records, "session_serialized_readers1",
            _measure(serialized_read, 1),
        )
        serialized_8 = _record(
            records, "session_serialized_readers8",
            _measure(serialized_read, 8),
        )
        mvcc = {
            n: _record(
                records, f"session_mvcc_readers{n}", _measure(mvcc_read, n)
            )
            for n in THREAD_COUNTS
        }

    lines.append(
        f"serialized baseline (writer active): "
        f"{serialized_1:7.0f} q/s @1 reader, {serialized_8:7.0f} q/s @8"
    )
    for n in THREAD_COUNTS:
        lines.append(
            f"mvcc snapshot reads (writer active): {mvcc[n]:7.0f} q/s "
            f"@{n} reader(s)  ({mvcc[n] / serialized_1:5.1f}x vs serialized@1)"
        )

    # ---- no-writer scaling, for the record (GIL: expect ~flat) ----
    quiet = {
        n: _record(
            records, f"session_nowriter_readers{n}", _measure(mvcc_read, n)
        )
        for n in (1, 8)
    }
    lines.append(
        f"no-writer reference: {quiet[1]:7.0f} q/s @1, {quiet[8]:7.0f} q/s @8 "
        "(GIL/1-core: compute cannot scale; the win above is lock-wait)"
    )

    # ---- HTTP endpoint sweep, writer POSTing updates ----
    endpoint = OntoAccessEndpoint(_fresh_mediator())
    with endpoint:
        writer_client = OntoAccessClient(endpoint.url)
        stop = threading.Event()

        def http_writer():
            i = 0
            while not stop.is_set():
                writer_client.update(
                    PREFIXES
                    + f'INSERT DATA {{ ex:team{200_000 + i} foaf:name "H{i}" . }}'
                )
                i += 1
                time.sleep(GAP)

        writer_thread = threading.Thread(target=http_writer, daemon=True)
        writer_thread.start()
        try:
            local = threading.local()

            def http_read():
                client = getattr(local, "client", None)
                if client is None:
                    client = local.client = OntoAccessClient(endpoint.url)
                client.query_json(READ_QUERY)

            for n in THREAD_COUNTS:
                throughput = _record(
                    records, f"endpoint_readers{n}", _measure(http_read, n)
                )
                lines.append(
                    f"endpoint (writer posting):           "
                    f"{throughput:7.0f} req/s @{n} reader(s)"
                )
        finally:
            stop.set()
            writer_thread.join(10)

    # ---- artifact + report ----
    ARTIFACT.write_text(
        json.dumps(
            {"module": "bench_concurrency", "benchmarks": records},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    with capsys.disabled():
        print("\n### concurrent read throughput")
        for line in lines:
            print(f"    {line}")

    # ---- acceptance criterion (self-calibrating, same process) ----
    speedup = mvcc[8] / serialized_1
    assert speedup >= MIN_SPEEDUP, (
        f"8 MVCC readers reached only {speedup:.1f}x the serialized "
        f"single-reader baseline (floor: {MIN_SPEEDUP}x) — reads are "
        "waiting on the write tier again"
    )
