"""The read path: SPARQL queries over the mediated database.

The paper left query support "under development" (Section 6); we complete
it and measure the two evaluation strategies:

* SQL translation (single SELECT with joins), and
* fallback (materialize the dump, evaluate natively).

Expected shape: translation wins and its advantage grows with database
size, because the fallback pays O(database) materialization per query
while the translated SELECT touches only the relevant rows.
"""

import pytest

from repro import OntoAccess
from repro.workloads.generator import (
    WorkloadConfig,
    generate_dataset,
    populate_database,
)
from repro.workloads.publication import build_database, build_mapping

from conftest import report

PREFIXES = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX dc:   <http://purl.org/dc/elements/1.1/>
PREFIX ont:  <http://example.org/ontology#>
PREFIX ex:   <http://example.org/db/>
"""

JOIN_QUERY = PREFIXES + """
SELECT ?name ?team WHERE {
    ?a foaf:family_name ?name ;
       ont:team ?t .
    ?t foaf:name ?team .
}
"""

LINK_QUERY = PREFIXES + """
SELECT ?title ?author WHERE {
    ?p dc:title ?title ;
       dc:creator ?a .
    ?a foaf:family_name ?author .
}
"""

POINT_QUERY = PREFIXES + """
SELECT ?n WHERE { ex:author7 foaf:family_name ?n . }
"""


def _mediator(authors: int, fallback: bool = False) -> OntoAccess:
    db = build_database()
    populate_database(
        db,
        generate_dataset(WorkloadConfig(authors=authors, publications=authors)),
    )
    return OntoAccess(
        db, build_mapping(db), validate=False, force_query_fallback=fallback
    )


@pytest.mark.parametrize("authors", [50, 500])
def test_join_query_translated(benchmark, authors):
    mediator = _mediator(authors)
    outcome = benchmark(mediator.query_outcome, JOIN_QUERY)
    assert outcome.used_sql
    assert len(outcome.result) > 0


@pytest.mark.parametrize("authors", [50, 500])
def test_join_query_fallback(benchmark, authors):
    mediator = _mediator(authors, fallback=True)
    outcome = benchmark(mediator.query_outcome, JOIN_QUERY)
    assert not outcome.used_sql
    assert len(outcome.result) > 0


def test_link_table_query(benchmark):
    mediator = _mediator(100)
    outcome = benchmark(mediator.query_outcome, LINK_QUERY)
    assert outcome.used_sql
    assert len(outcome.result) > 0


@pytest.mark.parametrize("authors", [10, 100, 1000])
def test_point_query_translated(benchmark, authors):
    """Expected shape: flat — the planner turns the translated
    ``WHERE pk = ...`` into an index point lookup, so cost must not grow
    with database size (paper Section 5/6 feasibility claim)."""
    mediator = _mediator(authors)
    outcome = benchmark(mediator.query_outcome, POINT_QUERY)
    assert outcome.used_sql
    assert len(outcome.result) == 1


def test_translated_and_fallback_agree(benchmark):
    """Crossover evidence + correctness: both paths, same answers."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    lines = []
    for authors in (50, 200):
        translated = _mediator(authors)
        fallback = _mediator(authors, fallback=True)

        t0 = time.perf_counter()
        r1 = translated.query_outcome(JOIN_QUERY)
        t_translated = time.perf_counter() - t0

        t0 = time.perf_counter()
        r2 = fallback.query_outcome(JOIN_QUERY)
        t_fallback = time.perf_counter() - t0

        rows1 = sorted(map(str, r1.result.rows()))
        rows2 = sorted(map(str, r2.result.rows()))
        assert rows1 == rows2
        lines.append(
            f"{authors:4d} authors: translated {t_translated * 1e3:7.2f} ms, "
            f"fallback {t_fallback * 1e3:7.2f} ms "
            f"({t_fallback / t_translated:4.1f}x)"
        )
    report("SPARQL SELECT: SQL translation vs dump fallback", lines)
